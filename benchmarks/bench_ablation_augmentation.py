"""Ablation — graph structure augmentation on/off (paper §III-A-3).

The paper adds four centralities to every node "to elicit further
information" from sparse transaction data.  This ablation measures the
contribution of those structural features to GFN accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.eval import format_table, precision_recall_f1
from repro.gnn import GFN, GraphTrainingConfig, encode_sequences, fit_graph_classifier
from repro.graphs import GraphConstructionPipeline, GraphPipelineConfig

from conftest import BENCH_SEED, BENCH_SLICE_SIZE, save_result

EPOCHS = 15


def test_ablation_structure_augmentation(benchmark, bench_world, bench_split):
    """Train GFN with and without centrality augmentation."""
    _, train_split, test_split = bench_split
    label_map = {
        **dict(zip(train_split.addresses, (int(v) for v in train_split.labels))),
        **dict(zip(test_split.addresses, (int(v) for v in test_split.labels))),
    }
    addresses = list(train_split.addresses) + list(test_split.addresses)

    def run():
        scores = {}
        for label, augment in (("with augmentation", True),
                               ("without augmentation", False)):
            pipeline = GraphConstructionPipeline(
                GraphPipelineConfig(
                    slice_size=BENCH_SLICE_SIZE, enable_augmentation=augment
                )
            )
            graphs_by_address = pipeline.build_many(bench_world.index, addresses)
            encoded = encode_sequences(graphs_by_address, label_map)
            train_graphs = [g for a in train_split.addresses for g in encoded[a]]
            test_graphs = [g for a in test_split.addresses for g in encoded[a]]
            model = GFN(
                train_graphs[0].feature_dim, 4, hidden_dim=64, k=2,
                rng=BENCH_SEED,
            )
            fit_graph_classifier(
                model,
                train_graphs,
                GraphTrainingConfig(epochs=EPOCHS, batch_size=32, seed=BENCH_SEED),
            )
            truth = np.array([g.label for g in test_graphs])
            scores[label] = precision_recall_f1(
                truth, model.predict(test_graphs), 4
            ).weighted_f1
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        ["Variant", "Weighted F1"],
        [[label, f1] for label, f1 in scores.items()],
        title="Ablation — structure augmentation",
    )
    save_result("ablation_augmentation", table)

    assert scores["with augmentation"] > 0.5
