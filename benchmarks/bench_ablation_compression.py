"""Ablation — node compression on/off and the Ψ similarity threshold.

The paper motivates compression as a *scalability* device that preserves
classification signal (via SFE features on merged nodes).  This ablation
verifies both claims at our scale: compressed graphs are smaller, and a
GFN trained on them is about as accurate as on uncompressed graphs.
"""

from __future__ import annotations

import numpy as np

from repro.eval import format_table, precision_recall_f1
from repro.gnn import GFN, GraphTrainingConfig, encode_sequences, fit_graph_classifier
from repro.graphs import GraphConstructionPipeline, GraphPipelineConfig

from conftest import BENCH_SEED, BENCH_SLICE_SIZE, save_result

EPOCHS = 15

VARIANTS = {
    "full compression (psi=0.6)": dict(
        enable_single_compression=True, enable_multi_compression=True, psi=0.6
    ),
    "loose threshold (psi=0.3)": dict(
        enable_single_compression=True, enable_multi_compression=True, psi=0.3
    ),
    "strict threshold (psi=0.9)": dict(
        enable_single_compression=True, enable_multi_compression=True, psi=0.9
    ),
    "no compression": dict(
        enable_single_compression=False, enable_multi_compression=False
    ),
}


def test_ablation_compression(benchmark, bench_world, bench_split):
    """Rebuild graphs per variant; compare size and downstream F1."""
    _, train_split, test_split = bench_split
    label_map = {
        **dict(zip(train_split.addresses, (int(v) for v in train_split.labels))),
        **dict(zip(test_split.addresses, (int(v) for v in test_split.labels))),
    }
    addresses = list(train_split.addresses) + list(test_split.addresses)

    def run():
        results = {}
        for label, overrides in VARIANTS.items():
            pipeline = GraphConstructionPipeline(
                GraphPipelineConfig(slice_size=BENCH_SLICE_SIZE, **overrides)
            )
            graphs_by_address = pipeline.build_many(bench_world.index, addresses)
            encoded = encode_sequences(graphs_by_address, label_map)
            train_graphs = [
                g for a in train_split.addresses for g in encoded[a]
            ]
            test_graphs = [g for a in test_split.addresses for g in encoded[a]]
            mean_nodes = float(
                np.mean([g.num_nodes for g in train_graphs + test_graphs])
            )
            model = GFN(
                train_graphs[0].feature_dim, 4, hidden_dim=64, k=2,
                rng=BENCH_SEED,
            )
            fit_graph_classifier(
                model,
                train_graphs,
                GraphTrainingConfig(epochs=EPOCHS, batch_size=32, seed=BENCH_SEED),
            )
            truth = np.array([g.label for g in test_graphs])
            report = precision_recall_f1(truth, model.predict(test_graphs), 4)
            results[label] = (mean_nodes, report.weighted_f1)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        ["Variant", "Mean nodes/graph", "Weighted F1"],
        [[label, nodes, f1] for label, (nodes, f1) in results.items()],
        title="Ablation — compression variants",
    )
    save_result("ablation_compression", table)

    compressed_nodes = results["full compression (psi=0.6)"][0]
    uncompressed_nodes = results["no compression"][0]
    assert compressed_nodes <= uncompressed_nodes
    # Compression must not destroy the signal.
    assert results["full compression (psi=0.6)"][1] > 0.5
