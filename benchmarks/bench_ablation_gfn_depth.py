"""Ablation — GFN feature-propagation depth k (Eq. 13).

The paper fixes the augmented features to ``[d, X, ÃX, …, ÃᵏX]`` without
sweeping k; this ablation shows how much of GFN's accuracy comes from
propagation (k ≥ 1) versus raw node features (k = 0).
"""

from __future__ import annotations

import numpy as np

from repro.eval import format_table, precision_recall_f1
from repro.gnn import GFN, GraphTrainingConfig, fit_graph_classifier

from conftest import BENCH_SEED, save_result

DEPTHS = (0, 1, 2, 3)
EPOCHS = 20


def test_ablation_gfn_propagation_depth(benchmark, bench_graphs):
    """Sweep k and compare weighted F1."""
    train_graphs = bench_graphs["train_graphs"]
    test_graphs = bench_graphs["test_graphs"]
    truth = np.array([g.label for g in test_graphs])
    input_dim = train_graphs[0].feature_dim

    def run():
        scores = {}
        for k in DEPTHS:
            model = GFN(input_dim, 4, hidden_dim=64, k=k, rng=BENCH_SEED)
            fit_graph_classifier(
                model,
                train_graphs,
                GraphTrainingConfig(epochs=EPOCHS, batch_size=32, seed=BENCH_SEED),
            )
            report = precision_recall_f1(truth, model.predict(test_graphs), 4)
            scores[k] = report.weighted_f1
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        ["k", "Weighted F1"],
        [[k, scores[k]] for k in DEPTHS],
        title="Ablation — GFN propagation depth",
    )
    save_result("ablation_gfn_depth", table)

    assert all(f1 > 0.5 for f1 in scores.values())
