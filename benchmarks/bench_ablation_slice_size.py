"""Ablation — transaction slice size (the paper fixes 100).

Smaller slices yield more, smaller graphs per address (longer sequences
for the LSTM); larger slices approach one-graph-per-address.  This sweep
shows the end-to-end effect through the full BAClassifier.
"""

from __future__ import annotations

import numpy as np

from repro.core import BAClassifier, BAClassifierConfig
from repro.eval import format_table, precision_recall_f1

from conftest import BENCH_SEED, save_result

SLICE_SIZES = (20, 40, 80)


def test_ablation_slice_size(benchmark, bench_world, bench_split):
    """Sweep the slicing unit through the full pipeline."""
    _, train_split, test_split = bench_split

    def run():
        scores = {}
        for slice_size in SLICE_SIZES:
            clf = BAClassifier(
                BAClassifierConfig(
                    slice_size=slice_size,
                    gnn_epochs=12,
                    head_epochs=20,
                    head_learning_rate=3e-3,
                    seed=BENCH_SEED,
                )
            )
            clf.fit(train_split.addresses, train_split.labels, bench_world.index)
            predictions = clf.predict(test_split.addresses, bench_world.index)
            report = precision_recall_f1(test_split.labels, predictions, 4)
            scores[slice_size] = report.weighted_f1
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        ["Slice size", "Weighted F1"],
        [[size, scores[size]] for size in SLICE_SIZES],
        title="Ablation — transaction slice size",
    )
    save_result("ablation_slice_size", table)

    assert all(f1 > 0.4 for f1 in scores.values())
