"""Figure 1 — growth of monthly active bitcoin addresses.

Paper: active addresses grew roughly tenfold over the last decade,
exceeding 1.1 M by January 2022.  We regenerate the *shape* with an
adoption-scheduled world: actors activate progressively, so the monthly
active-address series rises by an order of magnitude over the simulated
window.
"""

from __future__ import annotations

import numpy as np

from repro.datagen import WorldConfig, generate_world
from repro.eval import format_table

from conftest import save_result


def test_fig1_active_address_growth(benchmark):
    """Simulate an adoption curve and report the monthly active series."""
    config = WorldConfig(
        seed=1,
        num_blocks=480,
        num_retail=120,
        num_gamblers=30,
        num_miner_members=20,
        adoption_spread=0.85,
        block_interval=1800.0,
    )

    def run():
        world = generate_world(config)
        bucket = config.block_interval * 48  # "monthly" buckets
        return world.index.active_addresses_by_bucket(bucket)

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    # Drop the warm-up bucket(s) dominated by faucet dispersal.
    counts = [count for _, count in series]
    active = counts[1:]
    rows = [
        [f"bucket {index:02d}", count, "#" * max(1, count // 20)]
        for index, count in enumerate(active)
    ]
    table = format_table(
        ["Month", "Active addresses", ""],
        rows,
        title="Figure 1 — monthly active addresses under staggered adoption",
    )
    growth = max(active[-3:]) / max(1, min(active[:3]))
    table += f"\n\nGrowth factor (late vs early): {growth:.1f}x (paper: ~10x)"
    save_result("fig1_active_addresses", table)

    assert growth > 3.0, f"adoption curve too flat: {growth:.1f}x"
