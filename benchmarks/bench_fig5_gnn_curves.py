"""Figure 5 — F1 vs training epoch and vs wall-clock for the three GNNs.

Paper: GFN dominates GCN and DiffPool at every epoch count and every
time budget (e.g. after 60 min, GFN 97.69 % F1, +5.91 over GCN and
+2.96 over DiffPool).  What must reproduce: GFN converges at least as
fast per epoch, and is the best model per unit wall-clock (its feature
propagation is precomputed, so its epochs are the cheapest).
"""

from __future__ import annotations

import numpy as np

from repro.eval import format_curve_table, format_table
from repro.gnn import DiffPool, GCN, GFN, GraphTrainingConfig, fit_graph_classifier

from conftest import BENCH_SEED, save_result

EPOCHS = 20


def test_fig5_gnn_convergence_curves(benchmark, bench_graphs):
    """Train the three GNNs with per-epoch evaluation."""
    train_graphs = bench_graphs["train_graphs"]
    test_graphs = bench_graphs["test_graphs"]
    input_dim = train_graphs[0].feature_dim

    def run():
        curves = []
        for name, model in (
            ("GFN (ours)", GFN(input_dim, 4, hidden_dim=64, k=2, rng=BENCH_SEED)),
            ("Diffpool", DiffPool(input_dim, 4, hidden_dim=64, num_clusters=8,
                                  rng=BENCH_SEED)),
            ("GCN", GCN(input_dim, 4, hidden_dim=64, rng=BENCH_SEED)),
        ):
            curve = fit_graph_classifier(
                model,
                train_graphs,
                GraphTrainingConfig(epochs=EPOCHS, batch_size=32, seed=BENCH_SEED),
                eval_graphs=test_graphs,
                curve_name=name,
            )
            curves.append(curve)
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    epoch_rows = []
    checkpoints = [1, 2, 5, 10, 15, EPOCHS]
    for curve in curves:
        epoch_rows.append(
            [curve.model_name]
            + [curve.f1_at_epoch(e) or 0.0 for e in checkpoints]
        )
    left = format_table(
        ["Model"] + [f"ep{e}" for e in checkpoints],
        epoch_rows,
        title="Figure 5 (left) — F1 vs training epoch",
    )
    max_runtime = max(curve.runtimes()[-1] for curve in curves)
    budgets = [max_runtime * f for f in (0.25, 0.5, 0.75, 1.0)]
    right = format_curve_table(curves, budgets)
    save_result(
        "fig5_gnn_curves",
        left + "\n\nFigure 5 (right) — F1 vs training runtime\n" + right,
    )

    by_name = {curve.model_name: curve for curve in curves}
    gfn = by_name["GFN (ours)"]
    # GFN is the best (or tied) model at the end and at the half budget.
    assert gfn.best_f1() >= max(c.best_f1() for c in curves) - 0.03
    half = max_runtime * 0.5
    assert gfn.f1_at_time(half) >= max(c.f1_at_time(half) for c in curves) - 0.03
