"""Figure 6 — F1 vs epoch and vs runtime for the six classification heads.

Paper: LSTM+MLP is consistently the best head across epochs and training
time, with all six combinations in a tight band (0.90–0.95).  What must
reproduce: all heads converge into a band, with LSTM+MLP at or near the
top throughout.
"""

from __future__ import annotations

import numpy as np

from repro.core.embedding import embedding_sequences
from repro.eval import format_curve_table, format_table
from repro.gnn import GFN, GraphTrainingConfig, fit_graph_classifier
from repro.seqmodels import (
    SequenceTrainingConfig,
    build_head,
    fit_sequence_classifier,
)

from conftest import BENCH_SEED, save_result

HEAD_LABELS = {
    "lstm": "LSTM+MLP",
    "bilstm": "BiLSTM+MLP",
    "attention": "Attention+MLP",
    "sum": "SUM+MLP",
    "avg": "AVG+MLP",
    "max": "MAX+MLP",
}
EPOCHS = 30


def test_fig6_head_convergence_curves(benchmark, bench_split, bench_graphs):
    """Freeze one encoder; train all six heads with per-epoch eval."""
    _, train_split, test_split = bench_split
    encoded = bench_graphs["encoded_by_address"]
    train_graphs = bench_graphs["train_graphs"]

    def run():
        encoder = GFN(
            train_graphs[0].feature_dim, 4, hidden_dim=64, k=2, rng=BENCH_SEED
        )
        fit_graph_classifier(
            encoder,
            train_graphs,
            GraphTrainingConfig(epochs=20, batch_size=32, seed=BENCH_SEED),
        )
        train_sequences = embedding_sequences(
            encoder, encoded, train_split.addresses
        )
        test_sequences = embedding_sequences(
            encoder, encoded, test_split.addresses
        )
        curves = []
        for head_name, label in HEAD_LABELS.items():
            head = build_head(
                head_name,
                input_dim=encoder.embedding_dim,
                num_classes=4,
                hidden_dim=64,
                rng=BENCH_SEED,
            )
            curve = fit_sequence_classifier(
                head,
                train_sequences,
                train_split.labels,
                SequenceTrainingConfig(
                    epochs=EPOCHS, batch_size=32, seed=BENCH_SEED,
                    learning_rate=3e-3,
                ),
                eval_sequences=test_sequences,
                eval_labels=test_split.labels,
                curve_name=label,
            )
            curves.append(curve)
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    checkpoints = [1, 5, 10, 20, EPOCHS]
    epoch_rows = [
        [curve.model_name] + [curve.f1_at_epoch(e) or 0.0 for e in checkpoints]
        for curve in curves
    ]
    left = format_table(
        ["Model"] + [f"ep{e}" for e in checkpoints],
        epoch_rows,
        title="Figure 6 (left) — F1 vs training epoch",
    )
    max_runtime = max(curve.runtimes()[-1] for curve in curves)
    budgets = [max_runtime * f for f in (0.25, 0.5, 1.0)]
    right = format_curve_table(curves, budgets)
    save_result(
        "fig6_head_curves",
        left + "\n\nFigure 6 (right) — F1 vs training runtime\n" + right,
    )

    best = {curve.model_name: curve.best_f1() for curve in curves}
    top = max(best.values())
    # At our test-set size one misclassified address moves weighted F1 by
    # ~2 points, so "near the top band" is asserted with that granularity.
    assert best["LSTM+MLP"] >= top - 0.08, (
        f"LSTM+MLP not near the top band: {best}"
    )
    # All heads land in a band, none degenerate.
    assert min(best.values()) > 0.5
