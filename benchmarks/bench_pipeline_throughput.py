"""Graph-construction pipeline throughput — the tracked perf trajectory.

Measures, on one synthetic economy:

- **Stage-level construction rates** — graphs/second per pipeline stage
  (extraction, single/multi compression, augmentation) from the
  pipeline's own Table-V timer, plus end-to-end cold addresses/second
  (construct + encode every slice graph).
- **Warm cache throughput** — the serving layer's hot path: every
  encoded slice graph served from a :class:`SliceGraphCache`.
- **Stage-4 vectorization speedup** — the CSR/batched-BFS centrality
  kernels against the original per-node implementations
  (:mod:`repro.graphs.reference`) on random graphs of ≥200 nodes, the
  acceptance gate for the vectorized rewrite (≥10× in full mode).
- **Stage-4 cross-graph batching speedup** — the block-diagonal batched
  Stage-4 path (``augment_graphs``, the pipeline default since PR 4)
  against the per-graph PR-3 path (``augment_graph`` in a loop) over
  every slice graph of the run, with 1e-9 parity asserted graph by
  graph.  The acceptance gate for the batched rewrite (≥1.5× in full
  mode; the PR-3 full-mode rate is kept as
  ``stage4_pr3_graphs_per_second`` so the trajectory stays visible).
- **Stage-1–3 construction speedup** — the ArrayGraph-native extraction
  + compression stages against the reference object pipeline
  (``build_original_graph`` + reference set-based compressions) on the
  same transaction slices.  The pure-Python sets are surprisingly quick
  on paper-scale slice graphs (it was the PR-2 *vectorized-object*
  formulation — per-edge ``fromiter`` + object rebuilds — that was
  slow), so the gate here is a modest ≥1.2×; the tracked acceptance for
  the ArrayGraph rewrite is the ≥3× jump of
  ``stage123_graphs_per_second`` over the PR-2 stage timings recorded
  in ``BENCH_pipeline.json`` history.

Results land in ``benchmarks/results/BENCH_pipeline.json`` under a
per-mode key (``smoke`` / ``full``), so future PRs can diff stage
timings against this one like-for-like — a tier-1 smoke run refreshes
only the ``smoke`` entry and leaves the full-mode trajectory intact.
Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the world to seconds-scale
and relaxes the speedup gate (timing a tiny workload is noise); it runs
in ``scripts/tier1.sh`` on every verification pass.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.datagen import WorldConfig, build_dataset, generate_world
from repro.gnn.data import encode_graph
from repro.graphs import (
    GraphConstructionPipeline,
    GraphPipelineConfig,
    augment_graph,
    augment_graphs,
    build_original_graph,
    centrality_matrix,
    slice_transactions,
)
from repro.graphs.reference import (
    reference_centrality_matrix,
    reference_compress_multi_transaction_addresses,
    reference_compress_single_transaction_addresses,
)
from repro.serve import SliceGraphCache

from conftest import BENCH_SLICE_SIZE, BENCH_WORLD_CONFIG

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in {"", "0"}
SEED = 2023
RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_pipeline.json"

if SMOKE:
    WORLD_CONFIG = WorldConfig(
        seed=SEED, num_blocks=70, num_retail=24, num_gamblers=10,
        num_miner_members=6, num_mixers=2, num_wallet_services=2,
        num_lending_desks=1,
    )
    SLICE_SIZE = 20
    NUM_ADDRESSES = 24
    SPEEDUP_GRAPH_SIZES = (80,)
    MIN_SPEEDUP = None  # timing noise dominates at smoke scale
    MIN_CONSTRUCTION_SPEEDUP = None
    MIN_STAGE4_BATCH_SPEEDUP = None
else:
    # Full mode measures the same economy the table/figure benchmarks
    # share, so stage timings stay comparable across the harness.
    WORLD_CONFIG = BENCH_WORLD_CONFIG
    SLICE_SIZE = BENCH_SLICE_SIZE
    NUM_ADDRESSES = 80
    SPEEDUP_GRAPH_SIZES = (200, 320)
    MIN_SPEEDUP = 10.0  # acceptance gate for the vectorized Stage 4
    MIN_CONSTRUCTION_SPEEDUP = 1.2  # floor vs pure-Python reference (noise margin)
    MIN_STAGE4_BATCH_SPEEDUP = 1.5  # batched vs per-graph Stage 4 (PR-4 gate)

# PR-2 trajectory point (full mode): Stages 1–3 ran at 357.3 graphs/s
# (2.0207 s over 722 slice graphs).  Kept as a constant so the tracked
# ≥3× ArrayGraph acceptance stays visible in the results file even
# though each run overwrites the per-mode entry.
PR2_STAGE123_GRAPHS_PER_SECOND = 357.3

# PR-3 trajectory point (full mode): the per-graph Stage-4 path ran at
# 495.9 graphs/s (1.4559 s over 722 slice graphs).  The batched
# block-diagonal path must beat it; the hard gate is the in-run
# per-graph-vs-batched speedup (machine-independent), this constant
# keeps the cross-PR ratio visible in the results file.
PR3_STAGE4_GRAPHS_PER_SECOND = 495.9


def _random_adjacency(n: int, seed: int):
    """A sparse connected-ish random graph with ``n`` nodes."""
    rng = np.random.default_rng(seed)
    adjacency = [set() for _ in range(n)]
    for i in range(n):
        for j in rng.choice(n, size=3, replace=False):
            j = int(j)
            if i != j:
                adjacency[i].add(j)
                adjacency[j].add(i)
    return [sorted(neighbors) for neighbors in adjacency]


def _stage4_speedup():
    """Vectorized vs reference centrality on ≥200-node graphs (full mode).

    Returns ``(per-size rows, aggregate speedup)``; parity is asserted
    on every timed graph so the speedup compares equal outputs.
    """
    rows = []
    reference_total = 0.0
    vectorized_total = 0.0
    for size in SPEEDUP_GRAPH_SIZES:
        adjacency = _random_adjacency(size, seed=size)

        start = time.perf_counter()
        vectorized = centrality_matrix(adjacency)
        vectorized_seconds = time.perf_counter() - start

        start = time.perf_counter()
        reference = reference_centrality_matrix(adjacency)
        reference_seconds = time.perf_counter() - start

        np.testing.assert_allclose(
            vectorized, reference, rtol=1e-9, atol=1e-9
        )
        reference_total += reference_seconds
        vectorized_total += vectorized_seconds
        rows.append(
            {
                "num_nodes": size,
                "reference_seconds": reference_seconds,
                "vectorized_seconds": vectorized_seconds,
                "speedup": reference_seconds / vectorized_seconds,
            }
        )
    return rows, reference_total / vectorized_total


def _stage4_batch_comparison(graphs, max_batch_nodes):
    """Batched vs per-graph Stage 4 over the run's real slice graphs.

    Re-augments the already-built graphs both ways (augmentation is a
    pure overwrite of the centrality column, so reuse is safe), asserts
    1e-9 parity graph by graph, and returns
    ``(per_graph_seconds, batched_seconds)``.
    """
    start = time.perf_counter()
    for graph in graphs:
        augment_graph(graph)
    per_graph_seconds = time.perf_counter() - start
    expected = [graph.centrality.copy() for graph in graphs]

    start = time.perf_counter()
    augment_graphs(graphs, max_batch_nodes=max_batch_nodes)
    batched_seconds = time.perf_counter() - start
    for graph, reference in zip(graphs, expected):
        np.testing.assert_allclose(
            graph.centrality, reference, rtol=1e-9, atol=1e-9
        )
    return per_graph_seconds, batched_seconds


def _stage123_reference_seconds(index, addresses):
    """Wall-clock of the reference object pipeline's Stages 1–3.

    Object-model extraction plus the original set-based compressions —
    the pre-ArrayGraph construction path — on exactly the slices the
    vectorized pipeline builds.
    """
    start = time.perf_counter()
    count = 0
    for address in addresses:
        transactions = index.transactions_of(address)
        for i, chunk in enumerate(
            slice_transactions(transactions, SLICE_SIZE)
        ):
            graph = build_original_graph(address, chunk, slice_index=i)
            graph = reference_compress_single_transaction_addresses(graph)
            reference_compress_multi_transaction_addresses(
                graph, psi=0.6, sigma=2
            )
            count += 1
    return time.perf_counter() - start, count


def test_bench_pipeline_throughput():
    world = generate_world(WORLD_CONFIG)
    dataset = build_dataset(world, min_transactions=4, seed=SEED)
    addresses = sorted(
        dataset.addresses,
        key=lambda a: -world.index.transaction_count(a),
    )[:NUM_ADDRESSES]
    assert addresses, "benchmark world produced no eligible addresses"

    config = GraphPipelineConfig(slice_size=SLICE_SIZE)
    pipeline = GraphConstructionPipeline(config)
    fingerprint = config.fingerprint()

    # --- cold: construct + encode every slice graph ------------------- #
    start = time.perf_counter()
    graphs_by_address = pipeline.build_many(world.index, addresses)
    encoded = {
        address: [encode_graph(graph) for graph in graphs]
        for address, graphs in graphs_by_address.items()
    }
    cold_seconds = time.perf_counter() - start
    total_graphs = sum(len(graphs) for graphs in encoded.values())
    stage_rows = pipeline.stage_report()

    # --- warm: every encoded slice graph served from cache ------------ #
    cache = SliceGraphCache(capacity=max(total_graphs, 1))
    for address, graphs in encoded.items():
        for graph in graphs:
            cache.put((address, graph.slice_index, fingerprint), graph)
    start = time.perf_counter()
    for address, graphs in encoded.items():
        for graph in graphs:
            assert (
                cache.get((address, graph.slice_index, fingerprint))
                is not None
            )
    warm_seconds = time.perf_counter() - start

    speedup_rows, stage4_speedup = _stage4_speedup()
    if MIN_SPEEDUP is not None:
        assert stage4_speedup >= MIN_SPEEDUP, (
            f"vectorized Stage-4 augmentation only {stage4_speedup:.1f}x "
            f"faster than the reference kernels (need >= {MIN_SPEEDUP}x)"
        )

    # --- Stage 4: block-diagonal batching vs the per-graph PR-3 path -- #
    flat_graphs = [
        graph
        for address in addresses
        for graph in graphs_by_address[address]
    ]
    stage4_per_graph_seconds, stage4_batched_seconds = (
        _stage4_batch_comparison(
            flat_graphs, config.stage4_max_batch_nodes
        )
    )
    stage4_batch_speedup = stage4_per_graph_seconds / stage4_batched_seconds
    if MIN_STAGE4_BATCH_SPEEDUP is not None:
        assert stage4_batch_speedup >= MIN_STAGE4_BATCH_SPEEDUP, (
            f"batched Stage-4 augmentation only {stage4_batch_speedup:.2f}x "
            f"faster than the per-graph path "
            f"(need >= {MIN_STAGE4_BATCH_SPEEDUP}x)"
        )

    # --- Stages 1–3: ArrayGraph construction vs the object pipeline --- #
    stage123_seconds = sum(
        row["total_seconds"] for row in stage_rows[:3]
    )
    stage123_rate = total_graphs / stage123_seconds
    reference_seconds, reference_count = _stage123_reference_seconds(
        world.index, addresses
    )
    assert reference_count == total_graphs
    construction_speedup = reference_seconds / stage123_seconds
    if MIN_CONSTRUCTION_SPEEDUP is not None:
        assert construction_speedup >= MIN_CONSTRUCTION_SPEEDUP, (
            f"ArrayGraph Stages 1-3 only {construction_speedup:.1f}x faster "
            f"than the reference object pipeline "
            f"(need >= {MIN_CONSTRUCTION_SPEEDUP}x)"
        )

    n = len(addresses)
    payload = {
        "benchmark": "pipeline_throughput",
        "mode": "smoke" if SMOKE else "full",
        "slice_size": SLICE_SIZE,
        "num_addresses": n,
        "num_slice_graphs": total_graphs,
        "cold_seconds": cold_seconds,
        "cold_addresses_per_second": n / cold_seconds,
        "cold_graphs_per_second": total_graphs / cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_addresses_per_second": (
            n / warm_seconds if warm_seconds > 0 else float("inf")
        ),
        "stages": stage_rows,
        "stage123_seconds": stage123_seconds,
        "stage123_graphs_per_second": stage123_rate,
        "stage123_reference_seconds": reference_seconds,
        "stage123_speedup_vs_reference": construction_speedup,
        "stage123_pr2_graphs_per_second": (
            None if SMOKE else PR2_STAGE123_GRAPHS_PER_SECOND
        ),
        "stage123_speedup_vs_pr2": (
            None
            if SMOKE
            else stage123_rate / PR2_STAGE123_GRAPHS_PER_SECOND
        ),
        "stage4_speedup_vs_reference": stage4_speedup,
        "stage4_speedup_rows": speedup_rows,
        "stage4_per_graph_seconds": stage4_per_graph_seconds,
        "stage4_batched_seconds": stage4_batched_seconds,
        "stage4_batch_speedup": stage4_batch_speedup,
        "stage4_graphs_per_second": total_graphs / stage4_batched_seconds,
        "stage4_per_graph_graphs_per_second": (
            total_graphs / stage4_per_graph_seconds
        ),
        "stage4_pr3_graphs_per_second": (
            None if SMOKE else PR3_STAGE4_GRAPHS_PER_SECOND
        ),
        "stage4_speedup_vs_pr3": (
            None
            if SMOKE
            else (total_graphs / stage4_batched_seconds)
            / PR3_STAGE4_GRAPHS_PER_SECOND
        ),
    }
    # Merge under a per-mode key: a tier-1 smoke run must not clobber
    # the full-mode trajectory (and vice versa).
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    try:
        existing = json.loads(RESULTS_PATH.read_text())
        if not isinstance(existing, dict) or "benchmark" in existing:
            existing = {}
    except (OSError, ValueError):
        existing = {}
    existing[payload["mode"]] = payload
    RESULTS_PATH.write_text(json.dumps(existing, indent=2) + "\n")

    lines = [
        f"Pipeline throughput — {n} addresses, {total_graphs} slice graphs"
        f" ({payload['mode']} mode)",
        f"{'stage':<28}{'total s':>10}{'share':>8}{'graphs/s':>12}",
    ]
    for row in stage_rows:
        lines.append(
            f"{row['stage']:<28}{row['total_seconds']:>10.3f}"
            f"{row['ratio']:>8.1%}{row['graphs_per_second']:>12.1f}"
        )
    lines.append(
        f"cold: {payload['cold_addresses_per_second']:.1f} addr/s, "
        f"warm: {payload['warm_addresses_per_second']:.1f} addr/s"
    )
    lines.append(
        f"stages 1-3 (ArrayGraph) vs reference object pipeline: "
        f"{construction_speedup:.1f}x ({stage123_rate:.0f} graphs/s)"
    )
    lines.append(
        f"stage-4 vectorized vs reference: {stage4_speedup:.1f}x "
        f"on {SPEEDUP_GRAPH_SIZES}-node graphs"
    )
    lines.append(
        f"stage-4 batched vs per-graph: {stage4_batch_speedup:.2f}x "
        f"({payload['stage4_graphs_per_second']:.0f} vs "
        f"{payload['stage4_per_graph_graphs_per_second']:.0f} graphs/s)"
    )
    print("\n" + "\n".join(lines) + "\n")
