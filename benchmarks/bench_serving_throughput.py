"""Serving throughput — cold / warm / incremental address scoring.

Compares the :class:`~repro.serve.AddressScoringService` against the
naive loop the offline pipeline implies (rebuild every graph, one
forward per address) on the same synthetic chain:

- **naive**: per-address graph rebuild + per-address inference;
- **cold**: empty cache — batched construction + batched inference;
- **warm**: fully cached slices — batched inference only;
- **incremental**: one appended block — only affected addresses rebuilt.

Asserted contract (the serving layer's reason to exist): warm-cache
batched scoring is at least 5× faster than the naive loop, and a block
append re-scores only the touched addresses (checked via cache
statistics).

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the world to seconds-scale
so the same assertions can run in CI; see ``scripts/tier1.sh``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import (
    BAClassifier,
    BAClassifierConfig,
    WorldConfig,
    build_dataset,
    generate_world,
)
from repro.serve import AddressScoringService, ScoringServiceConfig
from repro.testing import append_self_spend as _append_self_spend

from conftest import save_result

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in {"", "0"}
SEED = 2023

if SMOKE:
    WORLD_CONFIG = WorldConfig(
        seed=SEED, num_blocks=90, num_retail=30, num_gamblers=12,
        num_miner_members=8, num_mixers=2, num_wallet_services=2,
        num_lending_desks=1,
    )
    SLICE_SIZE = 20
    NUM_ADDRESSES = 20
    TRAIN_ADDRESSES = 24
else:
    WORLD_CONFIG = WorldConfig(
        seed=SEED, num_blocks=220, num_retail=90, num_gamblers=32,
        num_miner_members=18, num_mixers=3, num_wallet_services=3,
        num_lending_desks=2,
    )
    SLICE_SIZE = 40
    NUM_ADDRESSES = 60
    TRAIN_ADDRESSES = 48


@pytest.fixture(scope="module")
def serving_setup():
    """World + tiny trained classifier + scoring corpus.

    Model quality is irrelevant to a throughput benchmark, so training
    is minimal; the chain is module-private because the incremental
    phase appends a block to it.
    """
    world = generate_world(WORLD_CONFIG)
    dataset = build_dataset(world, min_transactions=4, seed=SEED)
    train, _ = dataset.split(test_fraction=0.3, seed=SEED)
    classifier = BAClassifier(
        BAClassifierConfig(
            slice_size=SLICE_SIZE,
            gnn_epochs=2,
            head_epochs=3,
            gnn_hidden_dim=16,
            head_hidden_dim=16,
            head_restarts=1,
            seed=0,
        )
    )
    classifier.fit(
        train.addresses[:TRAIN_ADDRESSES],
        train.labels[:TRAIN_ADDRESSES],
        world.index,
    )
    addresses = sorted(
        dataset.addresses,
        key=lambda a: -world.index.transaction_count(a),
    )[:NUM_ADDRESSES]
    return world, addresses, classifier


def _slices_of(index, address: str) -> int:
    return -(-index.transaction_count(address) // SLICE_SIZE)


def test_bench_serving_throughput(serving_setup):
    world, addresses, classifier = serving_setup
    n = len(addresses)

    # --- naive: per-address rebuild + per-address forward ------------- #
    start = time.perf_counter()
    naive = {
        a: classifier.predict_proba([a], world.index)[0] for a in addresses
    }
    naive_seconds = time.perf_counter() - start

    service = AddressScoringService(
        classifier,
        world.index,
        chain=world.chain,
        config=ScoringServiceConfig(max_workers=0),
    )

    # --- cold: batched, but every slice is a cache miss --------------- #
    start = time.perf_counter()
    cold_scores = service.score(addresses)
    cold_seconds = time.perf_counter() - start
    total_slices = sum(_slices_of(world.index, a) for a in addresses)
    assert service.stats.misses == total_slices
    for a in addresses:
        np.testing.assert_allclose(
            cold_scores[a].probabilities, naive[a], rtol=1e-9, atol=1e-9
        )

    # --- warm: every slice served from cache -------------------------- #
    start = time.perf_counter()
    warm_scores = service.score(addresses)
    warm_seconds = time.perf_counter() - start
    assert service.stats.hits == total_slices
    for a in addresses:
        np.testing.assert_allclose(
            warm_scores[a].probabilities, naive[a], rtol=1e-9, atol=1e-9
        )
    speedup = naive_seconds / warm_seconds
    assert speedup >= 5.0, (
        f"warm-cache batched scoring only {speedup:.1f}x faster than the "
        f"naive rebuild loop (need >= 5x)"
    )

    # --- incremental: append one block, re-score everything ----------- #
    # Prefer a target whose history is not slice-aligned: appending after
    # an exact slice boundary legitimately dirties no cached slice, which
    # would make the invalidation assertion below vacuous.
    funded = [
        a for a in addresses if world.chain.utxo_set.balance_of(a) > 0
    ]
    target = next(
        (
            a for a in funded
            if world.index.transaction_count(a) % SLICE_SIZE != 0
        ),
        funded[0],
    )
    aligned = world.index.transaction_count(target) % SLICE_SIZE == 0
    _append_self_spend(world.chain, target)
    if not aligned:
        assert service.stats.invalidations >= 1
    before = service.stats.snapshot()
    start = time.perf_counter()
    service.score(addresses)
    incremental_seconds = time.perf_counter() - start
    after = service.stats.snapshot()
    rebuilt = after["misses"] - before["misses"]
    served = after["hits"] - before["hits"]
    other_slices = sum(
        _slices_of(world.index, a) for a in addresses if a != target
    )
    # Only the touched address was rebuilt; everyone else came from cache.
    assert rebuilt <= _slices_of(world.index, target)
    assert served >= other_slices

    rows = [
        ("naive rebuild loop", naive_seconds, n / naive_seconds),
        ("cold cache (batched)", cold_seconds, n / cold_seconds),
        ("warm cache (batched)", warm_seconds, n / warm_seconds),
        ("incremental (1 block)", incremental_seconds, n / incremental_seconds),
    ]
    lines = [
        f"Serving throughput — {n} addresses, {total_slices} slice graphs"
        f" ({'smoke' if SMOKE else 'full'} mode)",
        f"{'path':<24}{'seconds':>10}{'addr/s':>10}",
    ]
    for name, seconds, rate in rows:
        lines.append(f"{name:<24}{seconds:>10.3f}{rate:>10.1f}")
    lines.append(f"warm speedup over naive: {speedup:.1f}x")
    lines.append(
        "cache: hits={hits} misses={misses} evictions={evictions} "
        "invalidations={invalidations}".format(**after)
    )
    save_result("bench_serving_throughput", "\n".join(lines))
