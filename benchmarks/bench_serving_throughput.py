"""Serving throughput — cold / warm / incremental / clustered scoring.

Compares the :class:`~repro.serve.AddressScoringService` against the
naive loop the offline pipeline implies (rebuild every graph, one
forward per address) on the same synthetic chain:

- **naive**: per-address graph rebuild + per-address inference;
- **cold**: empty cache — batched construction + batched inference;
- **warm**: fully cached slices — batched inference only;
- **obs**: the same warm sweep with the ``repro.obs`` instrumentation
  layer enabled vs disabled (``obs.set_enabled``), alternating and
  taking the median over ``OBS_REPEATS`` — the recorded
  ``obs_overhead_pct`` must stay ≤ ``MAX_OBS_OVERHEAD_PCT`` in full
  mode (observability may not tax the hot path);
- **infer**: the warm-miss inference tail (embedding cache off) timed
  with compiled forward plans vs pinned to the autograd tape, at
  per-request granularity (one address per ``score`` call — how a live
  scoring request arrives) plus an ungated bulk-batch variant — scores
  must be bit-identical and in full mode the per-request plan path
  must be ≥ ``MIN_INFER_SPEEDUP`` faster;
- **incremental**: one appended block — only affected addresses rebuilt;
- **cluster cold / warm**: the sharded multi-process
  :class:`~repro.serve.ClusterScoringService` over the same corpus
  (``CLUSTER_SHARDS`` shards × ``CLUSTER_WORKERS`` construction
  processes, inference in the parent);
- **warm restart**: ``save_warm`` → fresh cluster → ``load_warm`` →
  re-score, asserting *zero* construction misses
  (``warm_restart_hit_rate == 1``);
- **streaming**: live-traffic shape on a fresh connected cluster — many
  concurrent single-address ``async_score`` requests, which the micro-
  batcher coalesces into merged passes, timed against the same sweep as
  serial per-request calls; then one appended block, timing the first
  post-append re-score (``append_refresh_seconds``) and asserting the
  worker pool was *streamed to*, never re-forked
  (``pool_stats()['starts'] == 1`` across the whole phase);
- **store**: the same cluster backed by the memory-mapped chain store
  (``ClusterConfig(store_dir=...)``) — shard workers read interned
  transaction columns from mapped ``.npy`` segments instead of holding
  a deep-copied index slice.  Records the resident per-worker footprint
  of both flavors (``store_peak_worker_bytes`` vs
  ``inmemory_peak_worker_bytes``) and the store-backed cold throughput;
  the memory saving must be ≥ ``MIN_STORE_MEMORY_SAVING`` in every
  mode, and in full mode the store path must hold ≥
  ``MIN_STORE_THROUGHPUT_RATIO`` of the in-memory cluster's cold
  throughput.

Asserted contracts: warm-cache batched scoring is at least 5× faster
than the naive loop; a block append re-scores only the touched
addresses; cluster scores are 1e-9-parity with the naive loop; a warm
restart rebuilds nothing.  In full mode on a multi-core host the
cluster cold path must additionally beat the single-process cold path
by ≥ ``MIN_CLUSTER_SPEEDUP`` (process-parallel construction is
physically pointless to gate on one core, so single-core hosts record
``cluster_gate_enforced: false`` instead), and micro-batched concurrent
scoring must beat serial per-request scoring by
≥ ``MIN_STREAMING_SPEEDUP`` under the same multi-core proviso
(``streaming_gate_enforced``).

Results land in ``benchmarks/results/BENCH_serving.json`` under a
per-mode key (``smoke`` / ``full``) — same layout as
``BENCH_pipeline.json`` — and the recorded full-mode entry is
re-asserted by ``scripts/check_bench_gates.py`` on every tier-1 run.
Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the world to seconds-scale
so the same assertions can run in CI; see ``scripts/tier1.sh``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro import (
    BAClassifier,
    BAClassifierConfig,
    WorldConfig,
    build_dataset,
    generate_world,
)
from repro.nn.inference import plan_execution
from repro.serve import (
    AddressScoringService,
    ClusterConfig,
    ClusterScoringService,
    ScoringServiceConfig,
)
from repro.testing import append_self_spend as _append_self_spend

from conftest import save_result

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in {"", "0"}
SEED = 2023
RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_serving.json"

if SMOKE:
    WORLD_CONFIG = WorldConfig(
        seed=SEED, num_blocks=90, num_retail=30, num_gamblers=12,
        num_miner_members=8, num_mixers=2, num_wallet_services=2,
        num_lending_desks=1,
    )
    SLICE_SIZE = 20
    NUM_ADDRESSES = 20
    TRAIN_ADDRESSES = 24
    CLUSTER_SHARDS = 2
    CLUSTER_WORKERS = 2
    MIN_CLUSTER_SPEEDUP = None  # timing noise dominates at smoke scale
    INFER_REPEATS = 3
    MIN_INFER_SPEEDUP = None  # ditto: sub-ms forwards, noise dominates
    MIN_STREAMING_SPEEDUP = None  # ditto
    MIN_STORE_THROUGHPUT_RATIO = None  # ditto
    OBS_REPEATS = 3
    MAX_OBS_OVERHEAD_PCT = None  # ditto: ms-scale warm sweeps
else:
    WORLD_CONFIG = WorldConfig(
        seed=SEED, num_blocks=220, num_retail=90, num_gamblers=32,
        num_miner_members=18, num_mixers=3, num_wallet_services=3,
        num_lending_desks=2,
    )
    SLICE_SIZE = 40
    NUM_ADDRESSES = 60
    TRAIN_ADDRESSES = 48
    CLUSTER_SHARDS = 4
    CLUSTER_WORKERS = 4
    # Enforced only on hosts where process parallelism can exist.
    MIN_CLUSTER_SPEEDUP = 1.5 if (os.cpu_count() or 1) >= 2 else None
    INFER_REPEATS = 5
    MIN_INFER_SPEEDUP = 1.5
    MIN_STREAMING_SPEEDUP = 1.2 if (os.cpu_count() or 1) >= 2 else None
    MIN_STORE_THROUGHPUT_RATIO = 0.9
    # More repeats than the infer phase: the gate is a small percentage
    # of an already-fast warm sweep, so the median needs a wider sample.
    OBS_REPEATS = 9
    MAX_OBS_OVERHEAD_PCT = 5.0

# Mapped columns vs a deep-copied index slice is a structural saving,
# not a timing artifact — enforced at every scale.
MIN_STORE_MEMORY_SAVING = 2.0


@pytest.fixture(scope="module")
def serving_setup():
    """World + tiny trained classifier + scoring corpus.

    Model quality is irrelevant to a throughput benchmark, so training
    is minimal; the chain is module-private because the incremental
    phase appends a block to it.
    """
    world = generate_world(WORLD_CONFIG)
    dataset = build_dataset(world, min_transactions=4, seed=SEED)
    train, _ = dataset.split(test_fraction=0.3, seed=SEED)
    classifier = BAClassifier(
        BAClassifierConfig(
            slice_size=SLICE_SIZE,
            gnn_epochs=2,
            head_epochs=3,
            gnn_hidden_dim=16,
            head_hidden_dim=16,
            head_restarts=1,
            seed=0,
        )
    )
    classifier.fit(
        train.addresses[:TRAIN_ADDRESSES],
        train.labels[:TRAIN_ADDRESSES],
        world.index,
    )
    addresses = sorted(
        dataset.addresses,
        key=lambda a: -world.index.transaction_count(a),
    )[:NUM_ADDRESSES]
    return world, addresses, classifier


def _slices_of(index, address: str) -> int:
    return -(-index.transaction_count(address) // SLICE_SIZE)


def test_bench_serving_throughput(serving_setup, tmp_path):
    world, addresses, classifier = serving_setup
    n = len(addresses)

    # --- naive: per-address rebuild + per-address forward ------------- #
    start = time.perf_counter()
    naive = {
        a: classifier.predict_proba([a], world.index)[0] for a in addresses
    }
    naive_seconds = time.perf_counter() - start

    service = AddressScoringService(
        classifier,
        world.index,
        chain=world.chain,
        config=ScoringServiceConfig(max_workers=0),
    )

    # --- cold: batched, but every slice is a cache miss --------------- #
    start = time.perf_counter()
    cold_scores = service.score(addresses)
    cold_seconds = time.perf_counter() - start
    total_slices = sum(_slices_of(world.index, a) for a in addresses)
    assert service.stats.misses == total_slices
    for a in addresses:
        np.testing.assert_allclose(
            cold_scores[a].probabilities, naive[a], rtol=1e-9, atol=1e-9
        )

    # --- warm: every slice served from cache -------------------------- #
    start = time.perf_counter()
    warm_scores = service.score(addresses)
    warm_seconds = time.perf_counter() - start
    assert service.stats.hits == total_slices
    for a in addresses:
        np.testing.assert_allclose(
            warm_scores[a].probabilities, naive[a], rtol=1e-9, atol=1e-9
        )
    speedup = naive_seconds / warm_seconds
    assert speedup >= 5.0, (
        f"warm-cache batched scoring only {speedup:.1f}x faster than the "
        f"naive rebuild loop (need >= 5x)"
    )

    # --- obs: instrumentation overhead on the warm hot path ----------- #
    # The repro.obs contract: counters, span timers and the stage
    # histograms together may not tax warm-path throughput by more than
    # MAX_OBS_OVERHEAD_PCT.  Sweeps alternate enabled/disabled and take
    # the median over OBS_REPEATS — same anti-noise idiom as the infer
    # phase — and the master switch is restored even if a sweep throws.
    def _obs_sweep():
        start = time.perf_counter()
        service.score(addresses)
        return time.perf_counter() - start

    obs.reset()  # bound the span ring and metric window to this phase
    obs_on_times, obs_off_times = [], []
    try:
        for _ in range(OBS_REPEATS):
            obs.set_enabled(True)
            obs_on_times.append(_obs_sweep())
            obs.set_enabled(False)
            obs_off_times.append(_obs_sweep())
    finally:
        obs.set_enabled(True)
    obs_on_seconds = float(np.median(obs_on_times))
    obs_off_seconds = float(np.median(obs_off_times))
    obs_overhead_pct = (obs_on_seconds / obs_off_seconds - 1.0) * 100.0
    if MAX_OBS_OVERHEAD_PCT is not None:
        assert obs_overhead_pct <= MAX_OBS_OVERHEAD_PCT, (
            f"observability costs {obs_overhead_pct:.1f}% of warm "
            f"throughput (allowed <= {MAX_OBS_OVERHEAD_PCT}%)"
        )
    obs.reset()  # don't carry phase spans into later measurements

    # --- infer: compiled forward plans vs the autograd tape ----------- #
    # Embedding cache off = the warm-miss inference tail: slice graphs
    # come from cache but every call re-runs the GNN encoder and the
    # sequence head.  That is exactly the work the tapeless plan engine
    # accelerates.  The gated measurement scores one address per call —
    # the granularity a live scoring request arrives at — because that
    # is the serving hot path; a bulk all-addresses batch (where BLAS
    # and memory bandwidth dominate and per-op overhead amortizes away)
    # is recorded alongside, ungated.  Sweeps alternate and take the
    # median over repeats so a noisy neighbour on a 1-CPU host cannot
    # decide the gate.
    infer_service = AddressScoringService(
        classifier,
        world.index,
        chain=world.chain,
        config=ScoringServiceConfig(max_workers=0, embedding_cache=False),
    )
    infer_service.score(addresses)  # warm slice cache

    def _request_sweep():
        scores = {}
        start = time.perf_counter()
        for a in addresses:
            scores.update(infer_service.score([a]))
        return time.perf_counter() - start, scores

    def _bulk_sweep():
        start = time.perf_counter()
        scores = infer_service.score(addresses)
        return time.perf_counter() - start, scores

    _request_sweep()  # compile per-request plans
    with plan_execution(False):
        _request_sweep()  # one-off tape warmup
    plan_times, tape_times = [], []
    plan_bulk_times, tape_bulk_times = [], []
    for _ in range(INFER_REPEATS):
        seconds, plan_scores = _request_sweep()
        plan_times.append(seconds)
        seconds, plan_bulk_scores = _bulk_sweep()
        plan_bulk_times.append(seconds)
        with plan_execution(False):
            seconds, tape_scores = _request_sweep()
            tape_times.append(seconds)
            seconds, tape_bulk_scores = _bulk_sweep()
            tape_bulk_times.append(seconds)
    infer_seconds = float(np.median(plan_times))
    infer_tape_seconds = float(np.median(tape_times))
    infer_bulk_seconds = float(np.median(plan_bulk_times))
    infer_bulk_tape_seconds = float(np.median(tape_bulk_times))
    # The plan path must be bit-identical to the tape, not merely close.
    for a in addresses:
        assert np.array_equal(
            plan_scores[a].probabilities, tape_scores[a].probabilities
        ), f"plan-path probabilities diverge from the tape for {a}"
        assert np.array_equal(
            plan_bulk_scores[a].probabilities,
            tape_bulk_scores[a].probabilities,
        ), f"bulk plan-path probabilities diverge from the tape for {a}"
        np.testing.assert_allclose(
            plan_scores[a].probabilities, naive[a], rtol=1e-9, atol=1e-9
        )
    infer_speedup = infer_tape_seconds / infer_seconds
    infer_bulk_speedup = infer_bulk_tape_seconds / infer_bulk_seconds
    if MIN_INFER_SPEEDUP is not None:
        assert infer_speedup >= MIN_INFER_SPEEDUP, (
            f"compiled forward plans only {infer_speedup:.2f}x the tape "
            f"on the per-request warm-miss path "
            f"(need >= {MIN_INFER_SPEEDUP}x)"
        )

    # --- cluster: sharded multi-process construction ------------------ #
    cluster_config = ClusterConfig(
        num_shards=CLUSTER_SHARDS, num_workers=CLUSTER_WORKERS
    )
    cluster = ClusterScoringService(
        classifier, world.index, chain=world.chain, config=cluster_config
    )
    start = time.perf_counter()
    cluster_scores = cluster.score(addresses)
    cluster_cold_seconds = time.perf_counter() - start
    assert cluster.stats.misses == total_slices
    for a in addresses:
        np.testing.assert_allclose(
            cluster_scores[a].probabilities, naive[a], rtol=1e-9, atol=1e-9
        )
    cluster_speedup = cold_seconds / cluster_cold_seconds
    if MIN_CLUSTER_SPEEDUP is not None:
        assert cluster_speedup >= MIN_CLUSTER_SPEEDUP, (
            f"cluster cold path only {cluster_speedup:.2f}x the "
            f"single-process cold path (need >= {MIN_CLUSTER_SPEEDUP}x "
            f"on this {os.cpu_count()}-cpu host)"
        )

    start = time.perf_counter()
    cluster.score(addresses)
    cluster_warm_seconds = time.perf_counter() - start

    # --- warm restart: save -> fresh replica -> load -> zero misses --- #
    warm_dir = tmp_path / "warm_store"
    cluster.save_warm(warm_dir)
    cluster.close()
    restarted = ClusterScoringService(
        classifier, world.index, chain=world.chain, config=cluster_config
    )
    restored = restarted.load_warm(warm_dir)
    assert restored == total_slices
    start = time.perf_counter()
    restarted_scores = restarted.score(addresses)
    warm_restart_seconds = time.perf_counter() - start
    restart_stats = restarted.stats
    assert restart_stats.misses == 0, restart_stats.snapshot()
    warm_restart_hit_rate = restart_stats.hit_rate
    assert warm_restart_hit_rate == 1.0
    for a in addresses:
        np.testing.assert_allclose(
            restarted_scores[a].probabilities,
            naive[a],
            rtol=1e-9,
            atol=1e-9,
        )
    restarted.close()

    # --- incremental: append one block, re-score everything ----------- #
    # Prefer a target whose history is not slice-aligned: appending after
    # an exact slice boundary legitimately dirties no cached slice, which
    # would make the invalidation assertion below vacuous.
    funded = [
        a for a in addresses if world.chain.utxo_set.balance_of(a) > 0
    ]
    target = next(
        (
            a for a in funded
            if world.index.transaction_count(a) % SLICE_SIZE != 0
        ),
        funded[0],
    )
    aligned = world.index.transaction_count(target) % SLICE_SIZE == 0
    _append_self_spend(world.chain, target)
    if not aligned:
        assert service.stats.invalidations >= 1
    before = service.stats.snapshot()
    start = time.perf_counter()
    service.score(addresses)
    incremental_seconds = time.perf_counter() - start
    after = service.stats.snapshot()
    rebuilt = after["misses"] - before["misses"]
    served = after["hits"] - before["hits"]
    other_slices = sum(
        _slices_of(world.index, a) for a in addresses if a != target
    )
    # Only the touched address was rebuilt; everyone else came from cache.
    assert rebuilt <= _slices_of(world.index, target)
    assert served >= other_slices

    # --- streaming: micro-batched concurrency + live append ----------- #
    # The live-traffic shape: many concurrent single-address requests.
    # The async front end coalesces them into merged passes (one padded
    # head pass instead of n), and a block append streams to the live
    # workers as a tail-replay message — the pool must never re-fork
    # (`starts` stays 1 across the whole phase).
    streaming = ClusterScoringService(
        classifier, world.index, chain=world.chain, config=cluster_config
    )
    streaming.score(addresses)  # warm caches; the first misses fork the pool
    assert streaming.pool_stats()["starts"] == 1

    start = time.perf_counter()
    serial_scores = {}
    for a in addresses:
        serial_scores.update(streaming.score([a]))
    serial_request_seconds = time.perf_counter() - start

    async def _concurrent_sweep():
        results = await asyncio.gather(
            *(streaming.async_score([a]) for a in addresses)
        )
        merged = {}
        for scores in results:
            merged.update(scores)
        return merged

    start = time.perf_counter()
    concurrent_scores = asyncio.run(_concurrent_sweep())
    concurrent_seconds = time.perf_counter() - start
    for a in addresses:
        np.testing.assert_allclose(
            concurrent_scores[a].probabilities,
            serial_scores[a].probabilities,
            rtol=1e-9,
            atol=1e-9,
        )
    batch_stats = streaming.micro_batch_stats()
    assert batch_stats["requests"] == n
    assert batch_stats["batches"] < n, "no coalescing happened"
    concurrent_speedup = serial_request_seconds / concurrent_seconds
    if MIN_STREAMING_SPEEDUP is not None:
        assert concurrent_speedup >= MIN_STREAMING_SPEEDUP, (
            f"micro-batched concurrent scoring only "
            f"{concurrent_speedup:.2f}x serial per-request scoring "
            f"(need >= {MIN_STREAMING_SPEEDUP}x)"
        )

    stream_target = next(
        a for a in addresses if world.chain.utxo_set.balance_of(a) > 0
    )
    _append_self_spend(world.chain, stream_target)
    start = time.perf_counter()
    refreshed = streaming.score(addresses)
    append_refresh_seconds = time.perf_counter() - start
    stream_pool = streaming.pool_stats()
    assert stream_pool["starts"] == 1, stream_pool  # streamed, not re-forked
    assert stream_pool["ingest_batches"] >= 1
    np.testing.assert_allclose(
        refreshed[stream_target].probabilities,
        classifier.predict_proba([stream_target], world.index)[0],
        rtol=1e-9,
        atol=1e-9,
    )

    # --- store: memory-mapped shard columns vs deep-copied slices ----- #
    # Per-worker resident footprint: an in-memory shard holds a deep
    # copy of its slice of the chain (transaction objects, records,
    # interning, memo); a store-backed shard holds only adjacency
    # arrays + caches — the columns stay in mapped file pages shared
    # across every worker.
    inmemory_peak_worker_bytes = max(
        shard.index.resident_nbytes() for shard in streaming.shards
    )
    streaming.close()

    store_cluster = ClusterScoringService(
        classifier,
        world.index,
        chain=world.chain,
        config=ClusterConfig(
            num_shards=CLUSTER_SHARDS,
            num_workers=CLUSTER_WORKERS,
            store_dir=str(tmp_path / "chain_store"),
        ),
    )
    start = time.perf_counter()
    store_scores = store_cluster.score(addresses)
    store_cold_seconds = time.perf_counter() - start
    for a in addresses:
        np.testing.assert_allclose(
            store_scores[a].probabilities,
            refreshed[a].probabilities,
            rtol=1e-9,
            atol=1e-9,
        )
    store_peak_worker_bytes = max(
        shard.index.resident_nbytes() for shard in store_cluster.shards
    )
    store_cluster.close()
    store_memory_saving = inmemory_peak_worker_bytes / store_peak_worker_bytes
    assert store_memory_saving >= MIN_STORE_MEMORY_SAVING, (
        f"store-backed worker only {store_memory_saving:.1f}x smaller "
        f"than the deep-copied in-memory shard "
        f"({store_peak_worker_bytes} vs {inmemory_peak_worker_bytes} "
        f"bytes, need >= {MIN_STORE_MEMORY_SAVING}x)"
    )
    store_throughput_ratio = cluster_cold_seconds / store_cold_seconds
    if MIN_STORE_THROUGHPUT_RATIO is not None:
        assert store_throughput_ratio >= MIN_STORE_THROUGHPUT_RATIO, (
            f"store-backed cold scoring at {store_throughput_ratio:.2f}x "
            f"the in-memory cluster (need >= "
            f"{MIN_STORE_THROUGHPUT_RATIO}x)"
        )

    mode = "smoke" if SMOKE else "full"
    payload = {
        "benchmark": "serving_throughput",
        "mode": mode,
        "slice_size": SLICE_SIZE,
        "num_addresses": n,
        "num_slice_graphs": total_slices,
        "available_cpus": os.cpu_count(),
        "naive_seconds": naive_seconds,
        "naive_addr_per_second": n / naive_seconds,
        "cold_seconds": cold_seconds,
        "cold_addr_per_second": n / cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_addr_per_second": n / warm_seconds,
        "warm_speedup_vs_naive": speedup,
        "obs_on_seconds": obs_on_seconds,
        "obs_off_seconds": obs_off_seconds,
        "obs_overhead_pct": obs_overhead_pct,
        "obs_gate_enforced": MAX_OBS_OVERHEAD_PCT is not None,
        "infer_seconds": infer_seconds,
        "infer_addr_per_second": n / infer_seconds,
        "infer_tape_seconds": infer_tape_seconds,
        "infer_speedup_vs_tape": infer_speedup,
        "infer_bulk_seconds": infer_bulk_seconds,
        "infer_bulk_tape_seconds": infer_bulk_tape_seconds,
        "infer_bulk_speedup_vs_tape": infer_bulk_speedup,
        "infer_gate_enforced": MIN_INFER_SPEEDUP is not None,
        "incremental_seconds": incremental_seconds,
        "cluster_shards": CLUSTER_SHARDS,
        "cluster_workers": CLUSTER_WORKERS,
        "cluster_cold_seconds": cluster_cold_seconds,
        "workers_addr_per_second": n / cluster_cold_seconds,
        "cluster_warm_seconds": cluster_warm_seconds,
        "cluster_speedup": cluster_speedup,
        "cluster_gate_enforced": MIN_CLUSTER_SPEEDUP is not None,
        "warm_restart_seconds": warm_restart_seconds,
        "warm_restart_hit_rate": warm_restart_hit_rate,
        "warm_restart_entries": restored,
        "serial_request_seconds": serial_request_seconds,
        "concurrent_seconds": concurrent_seconds,
        "concurrent_addr_per_second": n / concurrent_seconds,
        "concurrent_speedup_vs_serial": concurrent_speedup,
        "micro_batches": batch_stats["batches"],
        "append_refresh_seconds": append_refresh_seconds,
        "streaming_pool_starts": stream_pool["starts"],
        "streaming_gate_enforced": MIN_STREAMING_SPEEDUP is not None,
        "store_cold_seconds": store_cold_seconds,
        "store_addr_per_second": n / store_cold_seconds,
        "store_peak_worker_bytes": store_peak_worker_bytes,
        "inmemory_peak_worker_bytes": inmemory_peak_worker_bytes,
        "store_memory_saving": store_memory_saving,
        "store_throughput_ratio": store_throughput_ratio,
        "store_gate_enforced": MIN_STORE_THROUGHPUT_RATIO is not None,
    }
    # Merge under a per-mode key: a tier-1 smoke run must not clobber
    # the full-mode trajectory (and vice versa).
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    try:
        existing = json.loads(RESULTS_PATH.read_text())
        if not isinstance(existing, dict) or "benchmark" in existing:
            existing = {}
    except (OSError, ValueError):
        existing = {}
    existing[mode] = payload
    RESULTS_PATH.write_text(json.dumps(existing, indent=2) + "\n")

    rows = [
        ("naive rebuild loop", naive_seconds, n / naive_seconds),
        ("cold cache (batched)", cold_seconds, n / cold_seconds),
        ("warm cache (batched)", warm_seconds, n / warm_seconds),
        ("warm, obs enabled", obs_on_seconds, n / obs_on_seconds),
        ("warm, obs disabled", obs_off_seconds, n / obs_off_seconds),
        ("infer: forward plans", infer_seconds, n / infer_seconds),
        ("infer: autograd tape", infer_tape_seconds, n / infer_tape_seconds),
        ("infer bulk: plans", infer_bulk_seconds, n / infer_bulk_seconds),
        (
            "infer bulk: tape",
            infer_bulk_tape_seconds,
            n / infer_bulk_tape_seconds,
        ),
        (
            f"cluster cold ({CLUSTER_SHARDS}sx{CLUSTER_WORKERS}w)",
            cluster_cold_seconds,
            n / cluster_cold_seconds,
        ),
        ("cluster warm", cluster_warm_seconds, n / cluster_warm_seconds),
        ("warm restart (store)", warm_restart_seconds, n / warm_restart_seconds),
        ("incremental (1 block)", incremental_seconds, n / incremental_seconds),
        (
            "serial per-request",
            serial_request_seconds,
            n / serial_request_seconds,
        ),
        (
            "concurrent micro-batch",
            concurrent_seconds,
            n / concurrent_seconds,
        ),
        (
            "append refresh (stream)",
            append_refresh_seconds,
            n / append_refresh_seconds,
        ),
        ("store-backed cold", store_cold_seconds, n / store_cold_seconds),
    ]
    lines = [
        f"Serving throughput — {n} addresses, {total_slices} slice graphs"
        f" ({mode} mode)",
        f"{'path':<26}{'seconds':>10}{'addr/s':>10}",
    ]
    for name, seconds, rate in rows:
        lines.append(f"{name:<26}{seconds:>10.3f}{rate:>10.1f}")
    lines.append(f"warm speedup over naive: {speedup:.1f}x")
    lines.append(
        f"observability overhead: {obs_overhead_pct:+.1f}% of warm "
        f"throughput over {OBS_REPEATS} alternating sweeps "
        f"(gate {'on' if MAX_OBS_OVERHEAD_PCT else 'off'})"
    )
    lines.append(
        f"forward plans vs tape: {infer_speedup:.2f}x per-request, "
        f"{infer_bulk_speedup:.2f}x bulk "
        f"(gate {'on' if MIN_INFER_SPEEDUP else 'off'}, bit-identical)"
    )
    lines.append(
        f"cluster cold vs single cold: {cluster_speedup:.2f}x "
        f"(gate {'on' if MIN_CLUSTER_SPEEDUP else 'off'}, "
        f"{os.cpu_count()} cpus)"
    )
    lines.append(
        f"warm restart: {restored} slices restored, "
        f"hit rate {warm_restart_hit_rate:.0%}, zero rebuilds"
    )
    lines.append(
        f"streaming: {concurrent_speedup:.2f}x concurrent vs serial in "
        f"{batch_stats['batches']} micro-batches "
        f"(gate {'on' if MIN_STREAMING_SPEEDUP else 'off'}), append "
        f"refresh {append_refresh_seconds:.3f}s with "
        f"{stream_pool['starts']} pool start"
    )
    lines.append(
        f"chain store: worker footprint {store_peak_worker_bytes:,} B "
        f"mapped vs {inmemory_peak_worker_bytes:,} B deep-copied "
        f"({store_memory_saving:.1f}x smaller), cold throughput "
        f"{store_throughput_ratio:.2f}x in-memory "
        f"(gate {'on' if MIN_STORE_THROUGHPUT_RATIO else 'off'})"
    )
    lines.append(
        "cache: hits={hits} misses={misses} evictions={evictions} "
        "invalidations={invalidations}".format(**after)
    )
    save_result("bench_serving_throughput", "\n".join(lines))
