"""Table I — dataset statistics (labelled addresses per behaviour class).

Paper: Exchange 912,322 / Mining 133,119 / Gambling 377,559 /
Service 715,657 (total 2,138,657).  Our simulated corpus is ~4 orders of
magnitude smaller; the comparison of interest is the per-class *mix*
(which classes dominate) rather than absolute counts.
"""

from __future__ import annotations

from repro.datagen import CLASS_NAMES, build_dataset
from repro.eval import format_table

from conftest import BENCH_MIN_TXS, save_result

PAPER_COUNTS = {
    "Exchange": 912_322,
    "Mining": 133_119,
    "Gambling": 377_559,
    "Service": 715_657,
}


def test_table1_dataset_statistics(benchmark, bench_world):
    """Regenerate the Table I class inventory from the simulated world."""

    def run():
        dataset = build_dataset(bench_world, min_transactions=BENCH_MIN_TXS)
        return dataset.class_counts()

    counts = benchmark.pedantic(run, rounds=1, iterations=1)

    total = sum(counts.values())
    paper_total = sum(PAPER_COUNTS.values())
    rows = []
    for name in CLASS_NAMES:
        rows.append(
            [
                name,
                counts[name],
                counts[name] / total,
                PAPER_COUNTS[name],
                PAPER_COUNTS[name] / paper_total,
            ]
        )
    rows.append(["Total", total, 1.0, paper_total, 1.0])
    table = format_table(
        ["Address Label", "Ours", "Ours %", "Paper", "Paper %"],
        rows,
        title="Table I — dataset statistics (simulated vs paper)",
    )
    save_result("table1_dataset", table)

    assert total > 100, "benchmark world produced too few labelled addresses"
    for name in CLASS_NAMES:
        assert counts[name] > 0, f"class {name} missing from the dataset"
