"""Table II — graph representation models vs classical ML.

Paper result (weighted): GFN .9769 F1 > GCN .9514 > DiffPool .9299 among
GNNs; GBDT .9585 best classical, then XGBoost .9329, Decision Tree .9236,
KNN .8598, SVM .5574, Gaussian NB .3999, Bernoulli NB .3047, LR .2684,
MLP .1440.  What must reproduce: GFN on top, GCN > DiffPool, tree
ensembles the best classical family, linear/NB models far behind.

GNNs classify slice graphs directly; classical models consume the
flattened ``[input-agg | centre | output-agg]`` vectors (§IV-C-1).
"""

from __future__ import annotations

import numpy as np

from repro.datagen import CLASS_NAMES
from repro.eval import format_table, precision_recall_f1
from repro.gnn import DiffPool, GCN, GFN, GraphTrainingConfig, fit_graph_classifier
from repro.graphs import flatten_graphs
from repro.ml import (
    BernoulliNB,
    DecisionTreeClassifier,
    GaussianNB,
    GradientBoostingClassifier,
    KNNClassifier,
    LinearSVM,
    LogisticRegression,
    MLPClassifier,
    XGBoostClassifier,
)

from conftest import BENCH_SEED, save_result

PAPER_F1 = {
    "GFN (ours)": 0.9769,
    "GCN": 0.9514,
    "Diffpool": 0.9299,
    "GBDT": 0.9585,
    "XGBoost": 0.9329,
    "Decision Tree": 0.9236,
    "KNN": 0.8598,
    "SVM": 0.5574,
    "Gaussian NB": 0.3999,
    "Bernoulli NB": 0.3047,
    "LR": 0.2684,
    "MLP": 0.1440,
}

GNN_EPOCHS = 25


def _gnn_rows(train_graphs, test_graphs):
    input_dim = train_graphs[0].feature_dim
    truth = np.array([g.label for g in test_graphs])
    rows = []
    models = [
        ("GFN (ours)", GFN(input_dim, 4, hidden_dim=64, k=2, rng=BENCH_SEED)),
        ("Diffpool", DiffPool(input_dim, 4, hidden_dim=64, num_clusters=8,
                              rng=BENCH_SEED)),
        ("GCN", GCN(input_dim, 4, hidden_dim=64, rng=BENCH_SEED)),
    ]
    for name, model in models:
        fit_graph_classifier(
            model,
            train_graphs,
            GraphTrainingConfig(epochs=GNN_EPOCHS, batch_size=32, seed=BENCH_SEED),
        )
        report = precision_recall_f1(truth, model.predict(test_graphs), 4)
        rows.append(("GNNs", name, report))
    return rows


def _classical_rows(train_split, test_split, bench_graphs):
    """Classical models under the paper's protocol: flattened node-feature
    aggregates at raw satoshi magnitude, no standardisation.

    The paper's Table II pattern — scale-sensitive models (LR/MLP/SVM/NB)
    collapsing while scale-invariant trees stay strong — is a direct
    consequence of this protocol; a standardised variant is reported
    separately below.
    """
    pipeline_graphs = bench_graphs["raw_graphs_by_address"]
    x_train = np.stack(
        [flatten_graphs(pipeline_graphs[a], raw=True)
         for a in train_split.addresses]
    )
    x_test = np.stack(
        [flatten_graphs(pipeline_graphs[a], raw=True)
         for a in test_split.addresses]
    )
    y_train, y_test = train_split.labels, test_split.labels
    models = [
        ("LR", LogisticRegression(epochs=300, seed=BENCH_SEED,
                                  standardize=False)),
        ("MLP", MLPClassifier(hidden_dims=(64,), epochs=60, seed=BENCH_SEED,
                              standardize=False)),
        ("SVM", LinearSVM(epochs=300, seed=BENCH_SEED, standardize=False)),
        ("Bernoulli NB", BernoulliNB()),
        ("Gaussian NB", GaussianNB()),
        ("KNN", KNNClassifier(k=5, standardize=False)),
        ("Decision Tree", DecisionTreeClassifier(max_depth=12, seed=BENCH_SEED)),
        ("GBDT", GradientBoostingClassifier(n_estimators=60, seed=BENCH_SEED)),
        ("XGBoost", XGBoostClassifier(n_estimators=60, seed=BENCH_SEED)),
    ]
    rows = []
    for name, model in models:
        model.fit(x_train, y_train)
        report = precision_recall_f1(y_test, model.predict(x_test), 4)
        rows.append(("MLs", name, report))
    return rows


def _standardized_rows(train_split, test_split, bench_graphs):
    """Secondary block: the scale-sensitive models with standardisation
    (our library default) — quantifies how much of the paper's classical
    collapse is a preprocessing artifact."""
    pipeline_graphs = bench_graphs["raw_graphs_by_address"]
    x_train = np.stack(
        [flatten_graphs(pipeline_graphs[a]) for a in train_split.addresses]
    )
    x_test = np.stack(
        [flatten_graphs(pipeline_graphs[a]) for a in test_split.addresses]
    )
    models = [
        ("LR (standardized)", LogisticRegression(epochs=300, seed=BENCH_SEED)),
        ("MLP (standardized)", MLPClassifier(hidden_dims=(64,), epochs=60,
                                             seed=BENCH_SEED)),
        ("SVM (standardized)", LinearSVM(epochs=300, seed=BENCH_SEED)),
        ("KNN (standardized)", KNNClassifier(k=5)),
    ]
    rows = []
    for name, model in models:
        model.fit(x_train, train_split.labels)
        report = precision_recall_f1(
            test_split.labels, model.predict(x_test), 4
        )
        rows.append(("MLs+scaling", name, report))
    return rows


def test_table2_graph_representation_models(
    benchmark, bench_world, bench_split, bench_graphs
):
    """Train all 12 models and regenerate Table II."""
    _, train_split, test_split = bench_split

    # Classical models need the raw (un-encoded) graphs for flattening;
    # rebuild them once here and stash for reuse.
    if "raw_graphs_by_address" not in bench_graphs:
        bench_graphs["raw_graphs_by_address"] = bench_graphs["pipeline"].build_many(
            bench_world.index,
            list(train_split.addresses) + list(test_split.addresses),
        )

    def run():
        rows = _gnn_rows(
            bench_graphs["train_graphs"], bench_graphs["test_graphs"]
        )
        rows += _classical_rows(train_split, test_split, bench_graphs)
        rows += _standardized_rows(train_split, test_split, bench_graphs)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table_rows = [
        [
            family,
            name,
            report.weighted_precision,
            report.weighted_recall,
            report.weighted_f1,
            PAPER_F1.get(name, float("nan")),
        ]
        for family, name, report in rows
    ]
    table = format_table(
        ["Methods", "Model", "Precision", "Recall", "F1-score", "Paper F1"],
        table_rows,
        title="Table II — graph representation model comparison",
    )
    save_result("table2_graph_models", table)

    by_name = {name: report.weighted_f1 for _, name, report in rows}
    # Shape checks from the paper: GFN leads the GNNs; scale-sensitive
    # models collapse under the raw-feature protocol while trees stay
    # strong.  (Bernoulli NB is excluded from the weak group: its median
    # binarisation is scale-invariant, so it does not collapse on our
    # cleaner synthetic classes — deviation documented in EXPERIMENTS.md.)
    assert by_name["GFN (ours)"] >= by_name["Diffpool"] - 0.02
    assert by_name["GFN (ours)"] > by_name["LR"]
    tree_best = max(by_name["GBDT"], by_name["XGBoost"], by_name["Decision Tree"])
    weak_best = max(by_name["LR"], by_name["SVM"], by_name["Gaussian NB"])
    assert tree_best > weak_best
