"""Table III — address classification heads over frozen GFN embeddings.

Paper result: LSTM+MLP weighted F1 .9497 best, ahead of BiLSTM .9460,
SUM .9450, Attention .9452, MAX .9486, AVG .9424; *Service* is the
hardest class for every head (F1 ≈ .80–.85 vs ≈ .97–.99 elsewhere).
What must reproduce: all heads close together, LSTM+MLP at/near the top,
Service clearly the weakest class.
"""

from __future__ import annotations

import numpy as np

from repro.core.embedding import embedding_sequences
from repro.datagen import CLASS_NAMES
from repro.eval import format_table, precision_recall_f1
from repro.gnn import GFN, GraphTrainingConfig, fit_graph_classifier
from repro.seqmodels import (
    SequenceTrainingConfig,
    build_head,
    fit_sequence_classifier,
    predict_sequences,
)

from conftest import BENCH_SEED, save_result

PAPER_WEIGHTED_F1 = {
    "LSTM+MLP": 0.9497,
    "BiLSTM+MLP": 0.9460,
    "Attention+MLP": 0.9452,
    "SUM+MLP": 0.9450,
    "AVG+MLP": 0.9424,
    "MAX+MLP": 0.9486,
}

HEAD_LABELS = {
    "lstm": "LSTM+MLP",
    "bilstm": "BiLSTM+MLP",
    "attention": "Attention+MLP",
    "sum": "SUM+MLP",
    "avg": "AVG+MLP",
    "max": "MAX+MLP",
}

ENCODER_EPOCHS = 25
HEAD_EPOCHS = 40


def test_table3_address_classification_heads(
    benchmark, bench_split, bench_graphs
):
    """Train one GFN encoder, then all six heads on its embeddings."""
    _, train_split, test_split = bench_split
    encoded = bench_graphs["encoded_by_address"]

    def run():
        encoder = GFN(
            bench_graphs["train_graphs"][0].feature_dim,
            4,
            hidden_dim=64,
            k=2,
            rng=BENCH_SEED,
        )
        fit_graph_classifier(
            encoder,
            bench_graphs["train_graphs"],
            GraphTrainingConfig(
                epochs=ENCODER_EPOCHS, batch_size=32, seed=BENCH_SEED
            ),
        )
        train_sequences = embedding_sequences(
            encoder, encoded, train_split.addresses
        )
        test_sequences = embedding_sequences(
            encoder, encoded, test_split.addresses
        )
        results = {}
        for head_name, label in HEAD_LABELS.items():
            head = build_head(
                head_name,
                input_dim=encoder.embedding_dim,
                num_classes=4,
                hidden_dim=64,
                rng=BENCH_SEED,
            )
            fit_sequence_classifier(
                head,
                train_sequences,
                train_split.labels,
                SequenceTrainingConfig(
                    epochs=HEAD_EPOCHS, batch_size=32, seed=BENCH_SEED,
                    learning_rate=3e-3,
                ),
            )
            predictions = predict_sequences(head, test_sequences)
            results[label] = precision_recall_f1(
                test_split.labels, predictions, num_classes=4
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, report in results.items():
        for class_id, class_name in enumerate(CLASS_NAMES):
            row = report.row(class_id)
            rows.append([label, class_name, row.precision, row.recall, row.f1, ""])
        rows.append(
            [
                label,
                "Weighted Avg",
                report.weighted_precision,
                report.weighted_recall,
                report.weighted_f1,
                PAPER_WEIGHTED_F1[label],
            ]
        )
    table = format_table(
        ["Model", "Type", "Precision", "Recall", "F1-score", "Paper F1"],
        rows,
        title="Table III — address classification model comparison",
    )
    save_result("table3_heads", table)

    # Shape checks: every head learns; Service is the hardest class for
    # the winning head, as in the paper.
    for label, report in results.items():
        assert report.weighted_f1 > 0.5, f"{label} failed to learn"
    lstm = results["LSTM+MLP"]
    service_f1 = lstm.row(3).f1
    other_f1 = [lstm.row(c).f1 for c in range(3)]
    assert service_f1 <= max(other_f1) + 1e-9
