"""Table IV — BAClassifier vs published bitcoin address classifiers.

Paper result (weighted F1): BAClassifier .9497 ≫ BitScope ~.72–.83,
Lee et al. + Random Forest ~.77–.86, Lee et al. + ANN ~.45–.65.
What must reproduce: BAClassifier on top by a clear margin, Lee-RF and
BitScope in the middle band, Lee-ANN weakest.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import BitScopeClassifier, LeeClassifier
from repro.core import BAClassifier, BAClassifierConfig
from repro.datagen import CLASS_NAMES
from repro.eval import format_table, precision_recall_f1

from conftest import BENCH_SEED, BENCH_SLICE_SIZE, save_result

PAPER_WEIGHTED = {
    "BAClassifier": 0.9497,
    "BitScope": 0.7750,       # midpoint of the per-class band
    "Lee et al. + RF": 0.8075,
    "Lee et al. + ANN": 0.5350,
}


def test_table4_classifier_comparison(benchmark, bench_world, bench_split):
    """Train all four classifiers and regenerate Table IV."""
    _, train_split, test_split = bench_split

    def run():
        results = {}

        clf = BAClassifier(
            BAClassifierConfig(
                slice_size=BENCH_SLICE_SIZE,
                gnn_epochs=25,
                head_epochs=40,
                head_learning_rate=3e-3,
                head_restarts=3,
                seed=BENCH_SEED,
            )
        )
        clf.fit(train_split.addresses, train_split.labels, bench_world.index)
        predictions = clf.predict(test_split.addresses, bench_world.index)
        results["BAClassifier"] = precision_recall_f1(
            test_split.labels, predictions, num_classes=4
        )

        bitscope = BitScopeClassifier(seed=BENCH_SEED)
        bitscope.fit(train_split.addresses, train_split.labels, bench_world.index)
        results["BitScope"] = precision_recall_f1(
            test_split.labels,
            bitscope.predict(test_split.addresses, bench_world.index),
            num_classes=4,
        )

        # raw_features replays the original Lee pipeline (satoshi-scale
        # inputs): the RF is scale-invariant, the ANN collapses — the
        # mechanism behind the paper's RF ≫ ANN gap.
        for model, label in (
            ("random_forest", "Lee et al. + RF"),
            ("ann", "Lee et al. + ANN"),
        ):
            lee = LeeClassifier(model=model, seed=BENCH_SEED, raw_features=True)
            lee.fit(train_split.addresses, train_split.labels, bench_world.index)
            results[label] = precision_recall_f1(
                test_split.labels,
                lee.predict(test_split.addresses, bench_world.index),
                num_classes=4,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, report in results.items():
        for class_id, class_name in enumerate(CLASS_NAMES):
            row = report.row(class_id)
            rows.append([label, class_name, row.precision, row.recall, row.f1, ""])
        rows.append(
            [
                label,
                "Weighted Avg",
                report.weighted_precision,
                report.weighted_recall,
                report.weighted_f1,
                PAPER_WEIGHTED[label],
            ]
        )
    table = format_table(
        ["Classifier", "Type", "Precision", "Recall", "F1-score", "Paper F1"],
        rows,
        title="Table IV — BAClassifier vs published classifiers",
    )
    save_result("table4_classifiers", table)

    f1 = {label: report.weighted_f1 for label, report in results.items()}
    assert f1["BAClassifier"] >= f1["Lee et al. + ANN"]
    assert f1["BAClassifier"] >= f1["BitScope"] - 0.02
    assert f1["Lee et al. + RF"] >= f1["Lee et al. + ANN"] - 0.02
