"""Table V — runtime overhead per graph-construction stage.

Paper result (single-core, per address): Stage 1 0.19 s (4.4 %),
Stage 2 0.63 s (14.5 %), Stage 3 2.71 s (62.4 %), Stage 4 0.81 s (18.7 %),
total 4.34 s.  The paper's Stage 3 dominates because its mainnet graphs
contain thousands of multi-transaction address nodes per slice; at our
simulator scale the pairwise-similarity work is far smaller, so we report
measured shares honestly and flag the deviation (see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from repro.eval import format_table
from repro.graphs import (
    STAGE_NAMES,
    GraphConstructionPipeline,
    GraphPipelineConfig,
)

from conftest import BENCH_SLICE_SIZE, save_result

PAPER_SECONDS = {
    STAGE_NAMES[0]: 0.19,
    STAGE_NAMES[1]: 0.63,
    STAGE_NAMES[2]: 2.71,
    STAGE_NAMES[3]: 0.81,
}
PAPER_RATIO = {
    STAGE_NAMES[0]: 0.0438,
    STAGE_NAMES[1]: 0.1452,
    STAGE_NAMES[2]: 0.6244,
    STAGE_NAMES[3]: 0.1866,
}
STAGE_TITLES = {
    STAGE_NAMES[0]: "Stage 1 (extraction)",
    STAGE_NAMES[1]: "Stage 2 (single compression)",
    STAGE_NAMES[2]: "Stage 3 (multi compression)",
    STAGE_NAMES[3]: "Stage 4 (augmentation)",
}

NUM_ADDRESSES = 40


def test_table5_construction_overhead(benchmark, bench_world, bench_split):
    """Time the four stages over the busiest benchmark addresses."""
    dataset, _, _ = bench_split
    # The paper averages over its full corpus; we use the busiest
    # addresses, where the per-stage distinctions are measurable.
    addresses = sorted(
        dataset.addresses,
        key=lambda a: -bench_world.index.transaction_count(a),
    )[:NUM_ADDRESSES]

    def run():
        pipeline = GraphConstructionPipeline(
            GraphPipelineConfig(slice_size=BENCH_SLICE_SIZE)
        )
        for address in addresses:
            pipeline.build(bench_world.index, address)
        return pipeline

    pipeline = benchmark.pedantic(run, rounds=1, iterations=1)

    ratios = pipeline.timer.ratios()
    total = pipeline.timer.total()
    rows = []
    for name in STAGE_NAMES:
        rows.append(
            [
                STAGE_TITLES[name],
                pipeline.timer.totals[name] / NUM_ADDRESSES,
                ratios[name],
                PAPER_SECONDS[name],
                PAPER_RATIO[name],
            ]
        )
    rows.append(["Total", total / NUM_ADDRESSES, 1.0, 4.34, 1.0])
    table = format_table(
        [
            "Stage",
            "Ours s/addr",
            "Ours ratio",
            "Paper s/addr",
            "Paper ratio",
        ],
        rows,
        title="Table V — graph construction stage overhead",
    )
    save_result("table5_overhead", table)

    assert total > 0
    # Compression stages together are a visible share of the pipeline.
    compression_share = ratios[STAGE_NAMES[1]] + ratios[STAGE_NAMES[2]]
    assert compression_share > 0.02
