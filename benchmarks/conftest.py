"""Shared fixtures for the benchmark harness.

One medium-scale world and its constructed/encoded graphs are built once
per session and shared by the table/figure benchmarks, so each benchmark
times only its own experiment.

Every benchmark writes its paper-style table to
``benchmarks/results/<name>.txt`` (and prints it, visible with ``-s``),
so ``pytest benchmarks/ --benchmark-only`` leaves a full set of
regenerated tables on disk.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

import numpy as np
import pytest

from repro.datagen import WorldConfig, build_dataset, generate_world
from repro.gnn import EncodedGraph, encode_sequences
from repro.graphs import GraphConstructionPipeline, GraphPipelineConfig

BENCH_SEED = 2023
RESULTS_DIR = Path(__file__).parent / "results"

# The benchmark world: scaled down from the paper's 2.1 M addresses to a
# CPU-friendly economy, with every behaviour class active.
BENCH_WORLD_CONFIG = WorldConfig(
    seed=BENCH_SEED,
    num_blocks=220,
    num_retail=90,
    num_gamblers=32,
    num_miner_members=18,
    num_mixers=3,
    num_wallet_services=3,
    num_lending_desks=2,
)

# Paper's slicing unit is 100; at our reduced per-address transaction
# counts a slice of 40 yields comparable slice-per-address statistics.
BENCH_SLICE_SIZE = 40
BENCH_MIN_TXS = 5
BENCH_MAX_PER_CLASS = 60


def save_result(name: str, text: str) -> None:
    """Persist and echo one benchmark's regenerated table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def bench_world():
    """The shared simulated economy."""
    return generate_world(BENCH_WORLD_CONFIG)


@pytest.fixture(scope="session")
def bench_split(bench_world):
    """Stratified train/test address split (80/20 like the paper)."""
    dataset = build_dataset(
        bench_world,
        min_transactions=BENCH_MIN_TXS,
        max_per_class=BENCH_MAX_PER_CLASS,
        seed=BENCH_SEED,
    )
    train, test = dataset.split(test_fraction=0.2, seed=BENCH_SEED)
    return dataset, train, test


@pytest.fixture(scope="session")
def bench_graphs(bench_world, bench_split) -> Dict:
    """Constructed + encoded slice graphs for the split addresses."""
    _, train, test = bench_split
    pipeline = GraphConstructionPipeline(
        GraphPipelineConfig(slice_size=BENCH_SLICE_SIZE)
    )
    label_map = {
        **dict(zip(train.addresses, (int(v) for v in train.labels))),
        **dict(zip(test.addresses, (int(v) for v in test.labels))),
    }
    addresses = list(train.addresses) + list(test.addresses)
    graphs_by_address = pipeline.build_many(bench_world.index, addresses)
    encoded_by_address = encode_sequences(graphs_by_address, label_map)

    def flat(split) -> List[EncodedGraph]:
        return [g for a in split.addresses for g in encoded_by_address[a]]

    return {
        "pipeline": pipeline,
        "encoded_by_address": encoded_by_address,
        "train_graphs": flat(train),
        "test_graphs": flat(test),
    }
