"""Drive the UTXO chain substrate directly: wallets, blocks, queries.

Demonstrates the low-level API beneath the classifier — the same
machinery the workload generator uses.  Builds a tiny hand-rolled
economy, then answers explorer-style questions (balances, history,
counterparties, supply) and constructs an address graph by hand.

Usage::

    python examples/chain_explorer.py
"""

from __future__ import annotations

from repro.chain import (
    AddressFactory,
    Blockchain,
    ChainParams,
    Mempool,
    Wallet,
    attach_index,
    btc,
)
from repro.graphs import (
    GraphConstructionPipeline,
    GraphPipelineConfig,
    NodeKind,
)


def main() -> None:
    factory = AddressFactory(2009)
    chain = Blockchain(ChainParams(halving_interval=100))
    index = attach_index(chain)
    mempool = Mempool(chain.utxo_set)

    miner = Wallet(mempool.view(), factory, name="miner")
    alice = Wallet(mempool.view(), factory, name="alice")
    bob = Wallet(mempool.view(), factory, name="bob")

    print("Mining 5 blocks to the miner ...")
    reward_address = miner.new_address()
    for height in range(1, 6):
        chain.mine_block([], reward_address=reward_address,
                         timestamp=600.0 * height)
    print(f"  miner balance: {miner.balance() / 1e8:.2f} BTC")
    print(f"  total supply:  {chain.total_supply() / 1e8:.2f} BTC")

    print("\nMiner pays Alice 30 BTC (fee 0.001); Alice pays Bob 12 ...")
    alice_addr = alice.new_address()
    tx1 = miner.create_transaction(
        [(alice_addr, btc(30))], timestamp=3600.0, fee=btc(0.001)
    )
    mempool.submit(tx1)
    bob_addr = bob.new_address()
    tx2 = alice.create_transaction(
        [(bob_addr, btc(12))], timestamp=3601.0, fee=btc(0.001)
    )
    mempool.submit(tx2)  # spends Alice's unconfirmed output
    block = chain.mine_block(
        mempool.drain(), reward_address=reward_address, timestamp=3900.0
    )
    print(f"  block {block.height} mined with {block.tx_count} transactions "
          f"(fees collected: {block.total_fees() / 1e8:.4f} BTC)")

    print("\nExplorer queries:")
    print(f"  alice balance: {alice.balance() / 1e8:.4f} BTC "
          "(change went to a fresh address — the paper's §II-A mechanism)")
    print(f"  bob balance:   {bob.balance() / 1e8:.4f} BTC")
    records = index.records_for(alice_addr)
    for record in records:
        print(
            f"  {alice_addr[:16]}… {record.direction:>4} "
            f"{abs(record.net_value) / 1e8:.4f} BTC at t={record.timestamp:.0f} "
            f"(block {record.block_height})"
        )
    partners = index.counterparties(alice_addr)
    print(f"  counterparties of alice's address: {len(partners)}")

    print("\nBuilding the address graph for the miner's reward address ...")
    pipeline = GraphConstructionPipeline(GraphPipelineConfig(slice_size=10))
    graphs = pipeline.build(index, reward_address)
    graph = graphs[0]
    kinds = {
        kind: len(graph.nodes_of_kind(kind))
        for kind in (NodeKind.ADDRESS, NodeKind.TRANSACTION,
                     NodeKind.SINGLE_HYPER, NodeKind.MULTI_HYPER)
    }
    print(f"  {len(graphs)} slice graph(s); first has {graph.num_nodes} nodes "
          f"{kinds} and {graph.num_edges} edges")
    features = graph.feature_matrix()
    print(f"  node feature matrix: {features.shape} "
          "(15 SFE stats + 4 centralities + kind one-hot + centre flag)")


if __name__ == "__main__":
    main()
