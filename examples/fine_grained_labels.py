"""Fine-grained sub-behaviour classification — paper future work, built.

The paper's §V names its first future direction: "expand the number of
categories based on the address behavior, such as exchange cold wallets,
exchange hot wallets...".  The simulator already knows each address's
sub-behaviour, so this example trains BAClassifier over the fine-grained
taxonomy (up to 10 classes) and additionally demonstrates the second
future-work direction — neighbour-label refinement.

Usage::

    python examples/fine_grained_labels.py
"""

from __future__ import annotations

import numpy as np

from repro import BAClassifier, BAClassifierConfig, WorldConfig, generate_world
from repro.core import refine_with_neighbor_labels
from repro.datagen import build_fine_grained_dataset
from repro.eval import classification_report, precision_recall_f1


def main() -> None:
    print("Simulating ...")
    world = generate_world(WorldConfig(seed=23, num_blocks=180, num_retail=90))
    dataset, class_names = build_fine_grained_dataset(
        world, min_transactions=5, min_class_size=6
    )
    train, test = dataset.split(test_fraction=0.25, seed=0)
    print(f"  {len(class_names)} sub-behaviour classes: {class_names}")
    print(f"  train={len(train)} test={len(test)}")

    print("Training BAClassifier on the fine-grained taxonomy ...")
    classifier = BAClassifier(
        BAClassifierConfig(
            num_classes=len(class_names),
            slice_size=40,
            gnn_epochs=18,
            head_epochs=30,
            head_learning_rate=3e-3,
            head_restarts=2,
            seed=0,
        )
    )
    classifier.fit(train.addresses, train.labels, world.index)

    predictions = classifier.predict(test.addresses, world.index)
    print(classification_report(test.labels, predictions, class_names=class_names))

    print("\nApplying neighbour-label refinement (future work #2) ...")
    probabilities = classifier.predict_proba(test.addresses, world.index)
    anchors = dict(zip(train.addresses, (int(v) for v in train.labels)))
    refined = refine_with_neighbor_labels(
        probabilities, test.addresses, world.index, anchors, alpha=0.25
    )
    refined_predictions = np.argmax(refined, axis=1)
    base = precision_recall_f1(
        test.labels, predictions, num_classes=len(class_names)
    ).weighted_f1
    after = precision_recall_f1(
        test.labels, refined_predictions, num_classes=len(class_names)
    ).weighted_f1
    print(f"  weighted F1: {base:.4f} -> {after:.4f} with refinement")


if __name__ == "__main__":
    main()
