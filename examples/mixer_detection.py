"""Underground-bank (money laundering) detection — the paper's workflow.

§III "Workflow of Our System": underground banks hide behind mixing
services; BAClassifier flags an address as *Service*, and the analyst
then walks its counterparties to dig out further hidden service
addresses.

This example reproduces that investigation loop on a simulated economy:

1. train BAClassifier on labelled addresses;
2. sweep a pool of unlabelled-to-the-model test addresses and flag the
   ones classified as Service;
3. for each flagged address, rank counterparties by interaction volume
   and probe them with the classifier — recovering related mixer
   addresses that never appeared in the flagged set.

Usage::

    python examples/mixer_detection.py
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import (
    BAClassifier,
    BAClassifierConfig,
    CLASS_NAMES,
    AddressLabel,
    WorldConfig,
    build_dataset,
    generate_world,
)


def main() -> None:
    print("Simulating an economy with active mixers/underground banks ...")
    world = generate_world(
        WorldConfig(seed=13, num_blocks=180, num_mixers=4, num_retail=90)
    )
    dataset = build_dataset(world, min_transactions=5)
    train, test = dataset.split(test_fraction=0.25, seed=1)
    print(f"  labelled addresses: {dataset.class_counts()}")

    print("Training BAClassifier ...")
    classifier = BAClassifier(
        BAClassifierConfig(
            slice_size=40,
            gnn_epochs=15,
            head_epochs=25,
            head_learning_rate=3e-3,
            seed=1,
        )
    )
    classifier.fit(train.addresses, train.labels, world.index)

    print("Sweeping held-out addresses for Service behaviour ...")
    predictions = classifier.predict(test.addresses, world.index)
    flagged = [
        address
        for address, label in zip(test.addresses, predictions)
        if label == AddressLabel.SERVICE
    ]
    truth = {
        address: int(label)
        for address, label in zip(test.addresses, test.labels)
    }
    true_positives = sum(
        1 for address in flagged if truth[address] == AddressLabel.SERVICE
    )
    print(
        f"  flagged {len(flagged)} addresses as Service; "
        f"{true_positives} are labelled Service in ground truth"
    )

    if not flagged:
        print("  nothing flagged — rerun with a different seed")
        return

    print("\nTracing flows downstream of the flagged addresses ...")
    # Mixing infrastructure is deliberately low-activity: each peeling-
    # chain intermediate sees exactly two transactions (receive, then
    # split onward).  Investigators therefore trace *downstream*: the
    # outputs of transactions the flagged address funds are the next hop
    # of the laundering flow.
    downstream = Counter()
    flagged_set = set(flagged)
    for target in flagged:
        for tx in world.index.transactions_of(target):
            if target in set(tx.input_addresses()):
                for other in tx.output_addresses():
                    if other != target:
                        downstream[other] += 1
    excluded = set(train.addresses) | flagged_set
    candidates = [
        address
        for address, _count in downstream.most_common(120)
        if world.index.transaction_count(address) >= 2
        and address not in excluded
    ][:12]
    if not candidates:
        print("  no probe-worthy counterparties found")
        return

    # Ground truth for the probe: actual wallet ownership.  Mixer float
    # and change addresses are *not* in the labelled dataset (only intake
    # addresses are published) — exactly the "hidden addresses" the
    # paper's workflow is meant to dig out.
    from repro.datagen import MixerActor

    mixer_owned = set()
    for actor in world.actors:
        if isinstance(actor, MixerActor):
            mixer_owned.update(actor.wallet.addresses)

    probe_labels = classifier.predict(candidates, world.index)
    hidden_hits = 0
    for address, label in zip(candidates, probe_labels):
        known = world.labels.get(address)
        if known is not None:
            truth = CLASS_NAMES[known]
        elif address in mixer_owned:
            truth = "hidden mixer infra"
        else:
            truth = "unlabelled"
        marker = ""
        if label == AddressLabel.SERVICE and (
            known == AddressLabel.SERVICE or address in mixer_owned
        ):
            hidden_hits += 1
            marker = "  <-- recovered"
        print(
            f"  {address[:24]:<26} predicted={CLASS_NAMES[label]:<9} "
            f"truth={truth:<19}{marker}"
        )
    print(
        f"\nRecovered {hidden_hits} hidden underground-bank addresses by "
        "counterparty probing — the paper's 'dig out more hidden addresses "
        "of underground banks' loop."
    )


if __name__ == "__main__":
    main()
