"""Compare graph models and classical baselines on one dataset.

A compact version of the paper's Table II / Table IV studies: trains the
GFN and GCN graph classifiers, the GBDT/flattened-feature classical
pipeline, and the two published baselines, then prints one ranked table.

Usage::

    python examples/model_comparison.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import WorldConfig, build_dataset, generate_world
from repro.baselines import BitScopeClassifier, LeeClassifier
from repro.eval import format_table, precision_recall_f1
from repro.gnn import GCN, GFN, GraphTrainingConfig, encode_sequences, fit_graph_classifier
from repro.graphs import GraphConstructionPipeline, GraphPipelineConfig, flatten_graphs
from repro.ml import GradientBoostingClassifier

SEED = 5


def main() -> None:
    print("Simulating and preparing data ...")
    world = generate_world(WorldConfig(seed=SEED, num_blocks=160))
    dataset = build_dataset(world, min_transactions=5)
    train, test = dataset.split(test_fraction=0.25, seed=SEED)

    pipeline = GraphConstructionPipeline(GraphPipelineConfig(slice_size=40))
    addresses = list(train.addresses) + list(test.addresses)
    graphs_by_address = pipeline.build_many(world.index, addresses)
    label_map = {
        **dict(zip(train.addresses, (int(v) for v in train.labels))),
        **dict(zip(test.addresses, (int(v) for v in test.labels))),
    }
    encoded = encode_sequences(graphs_by_address, label_map)
    train_graphs = [g for a in train.addresses for g in encoded[a]]
    test_graphs = [g for a in test.addresses for g in encoded[a]]
    graph_truth = np.array([g.label for g in test_graphs])

    results = []

    for name, model in (
        ("GFN (graph-level)", GFN(train_graphs[0].feature_dim, 4, rng=SEED)),
        ("GCN (graph-level)", GCN(train_graphs[0].feature_dim, 4, rng=SEED)),
    ):
        start = time.perf_counter()
        fit_graph_classifier(
            model, train_graphs,
            GraphTrainingConfig(epochs=15, batch_size=32, seed=SEED),
        )
        report = precision_recall_f1(graph_truth, model.predict(test_graphs), 4)
        results.append([name, report.weighted_f1, time.perf_counter() - start])

    print("Training classical pipeline (GBDT on flattened graphs) ...")
    x_train = np.stack([flatten_graphs(graphs_by_address[a]) for a in train.addresses])
    x_test = np.stack([flatten_graphs(graphs_by_address[a]) for a in test.addresses])
    start = time.perf_counter()
    gbdt = GradientBoostingClassifier(n_estimators=40, seed=SEED)
    gbdt.fit(x_train, train.labels)
    report = precision_recall_f1(test.labels, gbdt.predict(x_test), 4)
    results.append(["GBDT (flattened)", report.weighted_f1, time.perf_counter() - start])

    print("Training published baselines ...")
    for name, baseline in (
        ("BitScope", BitScopeClassifier(seed=SEED)),
        ("Lee et al. + RF", LeeClassifier(model="random_forest", seed=SEED)),
        ("Lee et al. + ANN", LeeClassifier(model="ann", seed=SEED)),
    ):
        start = time.perf_counter()
        baseline.fit(train.addresses, train.labels, world.index)
        predictions = baseline.predict(test.addresses, world.index)
        report = precision_recall_f1(test.labels, predictions, 4)
        results.append([name, report.weighted_f1, time.perf_counter() - start])

    results.sort(key=lambda row: -row[1])
    print()
    print(
        format_table(
            ["Model", "Weighted F1", "Train time (s)"],
            results,
            title="Model comparison (address behaviour classification)",
        )
    )


if __name__ == "__main__":
    main()
