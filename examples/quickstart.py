"""Quickstart: simulate a bitcoin economy, train BAClassifier, evaluate.

Runs the full pipeline end to end in a couple of minutes on a laptop:

1. simulate a UTXO-chain economy with labelled actor behaviours;
2. assemble the labelled address dataset and split it 80/20;
3. fit BAClassifier (graph construction → GFN → LSTM+MLP);
4. print the per-class classification report and a sample prediction.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import (
    BAClassifier,
    BAClassifierConfig,
    CLASS_NAMES,
    WorldConfig,
    build_dataset,
    classification_report,
    generate_world,
)


def main() -> None:
    print("1) Simulating the bitcoin economy ...")
    start = time.perf_counter()
    world = generate_world(WorldConfig(seed=7, num_blocks=180))
    print(
        f"   chain height {world.chain.height}, "
        f"{world.chain.transaction_count():,} transactions, "
        f"{len(world.labels)} labelled addresses "
        f"({time.perf_counter() - start:.1f}s)"
    )

    print("2) Building the labelled dataset ...")
    dataset = build_dataset(world, min_transactions=5)
    train, test = dataset.split(test_fraction=0.2, seed=0)
    print(f"   train={len(train)} test={len(test)} classes={dataset.class_counts()}")

    print("3) Training BAClassifier (GFN encoder + LSTM head) ...")
    config = BAClassifierConfig(
        slice_size=40,
        gnn_epochs=15,
        head_epochs=25,
        head_learning_rate=3e-3,
        seed=0,
    )
    classifier = BAClassifier(config)
    start = time.perf_counter()
    classifier.fit(train.addresses, train.labels, world.index)
    print(f"   trained in {time.perf_counter() - start:.1f}s")

    print("4) Evaluating on held-out addresses ...")
    predictions = classifier.predict(test.addresses, world.index)
    print(classification_report(test.labels, predictions, class_names=CLASS_NAMES))

    address = test.addresses[0]
    predicted = classifier.classify_address(address, world.index)
    actual = int(test.labels[0])
    print(
        f"\nSample: {address} -> predicted {CLASS_NAMES[predicted]}, "
        f"actually {CLASS_NAMES[actual]} "
        f"({world.index.transaction_count(address)} transactions on chain)"
    )


if __name__ == "__main__":
    main()
