#!/usr/bin/env python
"""Fail loudly when the recorded benchmark trajectory regresses a gate.

``benchmarks/results/BENCH_pipeline.json`` and
``benchmarks/results/BENCH_serving.json`` hold the tracked full-mode
perf trajectories.  Tier-1 runs only refresh the *smoke* entries (gates
disabled there — timing a seconds-scale workload is noise), so a perf
regression could silently ride along until someone re-runs the full
benchmarks.  This check closes that gap: ``scripts/tier1.sh`` calls it
after the smoke benchmarks to re-assert the gated speedups of the
recorded full-mode entries.

Pipeline gates (mirroring ``benchmarks/bench_pipeline_throughput.py``):

- ``stage4_batch_speedup``      >= 1.5  (block-diagonal batching, PR 4)
- ``stage4_speedup_vs_reference`` >= 10 (vectorized kernels, PR 2)
- ``stage123_speedup_vs_reference`` >= 1.2 (ArrayGraph stages, PR 3)

Serving gates (mirroring ``benchmarks/bench_serving_throughput.py``):

- ``warm_speedup_vs_naive``  >= 5   (the serving layer's reason to exist)
- ``warm_restart_hit_rate``  >= 1   (a warm-store restart rebuilds nothing)
- ``infer_speedup_vs_tape``  >= 1.5 (compiled forward plans vs the
  autograd tape on the per-request warm-miss inference tail, PR 7)
- ``cluster_speedup``        >= 1.5 (sharded multi-process cold path vs
  the single-process cold path) — enforced only when the recorded entry
  says ``cluster_gate_enforced`` (the full bench disables the gate on
  single-core hosts, where process parallelism cannot exist; the entry
  records ``available_cpus`` so the skip is auditable).
- ``concurrent_speedup_vs_serial`` >= 1.2 (micro-batched concurrent
  ``async_score`` vs serial per-request scoring on the streaming
  cluster, PR 8) — conditional on ``streaming_gate_enforced``, same
  single-core proviso as the cluster gate.
- ``store_memory_saving``    >= 2   (a store-backed shard worker reads
  columns from mapped ``.npy`` segments instead of holding a deep-
  copied index slice; the footprint drop is structural, so the gate is
  unconditional)
- ``store_throughput_ratio`` >= 0.9 (the mapped column path must hold
  cold-scoring parity with the in-memory cluster — the memory saving
  may not be bought with throughput)
- ``obs_overhead_pct``       <= 5   (a *ceiling*, not a floor: enabling
  the ``repro.obs`` instrumentation layer may tax warm-path scoring
  throughput by at most 5%, PR 10)

A missing file or missing full-mode entry is reported but does not
fail (fresh checkouts have no recorded trajectory until someone runs
the full benchmarks); a recorded entry that violates a gate exits
non-zero.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"

#: ``file -> {field -> minimum}`` over each recorded full-mode entry.
GATES = {
    "BENCH_pipeline.json": {
        "stage4_batch_speedup": 1.5,
        "stage4_speedup_vs_reference": 10.0,
        "stage123_speedup_vs_reference": 1.2,
    },
    "BENCH_serving.json": {
        "warm_speedup_vs_naive": 5.0,
        "warm_restart_hit_rate": 1.0,
        "infer_speedup_vs_tape": 1.5,
        "store_memory_saving": 2.0,
        "store_throughput_ratio": 0.9,
    },
}

#: Serving gates that the recording host may legitimately disable
#: (``field -> (enforcement flag, minimum)``).
CONDITIONAL_GATES = {
    "BENCH_serving.json": {
        "cluster_speedup": ("cluster_gate_enforced", 1.5),
        "concurrent_speedup_vs_serial": ("streaming_gate_enforced", 1.2),
    },
}

#: Ceiling gates — ``file -> {field -> maximum}`` — for overhead
#: budgets, where regression means the value *grew*.
MAX_GATES = {
    "BENCH_serving.json": {
        "obs_overhead_pct": 5.0,
    },
}


def check_file(filename: str) -> "list[str] | None":
    """Gate one results file; returns failures, or None when absent."""
    path = RESULTS_DIR / filename
    if not path.exists():
        print(f"bench gates: no {filename} yet — nothing to check")
        return None
    try:
        recorded = json.loads(path.read_text())
    except ValueError as error:
        return [f"  {filename} is not valid JSON: {error}"]
    full = recorded.get("full")
    if not isinstance(full, dict):
        print(
            f"bench gates: {filename} has no recorded full-mode entry — "
            "run the full benchmark to record one"
        )
        return None
    gates = [
        (field, minimum, None, "min")
        for field, minimum in GATES.get(filename, {}).items()
    ] + [
        (field, minimum, flag, "min")
        for field, (flag, minimum) in CONDITIONAL_GATES.get(
            filename, {}
        ).items()
    ] + [
        (field, maximum, None, "max")
        for field, maximum in MAX_GATES.get(filename, {}).items()
    ]
    failures = []
    for field, bound, flag, direction in gates:
        value = full.get(field)
        if flag is not None and not full.get(flag):
            print(
                f"bench gates: {field} gate disabled by the recording "
                f"host ({flag} false, "
                f"{full.get('available_cpus')} cpus) — recorded "
                f"{value if value is None else format(value, '.2f')}"
            )
            continue
        if value is None:
            failures.append(
                f"  {filename}: {field} missing from the full-mode entry"
            )
        elif direction == "min" and value < bound:
            failures.append(
                f"  {filename}: {field} = {value:.2f} < required {bound}"
            )
        elif direction == "max" and value > bound:
            failures.append(
                f"  {filename}: {field} = {value:.2f} > allowed {bound}"
            )
        else:
            relation = ">=" if direction == "min" else "<="
            print(
                f"bench gates: {field} = {value:.2f} ({relation} {bound}) ok"
            )
    return failures


def main() -> int:
    failures = []
    for filename in sorted({*GATES, *CONDITIONAL_GATES, *MAX_GATES}):
        result = check_file(filename)
        if result:
            failures.extend(result)
    if failures:
        print("bench gates REGRESSED in the recorded full-mode entries:")
        print("\n".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
