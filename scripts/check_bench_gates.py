#!/usr/bin/env python
"""Fail loudly when the recorded benchmark trajectory regresses a gate.

``benchmarks/results/BENCH_pipeline.json`` holds the tracked full-mode
perf trajectory.  Tier-1 runs only refresh the *smoke* entry (gates
disabled there — timing a seconds-scale workload is noise), so a perf
regression could silently ride along until someone re-runs the full
benchmark.  This check closes that gap: ``scripts/tier1.sh`` calls it
after the smoke benchmarks to re-assert the gated speedups of the
recorded full-mode entry.

Gates (mirroring ``benchmarks/bench_pipeline_throughput.py`` full mode):

- ``stage4_batch_speedup``      >= 1.5  (block-diagonal batching, PR 4)
- ``stage4_speedup_vs_reference`` >= 10 (vectorized kernels, PR 2)
- ``stage123_speedup_vs_reference`` >= 1.2 (ArrayGraph stages, PR 3)

A missing file or missing full-mode entry is reported but does not
fail (fresh checkouts have no recorded trajectory until someone runs
``python -m pytest benchmarks/bench_pipeline_throughput.py``); a
recorded entry that violates a gate exits non-zero.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_PATH = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "results"
    / "BENCH_pipeline.json"
)

#: ``field -> minimum`` over the recorded full-mode entry.
GATES = {
    "stage4_batch_speedup": 1.5,
    "stage4_speedup_vs_reference": 10.0,
    "stage123_speedup_vs_reference": 1.2,
}


def main() -> int:
    if not RESULTS_PATH.exists():
        print(f"bench gates: no {RESULTS_PATH.name} yet — nothing to check")
        return 0
    try:
        recorded = json.loads(RESULTS_PATH.read_text())
    except ValueError as error:
        print(f"bench gates: {RESULTS_PATH.name} is not valid JSON: {error}")
        return 1
    full = recorded.get("full")
    if not isinstance(full, dict):
        print(
            "bench gates: no recorded full-mode entry — run "
            "`PYTHONPATH=src python -m pytest "
            "benchmarks/bench_pipeline_throughput.py` to record one"
        )
        return 0
    failures = []
    for field, minimum in GATES.items():
        value = full.get(field)
        if value is None:
            failures.append(f"  {field}: missing from the full-mode entry")
        elif value < minimum:
            failures.append(f"  {field}: {value:.2f} < required {minimum}")
        else:
            print(f"bench gates: {field} = {value:.2f} (>= {minimum}) ok")
    if failures:
        print("bench gates REGRESSED in the recorded full-mode entry:")
        print("\n".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
