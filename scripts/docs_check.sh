#!/usr/bin/env bash
# Docs rot check: every module path, repo file path, and CLI command the
# user-facing docs mention must still resolve.
#
# Scans README.md and docs/*.md for
#   - dotted `repro.*` references        -> import the module prefix and
#     resolve any trailing attribute (so `repro.graphs.ArrayGraph` and
#     `repro.serve.AddressScoringService.score` both count),
#   - backticked repo paths (scripts/, benchmarks/, tests/, docs/,
#     src/, examples/ or *.md/*.py/*.sh/*.json at the repo root)
#     -> must exist on disk,
#   - `repro <subcommand>` / `python -m repro <subcommand>` invocations
#     -> must be registered in repro.cli.
#
# Run by scripts/tier1.sh; exits non-zero with a list of dangling
# references so documentation cannot silently rot.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python - <<'PYCHECK'
import re
import importlib
import sys
from pathlib import Path

DOCS = [Path("README.md"), *sorted(Path("docs").glob("*.md"))]
missing = [str(p) for p in DOCS if not p.exists()]
if missing:
    sys.exit(f"docs check: missing documentation files: {missing}")

failures = []

MODULE_RE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
PATH_RE = re.compile(
    r"`((?:scripts|benchmarks|tests|docs|src|examples)/[^`\s]+"
    r"|[A-Za-z0-9_.-]+\.(?:md|py|sh|json|ini))`"
)
# `(?<!from )` keeps Python `from repro import ...` lines from being
# read as CLI invocations.
CLI_RE = re.compile(r"(?<!from )(?:python -m )?\brepro ([a-z][a-z0-9-]*)\b")

from repro.cli import _COMMANDS  # the CLI's own registry

def resolve_dotted(dotted: str) -> bool:
    """Import the longest module prefix, getattr the rest."""
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:split]))
        except ImportError:
            continue
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False

for doc in DOCS:
    text = doc.read_text()
    for dotted in sorted(set(MODULE_RE.findall(text))):
        if not resolve_dotted(dotted):
            failures.append(f"{doc}: unresolvable reference `{dotted}`")
    for path in sorted(set(PATH_RE.findall(text))):
        target = Path(path.split("::")[0])
        if not target.exists():
            failures.append(f"{doc}: missing path `{path}`")
    for command in sorted(set(CLI_RE.findall(text))):
        if command not in _COMMANDS:
            failures.append(f"{doc}: unknown CLI command `repro {command}`")

if failures:
    print("docs check FAILED:")
    print("\n".join(f"  {f}" for f in failures))
    sys.exit(1)
print(f"docs check ok: {', '.join(str(d) for d in DOCS)}")
PYCHECK
