#!/usr/bin/env bash
# Static invariant lint: runs the repro.analysis AST linter over src/
# against the committed baseline (scripts/lint_baseline.json).  Any
# unbaselined finding, stale baseline entry, or baselined finding under
# src/repro/serve or src/repro/graphs fails the run — see
# docs/architecture.md ("Static invariants") for the rule set and the
# `# repro: lint-ignore[rule-id]` suppression syntax.
#
# Usage: scripts/lint.sh [extra `repro lint` args, e.g. --list-rules]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m repro lint "$@"
