#!/usr/bin/env bash
# Tier-1 verification: the full unit/integration suite plus the smoke-mode
# serving-throughput benchmark, so perf regressions in the serving layer
# surface in-repo without waiting for the full benchmark harness.
#
# Usage: scripts/tier1.sh [extra pytest args for the unit suite]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: unit + integration tests =="
python -m pytest -x -q "$@"

echo "== tier-1: serving throughput smoke benchmark =="
REPRO_BENCH_SMOKE=1 python -m pytest -q benchmarks/bench_serving_throughput.py
