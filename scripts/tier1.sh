#!/usr/bin/env bash
# Tier-1 verification: the full unit/integration suite plus the smoke-mode
# throughput benchmarks, so perf regressions in the serving layer and the
# graph-construction pipeline surface in-repo without waiting for the full
# benchmark harness.  The pipeline benchmark refreshes
# benchmarks/results/BENCH_pipeline.json — the tracked stage-timing
# trajectory future PRs diff against.
#
# Usage: scripts/tier1.sh [extra pytest args for the unit suite]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: unit + integration tests =="
python -m pytest -x -q "$@"

echo "== tier-1: serving throughput smoke benchmark =="
REPRO_BENCH_SMOKE=1 python -m pytest -q benchmarks/bench_serving_throughput.py

echo "== tier-1: pipeline throughput smoke benchmark =="
REPRO_BENCH_SMOKE=1 python -m pytest -q benchmarks/bench_pipeline_throughput.py
