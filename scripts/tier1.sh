#!/usr/bin/env bash
# Tier-1 verification: the fast unit/integration suite plus the smoke-mode
# throughput benchmarks, so perf regressions in the serving layer and the
# graph-construction pipeline surface in-repo without waiting for the full
# benchmark harness.  The pipeline benchmark refreshes
# benchmarks/results/BENCH_pipeline.json — the tracked stage-timing
# trajectory future PRs diff against.
#
# Full-depth randomized property sweeps carry the `slow` marker and are
# deselected here (pytest.ini addopts); scripts/tier2.sh runs them.  The
# marker summary below shows how many tests each tier covers.
#
# Usage: scripts/tier1.sh [extra pytest args for the unit suite]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: unit + integration tests (slow markers deselected) =="
python -m pytest -x -q "$@"

echo "== tier-1: slow-marker split (deferred to scripts/tier2.sh) =="
# Informational only — must not gate verification (pytest exits non-zero
# when the marker matches nothing).
python -m pytest -q --collect-only -m "slow" | tail -n 1 || true

echo "== tier-1: serving throughput smoke benchmark =="
REPRO_BENCH_SMOKE=1 python -m pytest -q benchmarks/bench_serving_throughput.py

echo "== tier-1: pipeline throughput smoke benchmark =="
REPRO_BENCH_SMOKE=1 python -m pytest -q benchmarks/bench_pipeline_throughput.py

echo "== tier-1: recorded benchmark gates (full-mode trajectory) =="
python scripts/check_bench_gates.py

echo "== tier-1: static invariant lint (repro.analysis) =="
scripts/lint.sh

echo "== tier-1: documentation references =="
scripts/docs_check.sh
