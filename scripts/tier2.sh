#!/usr/bin/env bash
# Tier-2 verification: everything tier 1 runs PLUS the full-depth
# randomized property sweeps (`-m slow`) that pin ArrayGraph/reference
# pipeline invariance over many seeds.  Slower by design; run before
# merging pipeline-touching changes.
#
# Usage: scripts/tier2.sh [extra pytest args]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-2: full unit + integration suite (slow markers included) =="
python -m pytest -x -q -m "slow or not slow" "$@"

echo "== tier-2: serving throughput smoke benchmark =="
REPRO_BENCH_SMOKE=1 python -m pytest -q benchmarks/bench_serving_throughput.py

echo "== tier-2: pipeline throughput smoke benchmark =="
REPRO_BENCH_SMOKE=1 python -m pytest -q benchmarks/bench_pipeline_throughput.py
