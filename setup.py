"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` (or `python setup.py develop`)
both work with the legacy setuptools in this offline environment.
"""
from setuptools import setup

setup()
