"""BAClassifier reproduction: bitcoin address behavior classification.

A from-scratch reproduction of *"Demystifying Bitcoin Address Behavior via
Graph Neural Networks"* (ICDE 2023): a UTXO chain simulator, behaviour-
driven workload generators, the paper's address-graph construction pipeline
(compression + augmentation), a numpy autograd neural substrate, GFN/GCN/
DiffPool graph models, six sequence classification heads, classical ML and
published baselines, and an evaluation harness regenerating every table and
figure in the paper.

Quickstart
----------
>>> from repro import (BAClassifier, BAClassifierConfig, WorldConfig,
...                    generate_world, build_dataset)
>>> world = generate_world(WorldConfig(seed=7, num_blocks=150))
>>> dataset = build_dataset(world, min_transactions=5)
>>> train, test = dataset.split(test_fraction=0.2, seed=0)
>>> clf = BAClassifier(BAClassifierConfig(slice_size=40, gnn_epochs=8,
...                                       head_epochs=15, seed=0))
>>> clf.fit(train.addresses, train.labels, world.index)  # doctest: +SKIP
"""

__version__ = "1.0.0"

from repro.core import BAClassifier, BAClassifierConfig
from repro.datagen import (
    CLASS_NAMES,
    AddressLabel,
    LabeledAddressDataset,
    World,
    WorldConfig,
    build_dataset,
    generate_world,
)
from repro.eval import (
    classification_report,
    confusion_matrix,
    precision_recall_f1,
)
from repro.serve import (
    AddressScore,
    AddressScoringService,
    CacheStats,
    ScoringServiceConfig,
    SliceGraphCache,
)

__all__ = [
    "__version__",
    "AddressScore",
    "AddressScoringService",
    "BAClassifier",
    "BAClassifierConfig",
    "CacheStats",
    "ScoringServiceConfig",
    "SliceGraphCache",
    "CLASS_NAMES",
    "AddressLabel",
    "LabeledAddressDataset",
    "World",
    "WorldConfig",
    "build_dataset",
    "generate_world",
    "classification_report",
    "confusion_matrix",
    "precision_recall_f1",
]
