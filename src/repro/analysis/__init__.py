"""AST-based static analysis enforcing the repo's correctness invariants.

Five PRs of growth left the serving/graph stack with contracts that used
to live only in docstrings: cache keys must track
:meth:`~repro.graphs.pipeline.GraphPipelineConfig.fingerprint`, shard
routing must never touch the process-salted builtin ``hash()``, the
Stage-1–4 kernels must stay deterministic so the
:mod:`repro.graphs.reference` parity oracles remain meaningful, autograd
ops must guard tape recording on
:func:`~repro.nn.tensor.is_grad_enabled`, and the cluster's shared state
must only be written under its lock.  This package turns those contracts
into machine-checked rules.

The pieces:

- :mod:`repro.analysis.context` — per-file parse state (AST with parent
  links, import-alias resolution, suppression comments),
- :mod:`repro.analysis.registry` — the rule base classes
  (:class:`FileRule`, :class:`ProjectRule`) and the registration
  decorator,
- :mod:`repro.analysis.rules` — the repo-specific rule set,
- :mod:`repro.analysis.baseline` — the JSON baseline of grandfathered
  findings (every entry carries a justification; stale entries fail),
- :mod:`repro.analysis.engine` — file discovery, rule execution, report
  formatting, and the ``repro lint`` command body.

Run it with ``repro lint`` (or ``scripts/lint.sh``); suppress a single
finding in place with a ``# repro: lint-ignore[rule-id]`` comment on the
offending line.  ``scripts/tier1.sh`` runs the linter on every
verification pass, so an invariant violation fails the build exactly
like a failing test.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.context import FileContext
from repro.analysis.engine import lint_paths, lint_sources, run_lint
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    FileRule,
    ProjectRule,
    Rule,
    all_rules,
    register,
)

__all__ = [
    "Baseline",
    "BaselineError",
    "FileContext",
    "FileRule",
    "Finding",
    "ProjectRule",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_sources",
    "register",
    "run_lint",
]
