"""The JSON baseline of grandfathered findings.

A baseline entry acknowledges one existing finding without fixing it.
Three properties keep the file honest:

- every entry must carry a non-empty one-line ``justification``,
- an entry that no longer matches any finding is *stale* and fails the
  run (the baseline can only shrink as code is fixed, never rot),
- entries under the strict prefixes (``src/repro/serve``,
  ``src/repro/graphs`` — the cache-key and determinism contracts) are
  rejected outright: those trees must lint clean, not baselined.

Matching uses :attr:`~repro.analysis.findings.Finding.baseline_key`
(path, rule, message) so unrelated edits that shift line numbers do not
un-baseline an acknowledged finding.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.findings import Finding

__all__ = ["Baseline", "BaselineError", "BASELINE_VERSION", "STRICT_PREFIXES"]

BASELINE_VERSION = 1

#: Path prefixes whose findings may never be baselined (posix-relative).
STRICT_PREFIXES = ("src/repro/serve", "src/repro/graphs")


class BaselineError(Exception):
    """The baseline file itself is invalid (format, justification, policy)."""


@dataclass
class Baseline:
    """Grandfathered findings loaded from (or saved to) JSON."""

    entries: List[Dict[str, str]] = field(default_factory=list)

    @classmethod
    def load(cls, path: "str | Path") -> "Baseline":
        """Read and validate a baseline file."""
        raw = Path(path).read_text()
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}")
        if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
            raise BaselineError(
                f"baseline {path} must be an object with version="
                f"{BASELINE_VERSION}"
            )
        entries = payload.get("entries", [])
        if not isinstance(entries, list):
            raise BaselineError(f"baseline {path}: 'entries' must be a list")
        baseline = cls(entries=[dict(entry) for entry in entries])
        baseline.validate(source=str(path))
        return baseline

    def validate(self, source: str = "<baseline>") -> None:
        """Enforce entry shape, justifications, and the strict prefixes."""
        for entry in self.entries:
            for key in ("path", "rule", "message"):
                if not isinstance(entry.get(key), str) or not entry[key]:
                    raise BaselineError(
                        f"{source}: entry {entry!r} lacks a {key!r} string"
                    )
            justification = entry.get("justification", "")
            if not isinstance(justification, str) or not justification.strip():
                raise BaselineError(
                    f"{source}: entry for {entry['path']} [{entry['rule']}] "
                    "has no justification — every baselined finding must "
                    "say why it is acceptable"
                )
            normalized = entry["path"].replace("\\", "/")
            if any(
                normalized == prefix or normalized.startswith(prefix + "/")
                for prefix in STRICT_PREFIXES
            ):
                raise BaselineError(
                    f"{source}: {entry['path']} is under a strict prefix "
                    f"({', '.join(STRICT_PREFIXES)}) — findings there must "
                    "be fixed, not baselined"
                )

    def save(self, path: "str | Path") -> None:
        """Write the baseline as stable, reviewable JSON."""
        payload = {
            "version": BASELINE_VERSION,
            "entries": sorted(
                self.entries,
                key=lambda e: (e["path"], e["rule"], e["message"]),
            ),
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], justification: str
    ) -> "Baseline":
        """A baseline acknowledging ``findings`` with one shared justification."""
        return cls(
            entries=[
                {
                    "path": finding.path,
                    "rule": finding.rule_id,
                    "message": finding.message,
                    "justification": justification,
                }
                for finding in findings
            ]
        )

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[Dict[str, str]]]:
        """Partition ``findings`` against the baseline.

        Returns ``(new, baselined, stale_entries)`` where ``stale_entries``
        are baseline rows that matched nothing — each one is an error,
        so fixed code must also drop its baseline entry.
        """
        keys = {
            (entry["path"], entry["rule"], entry["message"]): entry
            for entry in self.entries
        }
        matched = set()
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            key = finding.baseline_key
            if key in keys:
                matched.add(key)
                baselined.append(finding)
            else:
                new.append(finding)
        stale = [entry for key, entry in keys.items() if key not in matched]
        return new, baselined, stale
