"""Per-file parse state shared by every rule.

A :class:`FileContext` owns the AST (annotated with parent links),
an import-alias table so rules can resolve calls like ``np.random.rand``
to their canonical dotted name, and the line-level
``# repro: lint-ignore[rule-id]`` suppression table.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, Iterator, List, Optional, Set

__all__ = ["FileContext", "parse_suppressions"]

_PARENT_FIELD = "_repro_parent"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*lint-ignore\[([A-Za-z0-9_\-, ]+)\]"
)


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed by a comment on that line.

    The comment syntax is ``# repro: lint-ignore[rule-id]`` (several ids
    comma-separated); it silences findings anchored to the same physical
    line.  Tokenization keeps string literals that merely *look* like
    suppression comments inert.
    """
    suppressed: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            rule_ids = {
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            }
            suppressed.setdefault(token.start[0], set()).update(rule_ids)
    except tokenize.TokenError:  # unterminated construct: no comments past it
        pass
    return suppressed


class FileContext:
    """One parsed source file plus the lookup tables rules need."""

    def __init__(self, path: str, source: str, module: Optional[str] = None):
        self.path = path
        self.source = source
        self.module = module if module is not None else _module_of(path)
        self.tree = ast.parse(source, filename=path)
        self.suppressed = parse_suppressions(source)
        self._link_parents()
        self.aliases = self._collect_aliases()

    # ------------------------------------------------------------------ #
    # AST navigation
    # ------------------------------------------------------------------ #

    def _link_parents(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                setattr(child, _PARENT_FIELD, parent)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (None for the module)."""
        return getattr(node, _PARENT_FIELD, None)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Parents of ``node`` from nearest to the module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_functions(self, node: ast.AST) -> List[ast.AST]:
        """Function defs containing ``node``, nearest first."""
        return [
            ancestor
            for ancestor in self.ancestors(node)
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def at_module_level(self, node: ast.AST) -> bool:
        """True when ``node`` executes at import time (no enclosing def)."""
        return not self.enclosing_functions(node)

    # ------------------------------------------------------------------ #
    # Name resolution
    # ------------------------------------------------------------------ #

    def _collect_aliases(self) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    local = name.asname or name.name.split(".")[0]
                    target = name.name if name.asname else local
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative import: unresolvable here
                    continue
                for name in node.names:
                    local = name.asname or name.name
                    aliases[local] = f"{node.module}.{name.name}"
        return aliases

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, or None.

        Substitutes import aliases at the root, so with ``import numpy
        as np`` the expression ``np.random.rand`` resolves to
        ``numpy.random.rand``.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """Whether ``rule_id`` findings on ``line`` are ignored in place."""
        return rule_id in self.suppressed.get(line, ())


def _module_of(path: str) -> str:
    """Dotted module name of a repo path (``src/repro/x/y.py`` -> ``repro.x.y``)."""
    parts = path.replace("\\", "/").split("/")
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)
