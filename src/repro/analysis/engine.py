"""File discovery, rule execution, and the ``repro lint`` command body.

The flow: discover ``.py`` files, parse each into a
:class:`~repro.analysis.context.FileContext`, run every registered rule
whose scope matches the file's dotted module, drop findings silenced by
in-place ``# repro: lint-ignore[...]`` comments, then partition what is
left against the JSON baseline.  Exit status is non-zero for any
unbaselined finding, any stale baseline entry, or an invalid baseline —
``scripts/tier1.sh`` treats all three as build failures.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import FileRule, ProjectRule, all_rules

__all__ = [
    "DEFAULT_BASELINE",
    "build_contexts",
    "lint_contexts",
    "lint_paths",
    "lint_sources",
    "run_lint",
]

#: Where ``repro lint`` looks for the committed baseline by default.
DEFAULT_BASELINE = "scripts/lint_baseline.json"


def _display_path(path: Path) -> str:
    """Stable repo-relative display form of a real file path.

    Any path under a ``src/repro`` tree is rendered from its ``src``
    component (``src/repro/serve/cluster.py``) regardless of the working
    directory, so reports and baseline entries match across machines;
    other files fall back to a cwd-relative or absolute posix path.
    """
    resolved = path.resolve()
    parts = resolved.parts
    for i in range(len(parts) - 1):
        if parts[i] == "src" and parts[i + 1] == "repro":
            return "/".join(parts[i:])
    try:
        return resolved.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


def discover_files(paths: Iterable["str | Path"]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    files: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    unique: Dict[str, Path] = {}
    for path in files:
        unique.setdefault(str(path.resolve()), path)
    return [unique[key] for key in sorted(unique)]


def build_contexts(paths: Iterable["str | Path"]) -> List[FileContext]:
    """Parse every discovered file into a :class:`FileContext`."""
    contexts = []
    for path in discover_files(paths):
        source = path.read_text()
        contexts.append(FileContext(_display_path(path), source))
    return contexts


def lint_contexts(contexts: Sequence[FileContext]) -> List[Finding]:
    """Run every registered rule over ``contexts``; suppressions applied."""
    findings: List[Finding] = []
    for rule in all_rules():
        if isinstance(rule, ProjectRule):
            in_scope = [c for c in contexts if rule.applies_to(c.module)]
            raw = rule.check_project(in_scope) if in_scope else ()
            by_path = {c.path: c for c in contexts}
            for finding in raw:
                context = by_path.get(finding.path)
                if context is not None and context.is_suppressed(
                    finding.line, finding.rule_id
                ):
                    continue
                findings.append(finding)
        elif isinstance(rule, FileRule):
            for context in contexts:
                if not rule.applies_to(context.module):
                    continue
                for finding in rule.check(context):
                    if context.is_suppressed(finding.line, finding.rule_id):
                        continue
                    findings.append(finding)
    return sorted(findings)


def lint_paths(paths: Iterable["str | Path"]) -> List[Finding]:
    """Lint files/directories on disk (no baseline applied)."""
    return lint_contexts(build_contexts(paths))


def lint_sources(sources: Dict[str, str]) -> List[Finding]:
    """Lint in-memory ``{path: source}`` pairs — the fixture-test entry.

    Paths are taken verbatim; give them shapes like
    ``src/repro/serve/fake.py`` to land in a rule's scope.
    """
    contexts = [
        FileContext(path, source) for path, source in sorted(sources.items())
    ]
    return lint_contexts(contexts)


def run_lint(args: argparse.Namespace) -> int:
    """Body of ``repro lint``; returns the process exit code."""
    if getattr(args, "list_rules", False):
        for rule in all_rules():
            scopes = ", ".join(rule.scopes) if rule.scopes else "all modules"
            print(f"{rule.rule_id}  [{scopes}]")
            print(f"    {rule.description}")
        return 0

    paths = list(args.paths) if args.paths else ["src"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}")
        return 2
    findings = lint_paths(paths)

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).exists():
        baseline_path = DEFAULT_BASELINE

    if getattr(args, "write_baseline", False):
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(
            findings, justification="TODO: justify or fix"
        ).save(target)
        print(
            f"repro lint: wrote {len(findings)} finding(s) to {target} — "
            "replace each TODO justification before committing"
        )
        return 0

    baseline = Baseline()
    if baseline_path is not None and Path(baseline_path).exists():
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"repro lint: {exc}")
            return 2

    new, baselined, stale = baseline.split(findings)
    for finding in new:
        print(finding.render())
    for entry in stale:
        print(
            f"repro lint: stale baseline entry {entry['path']} "
            f"[{entry['rule']}] matches no finding — remove it "
            f"({entry['message']!r})"
        )
    print(
        f"repro lint: {len(new)} finding(s), {len(baselined)} baselined, "
        f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}"
    )
    return 1 if new or stale else 0
