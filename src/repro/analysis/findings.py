"""The linter's result type and its rendering."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Finding", "SUPPRESS_TEMPLATE"]

#: How to silence one finding in place; printed with every report line.
SUPPRESS_TEMPLATE = "# repro: lint-ignore[{rule_id}]"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    ``path`` is repo-relative (posix separators) for real files so
    reports and baseline entries are stable across machines and working
    directories; fixture tests use virtual paths verbatim.
    """

    path: str
    line: int
    rule_id: str
    message: str
    col: int = 0

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used for baseline matching.

        Deliberately excludes the line/column so unrelated edits that
        shift a grandfathered finding do not un-baseline it; the message
        carries the identifying detail (attribute, field, call name).
        """
        return (self.path, self.rule_id, self.message)

    def render(self) -> str:
        """``file:line:col: [rule-id] message`` plus the suppression hint."""
        location = f"{self.path}:{self.line}:{self.col}"
        hint = SUPPRESS_TEMPLATE.format(rule_id=self.rule_id)
        return (
            f"{location}: [{self.rule_id}] {self.message}\n"
            f"    suppress in place with: {hint}"
        )
