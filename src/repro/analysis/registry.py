"""Rule base classes and the global rule registry.

A rule declares an ``rule_id``, a one-line ``description`` (shown by
``repro lint --list-rules`` and quoted in ``docs/architecture.md``), and
the dotted-module ``scopes`` it patrols.  :class:`FileRule` checks one
file at a time; :class:`ProjectRule` sees every in-scope file of the run
at once (cross-file contracts such as oracle/kernel pairing).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple, Type

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding

__all__ = ["Rule", "FileRule", "ProjectRule", "register", "all_rules", "get_rule"]

_REGISTRY: Dict[str, "Rule"] = {}


class Rule:
    """Common surface of every lint rule."""

    #: Kebab-case identifier used in reports, suppressions, and baselines.
    rule_id: str = ""
    #: One line: the invariant this rule pins.
    description: str = ""
    #: Dotted module prefixes the rule applies to (``()`` = everywhere).
    scopes: Tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        """Whether ``module`` (dotted) is inside this rule's scopes."""
        if not self.scopes:
            return True
        return any(
            module == scope or module.startswith(scope + ".")
            for scope in self.scopes
        )


class FileRule(Rule):
    """A rule evaluated independently on each in-scope file."""

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield findings for one parsed file."""
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule evaluated once over every in-scope file of the run."""

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        """Yield findings computed across ``contexts``."""
        raise NotImplementedError


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of ``rule_class`` to the registry."""
    rule = rule_class()
    if not rule.rule_id:
        raise ValueError(f"{rule_class.__name__} lacks a rule_id")
    if rule.rule_id in _REGISTRY and not isinstance(
        _REGISTRY[rule.rule_id], rule_class
    ):
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _REGISTRY[rule.rule_id] = rule
    return rule_class


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id (imports the rule modules)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look one rule up by id (:func:`all_rules` semantics otherwise)."""
    import repro.analysis.rules  # noqa: F401

    return _REGISTRY[rule_id]
