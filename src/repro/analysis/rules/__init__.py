"""The repo-specific rule set; importing this package registers every rule."""

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    determinism,
    exceptions,
    fingerprint,
    hashing,
    locks,
    obs,
    oracle,
    plans,
    tape,
)

__all__ = [
    "determinism",
    "exceptions",
    "fingerprint",
    "hashing",
    "locks",
    "obs",
    "oracle",
    "plans",
    "tape",
]
