"""kernel-determinism: construction kernels must be reproducible.

The Stage-1–4 kernels in :mod:`repro.graphs` and the feature extractors
in :mod:`repro.features` are pinned by the pure-Python parity oracles in
:mod:`repro.graphs.reference` and the golden-artifact regression
fixture; both comparisons are only meaningful if the vectorized kernels
are bit-deterministic.  This rule bans the classic nondeterminism
sources: wall-clock reads that leak into outputs, the *global* (seedless)
``random`` / ``numpy.random`` state, and iteration directly over sets
(whose order is salted along with ``hash()``).

``time.perf_counter``/``time.monotonic`` stay allowed — the pipeline
times its stages, and timings never feed outputs.  Explicitly-seeded
generators (``numpy.random.default_rng``, ``Generator``) are the
sanctioned randomness and stay allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import FileRule, register

__all__ = ["KernelDeterminismRule"]

_BANNED_CALLS = {
    "time.time": "wall-clock time.time()",
    "time.time_ns": "wall-clock time.time_ns()",
    "datetime.datetime.now": "wall-clock datetime.now()",
    "datetime.datetime.utcnow": "wall-clock datetime.utcnow()",
    "datetime.date.today": "wall-clock date.today()",
    "os.urandom": "os.urandom()",
    "uuid.uuid4": "uuid.uuid4()",
}

#: Constructors of explicitly-seeded randomness — the sanctioned API.
_NUMPY_RANDOM_ALLOWED = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
}

#: Wrappers whose single argument's set-ness leaks into ordered output.
_ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "enumerate", "iter"}


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


@register
class KernelDeterminismRule(FileRule):
    """Ban nondeterminism sources in ``repro.graphs`` / ``repro.features``."""

    rule_id = "kernel-determinism"
    description = (
        "graph/feature kernels must be deterministic (no wall clock, no "
        "global RNG, no set-iteration ordering) so the reference parity "
        "oracles and golden fixtures stay meaningful"
    )
    scopes = ("repro.graphs", "repro.features")

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Flag banned calls and direct iteration over set expressions."""
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                message = self._banned_call(context, node)
                if message is not None:
                    yield Finding(
                        path=context.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule_id=self.rule_id,
                        message=message,
                    )
            iterable = self._unordered_iteration(node)
            if iterable is not None:
                yield Finding(
                    path=context.path,
                    line=iterable.lineno,
                    col=iterable.col_offset,
                    rule_id=self.rule_id,
                    message=(
                        "iteration order of a set is salted per process — "
                        "wrap it in sorted(...) before iterating"
                    ),
                )

    def _banned_call(
        self, context: FileContext, node: ast.Call
    ) -> Optional[str]:
        dotted = context.resolve(node.func)
        if dotted is None:
            return None
        if dotted in _BANNED_CALLS:
            return (
                f"{_BANNED_CALLS[dotted]} makes kernel output "
                "run-dependent — thread explicit inputs instead "
                "(time.perf_counter is fine for stage timing)"
            )
        if dotted.startswith("random."):
            return (
                f"{dotted}() uses the global stdlib RNG — take a seeded "
                "numpy Generator as an argument instead"
            )
        if (
            dotted.startswith("numpy.random.")
            and dotted not in _NUMPY_RANDOM_ALLOWED
        ):
            return (
                f"{dotted}() draws from numpy's global RNG — take a "
                "seeded numpy.random.Generator as an argument instead"
            )
        return None

    def _unordered_iteration(self, node: ast.AST) -> Optional[ast.AST]:
        """The offending set expression when ``node`` iterates one directly."""
        if isinstance(node, ast.For) and _is_set_expression(node.iter):
            return node.iter
        if isinstance(node, ast.comprehension) and _is_set_expression(
            node.iter
        ):
            return node.iter
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_SENSITIVE_WRAPPERS
            and len(node.args) >= 1
            and _is_set_expression(node.args[0])
        ):
            return node.args[0]
        return None
