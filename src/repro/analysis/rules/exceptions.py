"""broad-except: handlers must name the failures they intend to absorb.

``except Exception`` (or a bare ``except``) swallows programming errors
along with the anticipated failure — a corrupt warm-store bundle and a
typo in the loader look identical, and the typo ships.  Every handler in
the library names its specific exception types (the
:mod:`repro.errors` hierarchy exists for exactly this); catching
``Exception``/``BaseException`` to *re-raise* unchanged is equally
disallowed because ``try/finally`` expresses that intent without the
risk of the re-raise being dropped in a later edit.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import FileRule, register

__all__ = ["BroadExceptRule"]

_BROAD_NAMES = {"Exception", "BaseException"}


def _broad_name(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id in _BROAD_NAMES


@register
class BroadExceptRule(FileRule):
    """Flag bare ``except:`` and ``except Exception/BaseException``."""

    rule_id = "broad-except"
    description = (
        "except clauses must name specific exception types (see "
        "repro.errors); bare/Exception handlers hide programming errors"
    )
    scopes = ("repro",)

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Flag each overly-broad except handler."""
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                offender = "bare except:"
            elif _broad_name(node.type):
                offender = f"except {node.type.id}"
            elif isinstance(node.type, ast.Tuple) and any(
                _broad_name(element) for element in node.type.elts
            ):
                offender = "except tuple containing Exception"
            else:
                continue
            yield Finding(
                path=context.path,
                line=node.lineno,
                col=node.col_offset,
                rule_id=self.rule_id,
                message=(
                    f"{offender} absorbs unrelated programming errors — "
                    "narrow it to the specific exception types this "
                    "handler actually expects"
                ),
            )
