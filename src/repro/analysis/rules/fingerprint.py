"""fingerprint-discipline: config knobs may never silently alias cache keys.

Serving caches and warm stores are keyed by
:meth:`~repro.graphs.pipeline.GraphPipelineConfig.fingerprint`.  The
contract: every dataclass field either feeds the fingerprint (changing
it invalidates caches) or is explicitly listed in the module's
``_PERF_ONLY_FIELDS`` (changing it must *not* invalidate caches, because
it can never change pipeline output).  A new knob that is neither would
let two configs that build different graphs share cache entries — the
worst kind of serving bug, silent wrong answers.

The rule accepts two fingerprint shapes: the ``dataclasses.asdict(self)``
pattern (all fields consumed by construction, perf-only fields popped)
and explicit per-field enumeration (each ``self.<field>`` read counts as
consumption).  Either way, every ``_PERF_ONLY_FIELDS`` entry must name a
real field, so the exclusion list cannot rot.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import FileRule, register

__all__ = ["FingerprintDisciplineRule"]

_PERF_LIST_NAME = "_PERF_ONLY_FIELDS"


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _annotation_mentions_classvar(annotation: ast.AST) -> bool:
    return "ClassVar" in ast.dump(annotation)


def _string_elements(node: ast.AST) -> Optional[List[str]]:
    if not isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return None
    values = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ):
            return None
        values.append(element.value)
    return values


@register
class FingerprintDisciplineRule(FileRule):
    """Audit ``fingerprint()``-bearing dataclasses in ``repro.graphs``."""

    rule_id = "fingerprint-discipline"
    description = (
        "every field of a fingerprint()-bearing config dataclass must "
        "either feed fingerprint() or be listed in _PERF_ONLY_FIELDS, so "
        "new knobs can never silently alias serving-cache keys"
    )
    scopes = ("repro.graphs",)

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Check each dataclass in the file that defines ``fingerprint``."""
        perf_only, perf_only_node = self._perf_only_fields(context)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_dataclass_decorated(node):
                continue
            fingerprint = self._method(node, "fingerprint")
            if fingerprint is None:
                continue
            fields = self._dataclass_fields(node)
            consumed = self._consumed_fields(context, fingerprint, fields)
            for name, line in fields:
                if name in consumed or name in perf_only:
                    continue
                yield Finding(
                    path=context.path,
                    line=line,
                    rule_id=self.rule_id,
                    message=(
                        f"{node.name}.{name} is neither consumed by "
                        f"fingerprint() nor listed in {_PERF_LIST_NAME} — "
                        "an unkeyed knob would alias serving-cache entries"
                    ),
                )
            field_names = {name for name, _ in fields}
            for name in perf_only:
                if name in field_names:
                    continue
                yield Finding(
                    path=context.path,
                    line=(
                        perf_only_node.lineno
                        if perf_only_node is not None
                        else node.lineno
                    ),
                    rule_id=self.rule_id,
                    message=(
                        f"{_PERF_LIST_NAME} lists {name!r}, which is not a "
                        f"field of {node.name} — stale exclusions make the "
                        "fingerprint contract unreadable"
                    ),
                )

    def _perf_only_fields(
        self, context: FileContext
    ) -> Tuple[List[str], Optional[ast.AST]]:
        for node in context.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == _PERF_LIST_NAME
                ):
                    return _string_elements(node.value) or [], node
        return [], None

    def _method(
        self, node: ast.ClassDef, name: str
    ) -> Optional[ast.FunctionDef]:
        for item in node.body:
            if isinstance(item, ast.FunctionDef) and item.name == name:
                return item
        return None

    def _dataclass_fields(self, node: ast.ClassDef) -> List[Tuple[str, int]]:
        fields = []
        for item in node.body:
            if not isinstance(item, ast.AnnAssign):
                continue
            if not isinstance(item.target, ast.Name):
                continue
            if _annotation_mentions_classvar(item.annotation):
                continue
            fields.append((item.target.id, item.lineno))
        return fields

    def _consumed_fields(
        self,
        context: FileContext,
        fingerprint: ast.FunctionDef,
        fields: List[Tuple[str, int]],
    ) -> Set[str]:
        consumed: Set[str] = set()
        field_names = {name for name, _ in fields}
        for node in ast.walk(fingerprint):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in field_names
            ):
                consumed.add(node.attr)
            if isinstance(node, ast.Call):
                dotted = context.resolve(node.func)
                if dotted in {"dataclasses.asdict", "asdict"} or (
                    dotted is not None and dotted.endswith(".asdict")
                ):
                    # asdict(self) serialises every field.
                    consumed.update(field_names)
        return consumed
