"""stable-hash: the builtin ``hash()`` is banned from keyed subsystems.

Python salts ``hash()`` per process (PYTHONHASHSEED), so any value it
produces is unstable across runs, replicas, and pool workers.  The shard
router (:mod:`repro.serve.router`) and the warm store derive their keys
from blake2b/sha256 digests precisely so that a restarted replica routes
and warms identically; a stray ``hash()`` in :mod:`repro.serve` or
:mod:`repro.graphs` would silently break that contract.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import FileRule, register

__all__ = ["StableHashRule"]


@register
class StableHashRule(FileRule):
    """Forbid builtin ``hash()`` calls in ``repro.serve`` / ``repro.graphs``."""

    rule_id = "stable-hash"
    description = (
        "builtin hash() is process-salted; cache keys, shard routing, and "
        "store versioning must use hashlib digests (blake2b/sha256)"
    )
    scopes = ("repro.serve", "repro.graphs")

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Flag every call whose callee is the bare name ``hash``."""
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "hash":
                yield Finding(
                    path=context.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=self.rule_id,
                    message=(
                        "builtin hash() is salted per process — derive "
                        "stable keys with hashlib.blake2b/sha256 instead"
                    ),
                )
