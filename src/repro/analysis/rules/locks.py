"""lock-discipline: declared shared state is only written under its lock.

The serving layer is explicitly thread-aware: cluster lifecycle state
lives under ``ClusterScoringService._lock``, pool workers merge timers
under ``_timer_lock``, and each ``_Shard`` carries its own ``lock``
guarding its caches, index slice, and version counter.  A class
declares its discipline with a class-body table::

    _LOCK_GUARDED = {
        "_lock": ("_chain", "_pool", "_synced_transactions"),
        "_timer_lock": ("_worker_timer",),
    }

and this rule then requires every write to a guarded attribute
(``self.x = ...``, ``self.x += ...``, ``del self.x``) and every direct
method call on one (``self.x.merge(...)`` — mutation through the
attribute) to sit lexically inside ``with self.<lock>``.  Two exemptions
mirror standard practice: ``__init__`` (the object is not shared yet)
and methods whose name ends in ``_locked`` (the documented
caller-holds-the-lock convention, e.g. ``apply_block_locked``).

The table also binds accesses *through receiver variables named after
the declaring class* anywhere in the same file — the per-shard locking
idiom, where the service iterates ``for shard in self.shards`` and
mutates shard state from outside the class.  With the table above
declared on ``_Shard``, ``shard.cache.put(...)`` or
``shard.version += 1`` must sit inside ``with shard.lock`` (receivers
match by name suffix: ``shard``, ``my_shard``; same ``__init__`` /
``*_locked`` exemptions).  Deeper attribute chains
(``shard.cache.stats.snapshot()``) are read-path idioms and stay out of
scope, as do bare method calls on the receiver (``shard.reset_trust()``
— the method body is checked at its definition via ``self``).

The rule's second half pins fork safety: no thread, pool, or executor
may be constructed at import time in :mod:`repro.serve` — pools must be
born inside methods, after ``fork`` can no longer duplicate them.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import FileRule, register

__all__ = ["LockDisciplineRule"]

_TABLE_NAME = "_LOCK_GUARDED"

_IMPORT_TIME_CONCURRENCY = {
    "threading.Thread",
    "threading.Timer",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
    "multiprocessing.Process",
    "os.fork",
}


def _self_attribute(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _receiver_attribute(node: ast.AST) -> "Optional[Tuple[str, str]]":
    """``(receiver, attribute)`` for ``name.attr`` where name is not self."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id != "self"
    ):
        return node.value.id, node.attr
    return None


@register
class LockDisciplineRule(FileRule):
    """Enforce ``_LOCK_GUARDED`` write discipline and import-time fork safety."""

    rule_id = "lock-discipline"
    description = (
        "writes to attributes declared in _LOCK_GUARDED must happen "
        "inside `with <receiver>.<lock>` — via self in the declaring "
        "class, or via class-named receiver variables (shard.cache ...) "
        "anywhere in the file (or in __init__ / *_locked methods) — "
        "and repro.serve may not start threads or pools at import time"
    )
    scopes = ("repro.serve",)

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Check guarded-attribute writes and import-time concurrency."""
        yield from self._check_import_time(context)
        tables: List[Tuple[str, Dict[str, str]]] = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                table = self._guard_table(node)
                if table:
                    tables.append((node.name, table))
                    yield from self._check_class(context, node, table)
        if tables:
            yield from self._check_receivers(context, tables)

    # ------------------------------------------------------------------ #
    # Import-time concurrency
    # ------------------------------------------------------------------ #

    def _check_import_time(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = context.resolve(node.func)
            if dotted not in _IMPORT_TIME_CONCURRENCY:
                continue
            if not context.at_module_level(node):
                continue
            yield Finding(
                path=context.path,
                line=node.lineno,
                col=node.col_offset,
                rule_id=self.rule_id,
                message=(
                    f"{dotted} constructed at import time — threads/pools "
                    "in repro.serve must be created inside methods so "
                    "fork-started workers never inherit them"
                ),
            )

    # ------------------------------------------------------------------ #
    # Guarded attribute writes
    # ------------------------------------------------------------------ #

    def _guard_table(self, node: ast.ClassDef) -> Dict[str, str]:
        """``{attribute: lock_attribute}`` from a ``_LOCK_GUARDED`` table."""
        table: Dict[str, str] = {}
        for item in node.body:
            if not isinstance(item, ast.Assign):
                continue
            if not any(
                isinstance(target, ast.Name) and target.id == _TABLE_NAME
                for target in item.targets
            ):
                continue
            if not isinstance(item.value, ast.Dict):
                continue
            for key, value in zip(item.value.keys, item.value.values):
                if not (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, (ast.Tuple, ast.List))
                ):
                    continue
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        table[element.value] = key.value
        return table

    def _check_class(
        self,
        context: FileContext,
        class_node: ast.ClassDef,
        table: Dict[str, str],
    ) -> Iterator[Finding]:
        for method in class_node.body:
            if not isinstance(
                method, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if method.name == "__init__" or method.name.endswith("_locked"):
                continue
            for node, attr in self._guarded_accesses(method, table):
                lock = table[attr]
                if self._under_lock(context, node, method, lock):
                    continue
                yield Finding(
                    path=context.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=self.rule_id,
                    message=(
                        f"write to lock-guarded attribute {attr!r} in "
                        f"{class_node.name}.{method.name} outside `with "
                        f"self.{lock}` — hold the lock, or name the "
                        "method *_locked if every caller already does"
                    ),
                )

    def _guarded_accesses(
        self, method: ast.AST, table: Dict[str, str]
    ) -> List[Tuple[ast.AST, str]]:
        accesses: List[Tuple[ast.AST, str]] = []
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            elif isinstance(node, ast.Call):
                # Mutation through the attribute: self.<attr>.method(...)
                func = node.func
                if isinstance(func, ast.Attribute):
                    attr = _self_attribute(func.value)
                    if attr is not None and attr in table:
                        accesses.append((node, attr))
                continue
            else:
                continue
            for target in targets:
                attr = _self_attribute(target)
                if attr is not None and attr in table:
                    accesses.append((node, attr))
        return accesses

    def _under_lock(
        self,
        context: FileContext,
        node: ast.AST,
        method: ast.AST,
        lock: str,
    ) -> bool:
        for ancestor in context.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    if _self_attribute(item.context_expr) == lock:
                        return True
            if ancestor is method:
                break
        return False

    # ------------------------------------------------------------------ #
    # Guarded attribute writes through class-named receivers
    # ------------------------------------------------------------------ #

    def _check_receivers(
        self,
        context: FileContext,
        tables: "List[Tuple[str, Dict[str, str]]]",
    ) -> Iterator[Finding]:
        """The per-shard form of the discipline (see module docstring).

        A ``_LOCK_GUARDED`` table declared on a class also binds
        accesses through receiver variables *named after that class*
        anywhere in the same file: with the table on ``_Shard``,
        ``shard.cache.put(...)`` must sit inside ``with shard.lock``.
        The name-suffix match is deliberately narrow — it cannot see
        types, so it only fires on the idiomatic receiver spelling, and
        only on direct ``receiver.attr`` writes / ``receiver.attr.m()``
        calls (deeper chains are read-path idioms).
        """
        bindings = [
            (class_name.lstrip("_").lower(), class_name, table)
            for class_name, table in tables
        ]
        for node, receiver, attr in self._receiver_accesses(context.tree):
            for suffix, class_name, table in bindings:
                if attr not in table:
                    continue
                if not receiver.lower().lstrip("_").endswith(suffix):
                    continue
                lock = table[attr]
                if self._under_receiver_lock(context, node, receiver, lock):
                    break
                enclosing = self._enclosing_function(context, node)
                if enclosing is not None and (
                    enclosing.name == "__init__"
                    or enclosing.name.endswith("_locked")
                ):
                    break
                yield Finding(
                    path=context.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=self.rule_id,
                    message=(
                        f"write to {class_name}-guarded attribute "
                        f"{attr!r} through {receiver!r} outside `with "
                        f"{receiver}.{lock}` — hold the receiver's "
                        "lock around shard-state mutation"
                    ),
                )
                break

    def _receiver_accesses(
        self, tree: ast.AST
    ) -> "List[Tuple[ast.AST, str, str]]":
        accesses: List[Tuple[ast.AST, str, str]] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            elif isinstance(node, ast.Call):
                # Mutation through the attribute: recv.<attr>.method(...)
                func = node.func
                if isinstance(func, ast.Attribute):
                    named = _receiver_attribute(func.value)
                    if named is not None:
                        accesses.append((node, named[0], named[1]))
                continue
            else:
                continue
            for target in targets:
                named = _receiver_attribute(target)
                if named is not None:
                    accesses.append((node, named[0], named[1]))
        return accesses

    def _under_receiver_lock(
        self,
        context: FileContext,
        node: ast.AST,
        receiver: str,
        lock: str,
    ) -> bool:
        for ancestor in context.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Attribute)
                        and isinstance(expr.value, ast.Name)
                        and expr.value.id == receiver
                        and expr.attr == lock
                    ):
                        return True
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                break
        return False

    def _enclosing_function(
        self, context: FileContext, node: ast.AST
    ) -> "Optional[ast.AST]":
        for ancestor in context.ancestors(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return ancestor
        return None
