"""obs-discipline: instrumentation goes through the ``repro.obs`` facade.

The observability layer stays cheap and exportable only if every call
site follows three conventions.  Spans must be opened with ``with
obs.span(...):`` — constructing a :class:`repro.obs.Span` record by
hand bypasses the enabled check, the sampling decision, and the ring
buffer, and span() used outside a ``with`` leaks the contextvar token
(the span never closes and every later span in the thread nests under
it).  Metric names must be literal snake_case strings at the call
site: the registry validates names at registration, but a literal is
what lets the name be grepped from source straight to a Grafana
board, and it keeps the metric namespace enumerable without running
the code.  ``repro.obs`` itself is exempt — it is the implementation.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import FileRule, register

__all__ = ["ObsDisciplineRule"]

_SNAKE_CASE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Facade functions that open spans and must appear as With items.
_SPAN_OPENERS = (
    "repro.obs.span",
    "repro.obs.span_from_context",
)

#: Attribute names whose calls register metrics and need literal names.
_METRIC_FACTORIES = ("counter", "gauge", "histogram")


@register
class ObsDisciplineRule(FileRule):
    """Pin the ``repro.obs`` usage conventions across the repo."""

    rule_id = "obs-discipline"
    description = (
        "spans only via `with obs.span(...)`; metric names must be "
        "literal snake_case at the call site"
    )
    scopes = ("repro",)

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Flag hand-built Spans, span() outside with, non-literal names."""
        module = context.module
        if module == "repro.obs" or module.startswith("repro.obs."):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_span_construction(context, node)
            yield from self._check_span_in_with(context, node)
            yield from self._check_metric_name(context, node)

    # -------------------------------------------------------------- #
    # Individual checks
    # -------------------------------------------------------------- #

    def _check_span_construction(
        self, context: FileContext, node: ast.Call
    ) -> Iterator[Finding]:
        """Hand-constructed ``Span(...)`` records outside repro.obs."""
        func = node.func
        bare = isinstance(func, ast.Name) and func.id == "Span"
        resolved = context.resolve(func)
        via_module = resolved is not None and (
            resolved == "repro.obs.Span"
            or (
                resolved.startswith("repro.obs.")
                and resolved.endswith(".Span")
            )
        )
        if bare or via_module:
            yield Finding(
                path=context.path,
                line=node.lineno,
                col=node.col_offset,
                rule_id=self.rule_id,
                message=(
                    "Span records are built by the tracer — open spans "
                    "with `with obs.span(...):` instead of constructing "
                    "Span() directly"
                ),
            )

    def _check_span_in_with(
        self, context: FileContext, node: ast.Call
    ) -> Iterator[Finding]:
        """``obs.span(...)`` calls must be ``with`` context expressions."""
        resolved = context.resolve(node.func)
        if resolved not in _SPAN_OPENERS:
            return
        parent = context.parent(node)
        if isinstance(parent, ast.withitem) and parent.context_expr is node:
            return
        yield Finding(
            path=context.path,
            line=node.lineno,
            col=node.col_offset,
            rule_id=self.rule_id,
            message=(
                "obs.span(...) must be the context expression of a "
                "`with` statement — a span held any other way leaks "
                "its contextvar token and never closes"
            ),
        )

    def _check_metric_name(
        self, context: FileContext, node: ast.Call
    ) -> Iterator[Finding]:
        """Metric factory calls need a literal snake_case name."""
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _METRIC_FACTORIES:
            return
        if not node.args:
            return
        name = node.args[0]
        if (
            isinstance(name, ast.Constant)
            and isinstance(name.value, str)
            and _SNAKE_CASE.match(name.value)
        ):
            return
        yield Finding(
            path=context.path,
            line=node.lineno,
            col=node.col_offset,
            rule_id=self.rule_id,
            message=(
                f"{func.attr}() metric names must be literal snake_case "
                "strings at the call site — computed names defeat "
                "grep-to-dashboard traceability"
            ),
        )
