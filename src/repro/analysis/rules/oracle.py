"""oracle-sync: every parity oracle keeps a same-signature fast kernel.

:mod:`repro.graphs.reference` preserves the pure-Python Eq. 1–11 kernels
as parity oracles for the vectorized implementations.  The tests that
compare them (``tests/test_vectorized_parity.py``) pair functions by
convention: ``reference_<name>`` against ``<name>`` somewhere in
:mod:`repro.graphs` / :mod:`repro.features`.  If a vectorized kernel is
renamed or its signature drifts, the pairing silently loses meaning —
this rule fails instead, anchored at the orphaned oracle.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register

__all__ = ["OracleSyncRule"]

_REFERENCE_MODULE = "repro.graphs.reference"
_REFERENCE_PREFIX = "reference_"
_COUNTERPART_SCOPES = ("repro.graphs", "repro.features")


def _positional_params(node: ast.FunctionDef) -> List[str]:
    args = node.args
    return [a.arg for a in args.posonlyargs + args.args]


def _top_level_functions(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }


def _declared_all(tree: ast.Module) -> Optional[List[str]]:
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in node.targets
        ):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            names = []
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.append(element.value)
            return names
    return None


@register
class OracleSyncRule(ProjectRule):
    """Pair each public ``reference_*`` kernel with its vectorized twin."""

    rule_id = "oracle-sync"
    description = (
        "every public reference_* kernel in repro.graphs.reference must "
        "have a same-name, same-arity vectorized counterpart in "
        "repro.graphs / repro.features, so parity oracles cannot drift"
    )
    scopes = _COUNTERPART_SCOPES

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        """Runs only when the reference module is part of the lint set."""
        reference = next(
            (c for c in contexts if c.module == _REFERENCE_MODULE), None
        )
        if reference is None:
            return
        counterparts: Dict[str, Tuple[FileContext, ast.FunctionDef]] = {}
        for context in contexts:
            if context is reference:
                continue
            for name, node in _top_level_functions(context.tree).items():
                counterparts.setdefault(name, (context, node))

        exported = _declared_all(reference.tree)
        for name, node in _top_level_functions(reference.tree).items():
            if not name.startswith(_REFERENCE_PREFIX):
                continue
            if exported is not None and name not in exported:
                continue
            expected = name[len(_REFERENCE_PREFIX) :]
            paired = counterparts.get(expected)
            if paired is None:
                yield Finding(
                    path=reference.path,
                    line=node.lineno,
                    rule_id=self.rule_id,
                    message=(
                        f"parity oracle {name} has no vectorized "
                        f"counterpart named {expected!r} in "
                        f"{' / '.join(_COUNTERPART_SCOPES)} — the oracle "
                        "no longer pins anything"
                    ),
                )
                continue
            _, twin = paired
            oracle_params = _positional_params(node)
            twin_params = _positional_params(twin)
            if oracle_params != twin_params:
                yield Finding(
                    path=reference.path,
                    line=node.lineno,
                    rule_id=self.rule_id,
                    message=(
                        f"parity oracle {name}{tuple(oracle_params)} and "
                        f"counterpart {expected}{tuple(twin_params)} have "
                        "drifted apart — keep signatures identical so "
                        "parity tests compare like with like"
                    ),
                )
