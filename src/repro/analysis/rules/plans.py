"""plan-sync: every concrete forward keeps a registered inference plan.

:mod:`repro.nn.inference` compiles module forwards into tapeless plans;
the serving hot path silently falls back to the autograd tape for any
module without a registered lowering.  That fallback is correct but
slow, and nothing else would flag a new ``Module`` subclass (or a new
forward on an old one) that quietly misses the fast path.  This rule
fails instead, anchored at the unregistered ``forward``, unless the
class opts out explicitly with an ``inference_fallback = True`` class
attribute (the marker that says "the tape path is deliberate here").
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register

__all__ = ["PlanSyncRule"]

_LOWERINGS_MODULE = "repro.nn.inference.lowerings"
_MODULE_BASE = "Module"
_REGISTRARS = {"register_lowering", "register_emitter"}
_FALLBACK_MARKER = "inference_fallback"


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _registered_classes(tree: ast.Module) -> Set[str]:
    """Class names passed to ``register_lowering`` / ``register_emitter``.

    Both the decorator form (``@register_lowering(GFN, "embed", ...)``)
    and the direct-call form used by registration loops are plain
    ``Call`` nodes whose first argument names the class.
    """
    registered: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name not in _REGISTRARS or not node.args:
            continue
        target = node.args[0]
        if isinstance(target, ast.Name):
            registered.add(target.id)
        elif isinstance(target, ast.Attribute):
            registered.add(target.attr)
    return registered


def _is_abstract_forward(node: ast.FunctionDef) -> bool:
    """A forward that only raises ``NotImplementedError`` (or is ``...``)."""
    body = node.body
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        body = body[1:]  # docstring
    if len(body) != 1:
        return False
    statement = body[0]
    if isinstance(statement, ast.Expr) and isinstance(
        statement.value, ast.Constant
    ):
        return statement.value.value is Ellipsis
    if not isinstance(statement, ast.Raise) or statement.exc is None:
        return False
    exc = statement.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    return isinstance(exc, ast.Name) and exc.id == "NotImplementedError"


def _marks_fallback(node: ast.ClassDef) -> bool:
    for statement in node.body:
        targets: List[ast.expr] = []
        value = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign):
            targets, value = [statement.target], statement.value
        if value is None:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == _FALLBACK_MARKER
                and isinstance(value, ast.Constant)
                and value.value is True
            ):
                return True
    return False


@register
class PlanSyncRule(ProjectRule):
    """Each concrete Module forward is planned, descended, or opted out."""

    rule_id = "plan-sync"
    description = (
        "every Module subclass with a concrete custom forward must have "
        "a registered inference-plan lowering (itself or a registered "
        "descendant) or declare inference_fallback = True, so new ops "
        "cannot silently drop the serving path back onto the tape"
    )
    scopes = ("repro.nn", "repro.gnn", "repro.seqmodels")

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        """Runs only when the lowerings module is part of the lint set."""
        if not any(c.module == _LOWERINGS_MODULE for c in contexts):
            return
        registered: Set[str] = set()
        classes: Dict[str, Tuple[FileContext, ast.ClassDef]] = {}
        for context in contexts:
            registered |= _registered_classes(context.tree)
            for node in context.tree.body:
                if isinstance(node, ast.ClassDef):
                    classes.setdefault(node.name, (context, node))

        # Transitive closure: which classes descend from Module, and
        # which have a registered class somewhere below them.
        module_kin: Set[str] = {_MODULE_BASE}
        changed = True
        while changed:
            changed = False
            for name, (_, node) in classes.items():
                if name in module_kin:
                    continue
                if any(base in module_kin for base in _base_names(node)):
                    module_kin.add(name)
                    changed = True
        covered: Set[str] = set(registered)
        changed = True
        while changed:
            changed = False
            for name, (_, node) in classes.items():
                if name in covered:
                    continue
                # covered descendants vouch for their bases: the base's
                # forward runs through each registered subclass's plan
                if any(
                    name in _base_names(child)
                    for child_name, (_, child) in classes.items()
                    if child_name in covered
                ):
                    covered.add(name)
                    changed = True

        for name, (context, node) in sorted(classes.items()):
            if name not in module_kin or name == _MODULE_BASE:
                continue
            forward = next(
                (
                    item
                    for item in node.body
                    if isinstance(item, ast.FunctionDef)
                    and item.name == "forward"
                ),
                None,
            )
            if forward is None or _is_abstract_forward(forward):
                continue
            if name in covered or _marks_fallback(node):
                continue
            yield Finding(
                path=context.path,
                line=forward.lineno,
                rule_id=self.rule_id,
                message=(
                    f"Module subclass {name} defines a custom forward "
                    "with no registered inference-plan lowering — "
                    "register one (register_lowering / register_emitter "
                    "in the plan modules) or mark the class with "
                    "inference_fallback = True to pin the tape fallback "
                    "as deliberate"
                ),
            )
