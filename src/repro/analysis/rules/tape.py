"""tape-discipline: autograd ops must guard tape recording.

Every differentiable op in :mod:`repro.nn` ultimately constructs
``Tensor(..., _parents=..., _backward=...)`` — the tape edge.  The
contract (and the precondition for the ROADMAP's inference-only
execution mode) is that no op records unconditionally: the enclosing
function must branch on :func:`~repro.nn.tensor.is_grad_enabled` so that
``no_grad()`` inference builds plain tensors with no closures, parents,
or gradient buffers attached.  ``repro.nn.functional._build`` is the
canonical shape; this rule keeps every future op honest.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import FileRule, register

__all__ = ["TapeDisciplineRule"]

_GUARD_NAME = "is_grad_enabled"
_TAPE_KEYWORDS = {"_backward", "_parents"}


def _mentions_guard(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == _GUARD_NAME:
            return True
        if isinstance(child, ast.Attribute) and child.attr == _GUARD_NAME:
            return True
    return False


@register
class TapeDisciplineRule(FileRule):
    """Require an ``is_grad_enabled()`` branch around tape construction."""

    rule_id = "tape-discipline"
    description = (
        "ops constructing Tensor(..., _backward=...) must branch on "
        "is_grad_enabled() so no_grad() inference records no tape"
    )
    scopes = ("repro.nn",)

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Flag unguarded ``Tensor(..., _backward=/_parents=...)`` calls."""
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._constructs_tape_edge(node):
                continue
            if self._guarded(context, node):
                continue
            yield Finding(
                path=context.path,
                line=node.lineno,
                col=node.col_offset,
                rule_id=self.rule_id,
                message=(
                    "Tensor(..., _backward=...) records the autograd tape "
                    "unconditionally — branch on is_grad_enabled() (see "
                    "repro.nn.functional._build) so no_grad() inference "
                    "stays allocation-lean"
                ),
            )

    def _constructs_tape_edge(self, node: ast.Call) -> bool:
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "Tensor":
            return False
        return any(
            keyword.arg in _TAPE_KEYWORDS for keyword in node.keywords
        )

    def _guarded(self, context: FileContext, node: ast.Call) -> bool:
        """Whether any enclosing function branches on the guard.

        The tape-edge construction in ``tensor.Tensor.__init__`` itself
        is exempt by construction: the rule looks at *call sites*, and
        the ``If`` may appear anywhere in the enclosing function (the
        canonical form returns the tape-free tensor early).
        """
        for function in context.enclosing_functions(node):
            for child in ast.walk(function):
                if isinstance(child, ast.If) and _mentions_guard(child.test):
                    return True
                if isinstance(child, ast.IfExp) and _mentions_guard(
                    child.test
                ):
                    return True
        return False
