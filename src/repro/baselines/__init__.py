"""Published baselines for Table IV: BitScope and Lee et al."""

from repro.baselines.bitscope import BitScopeClassifier, KMeans
from repro.baselines.lee import LeeClassifier

__all__ = ["BitScopeClassifier", "KMeans", "LeeClassifier"]
