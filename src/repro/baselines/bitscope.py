"""BitScope baseline: multi-resolution clustering address classifier.

BitScope (Zhang, Zhou & Xie, HICSS 2018) "classifies the bitcoin address
with a layered approach and exploits the domain-specific structures in
the bitcoin transaction network ... scaling bitcoin address
deanonymization using multi-resolution clustering" (paper §IV-D).

Reimplementation: address features are clustered with k-means at several
resolutions; each cluster takes the majority label of its training
members, weighted by cluster purity; prediction is the purity-weighted
vote of the address's cluster across resolutions.  Being centroid-based
rather than margin-based, it lands below the supervised models — the
band Table IV reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chain.explorer import ChainIndex
from repro.errors import NotFittedError, ValidationError
from repro.features.address_features import extract_feature_matrix
from repro.ml.preprocessing import StandardScaler
from repro.utils.rng import as_generator

__all__ = ["KMeans", "BitScopeClassifier"]


class KMeans:
    """Lloyd's algorithm with k-means++ seeding."""

    def __init__(self, k: int, max_iterations: int = 50, seed: int = 0):
        if k <= 0:
            raise ValidationError(f"k must be > 0, got {k}")
        self.k = k
        self.max_iterations = max_iterations
        self.seed = seed
        self.centroids_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "KMeans":
        """Cluster the rows of ``x``; returns self."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] == 0:
            raise ValidationError("KMeans needs a non-empty 2-D matrix")
        rng = as_generator(self.seed)
        k = min(self.k, x.shape[0])
        centroids = self._plus_plus_init(x, k, rng)
        for _ in range(self.max_iterations):
            assignment = self._assign(x, centroids)
            updated = centroids.copy()
            for cluster in range(k):
                members = x[assignment == cluster]
                if len(members):
                    updated[cluster] = members.mean(axis=0)
            if np.allclose(updated, centroids):
                break
            centroids = updated
        self.centroids_ = centroids
        return self

    @staticmethod
    def _plus_plus_init(
        x: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        centroids = [x[int(rng.integers(len(x)))]]
        for _ in range(1, k):
            distances = np.min(
                [((x - c) ** 2).sum(axis=1) for c in centroids], axis=0
            )
            total = distances.sum()
            if total <= 0:
                centroids.append(x[int(rng.integers(len(x)))])
                continue
            probabilities = distances / total
            choice = int(rng.choice(len(x), p=probabilities))
            centroids.append(x[choice])
        return np.stack(centroids)

    @staticmethod
    def _assign(x: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        distances = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        return np.argmin(distances, axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Nearest-centroid assignment."""
        if self.centroids_ is None:
            raise NotFittedError("KMeans must be fitted first")
        return self._assign(np.asarray(x, dtype=np.float64), self.centroids_)


class BitScopeClassifier:
    """Layered multi-resolution clustering classifier."""

    def __init__(
        self,
        resolutions: Sequence[int] = (4, 8, 16, 32),
        seed: int = 0,
    ):
        if not resolutions:
            raise ValidationError("resolutions must be non-empty")
        self.resolutions = tuple(resolutions)
        self.seed = seed
        self._scaler = StandardScaler()
        self._layers: List[Tuple[KMeans, Dict[int, Tuple[int, float]]]] = []
        self.num_classes_ = None

    def fit(
        self,
        addresses: Sequence[str],
        labels: Sequence[int],
        index: ChainIndex,
    ) -> "BitScopeClassifier":
        """Cluster training addresses at every resolution and tag clusters."""
        labels = np.asarray(labels, dtype=np.int64)
        features = self._scaler.fit_transform(
            extract_feature_matrix(index, list(addresses))
        )
        self.num_classes_ = int(labels.max()) + 1
        self._layers = []
        for layer_index, k in enumerate(self.resolutions):
            model = KMeans(k=k, seed=self.seed + layer_index)
            model.fit(features)
            assignment = model.predict(features)
            tags: Dict[int, Tuple[int, float]] = {}
            for cluster in np.unique(assignment):
                members = labels[assignment == cluster]
                counts = np.bincount(members, minlength=self.num_classes_)
                majority = int(np.argmax(counts))
                purity = float(counts[majority] / counts.sum())
                tags[int(cluster)] = (majority, purity)
            self._layers.append((model, tags))
        return self

    def predict_proba(
        self, addresses: Sequence[str], index: ChainIndex
    ) -> np.ndarray:
        """Purity-weighted multi-resolution vote as a probability matrix."""
        if not self._layers:
            raise NotFittedError("BitScopeClassifier must be fitted first")
        features = self._scaler.transform(
            extract_feature_matrix(index, list(addresses))
        )
        votes = np.zeros((features.shape[0], self.num_classes_))
        for model, tags in self._layers:
            assignment = model.predict(features)
            for row, cluster in enumerate(assignment):
                label, purity = tags.get(int(cluster), (0, 0.0))
                votes[row, label] += purity
        totals = votes.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return votes / totals

    def predict(self, addresses: Sequence[str], index: ChainIndex) -> np.ndarray:
        """Predicted class per address."""
        return np.argmax(self.predict_proba(addresses, index), axis=1)
