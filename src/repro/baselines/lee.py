"""Lee et al. (2020) baseline: 80 transaction-history features + RF / ANN.

"Machine learning-based classifier proposed by Lee et al. extracts 80
features from the bitcoin transactions and uses two different models
(i.e., random forest and ANN) to classify the bitcoin address"
(paper §IV-D).  The feature extractor lives in
:mod:`repro.features.address_features`; this module wires it to our
random-forest and MLP implementations behind an address-level API.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.chain.explorer import ChainIndex
from repro.errors import NotFittedError, ValidationError
from repro.features.address_features import extract_feature_matrix
from repro.ml.ensemble import RandomForestClassifier
from repro.ml.neural import MLPClassifier

__all__ = ["LeeClassifier"]

_MODELS = ("random_forest", "ann")


class LeeClassifier:
    """Address classifier over the Lee et al. 80-feature summary.

    Parameters
    ----------
    model:
        ``"random_forest"`` (the stronger variant in the paper's Table IV)
        or ``"ann"`` (a small feed-forward network, the weaker variant).
    """

    def __init__(
        self,
        model: str = "random_forest",
        seed: int = 0,
        raw_features: bool = False,
    ):
        if model not in _MODELS:
            raise ValidationError(f"model must be one of {_MODELS}, got {model!r}")
        self.model_name = model
        self.seed = seed
        # ``raw_features=True`` replays the original Lee et al. pipeline
        # (satoshi-magnitude inputs, no standardisation): the random
        # forest shrugs, the ANN collapses — the paper's Table IV gap.
        self.raw_features = raw_features
        if model == "random_forest":
            self._model = RandomForestClassifier(
                n_estimators=60, max_depth=12, seed=seed
            )
        else:
            self._model = MLPClassifier(
                hidden_dims=(32,), epochs=40, learning_rate=1e-3, seed=seed,
                standardize=not raw_features,
            )
        self._fitted = False

    def fit(
        self,
        addresses: Sequence[str],
        labels: Sequence[int],
        index: ChainIndex,
    ) -> "LeeClassifier":
        """Extract features for ``addresses`` and train the inner model."""
        features = extract_feature_matrix(
            index, list(addresses), raw=self.raw_features
        )
        self._model.fit(features, np.asarray(labels, dtype=np.int64))
        self._fitted = True
        return self

    def predict(self, addresses: Sequence[str], index: ChainIndex) -> np.ndarray:
        """Predicted class per address."""
        if not self._fitted:
            raise NotFittedError("LeeClassifier must be fitted first")
        features = extract_feature_matrix(
            index, list(addresses), raw=self.raw_features
        )
        return self._model.predict(features)

    def predict_proba(
        self, addresses: Sequence[str], index: ChainIndex
    ) -> np.ndarray:
        """Class probabilities per address."""
        if not self._fitted:
            raise NotFittedError("LeeClassifier must be fitted first")
        features = extract_feature_matrix(
            index, list(addresses), raw=self.raw_features
        )
        return self._model.predict_proba(features)
