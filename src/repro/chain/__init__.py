"""Bitcoin UTXO-model substrate: addresses, transactions, blocks, wallets.

This package is the simulated ledger the rest of the library analyses.
It reproduces the transaction model the paper's §II-A describes — UTXOs,
coinbase minting, and the wallet change mechanism — with full validation
(no double spends, no value creation outside the subsidy schedule).
"""

from repro.chain.address import AddressFactory, KeyPair, is_valid_address
from repro.chain.block import Block, merkle_root
from repro.chain.chain import Blockchain, ChainParams, GENESIS_PREV_HASH
from repro.chain.explorer import ChainIndex, TxArrays, TxRecord, attach_index
from repro.chain.mempool import Mempool, PendingView
from repro.chain.serialize import (
    load_chain,
    load_world_chain,
    save_chain,
    save_world,
    transaction_from_columns,
)
from repro.chain.store import (
    STORE_FORMAT_VERSION,
    ChainStore,
    StoreBackedChainIndex,
)
from repro.chain.transaction import (
    SATOSHIS_PER_BTC,
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
    btc,
)
from repro.chain.utxo import UTXOEntry, UTXOSet
from repro.chain.wallet import Wallet

__all__ = [
    "AddressFactory",
    "KeyPair",
    "is_valid_address",
    "Block",
    "merkle_root",
    "Blockchain",
    "ChainParams",
    "GENESIS_PREV_HASH",
    "ChainIndex",
    "TxArrays",
    "TxRecord",
    "attach_index",
    "Mempool",
    "PendingView",
    "load_chain",
    "load_world_chain",
    "save_chain",
    "save_world",
    "transaction_from_columns",
    "STORE_FORMAT_VERSION",
    "ChainStore",
    "StoreBackedChainIndex",
    "SATOSHIS_PER_BTC",
    "OutPoint",
    "Transaction",
    "TxInput",
    "TxOutput",
    "btc",
    "UTXOEntry",
    "UTXOSet",
    "Wallet",
]
