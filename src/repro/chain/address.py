"""Bitcoin-style address derivation.

The paper (§I) describes a bitcoin address as "a 26-bit to 34-bit string of
letters and numbers" derived from an asymmetric key pair.  We reproduce the
shape of that pipeline deterministically:

``private key (32 random bytes)`` → ``public key = SHA-256(priv)`` →
``hash160 = SHA-256(SHA-256(pub))[:20]`` → ``Base58Check('1' + hash160)``.

Real Bitcoin uses secp256k1 and RIPEMD-160; neither changes anything the
classifier can observe (addresses are opaque identifiers), so we keep the
derivation dependency-free while preserving the address alphabet, length
band, checksum structure, and the leading ``1`` of P2PKH addresses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import as_generator

__all__ = ["KeyPair", "AddressFactory", "base58check_encode", "is_valid_address"]

_BASE58_ALPHABET = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"
_BASE58_INDEX = {char: index for index, char in enumerate(_BASE58_ALPHABET)}
_P2PKH_VERSION = b"\x00"


def _sha256(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def base58check_encode(version: bytes, payload: bytes) -> str:
    """Base58Check-encode ``version || payload`` (4-byte double-SHA checksum)."""
    body = version + payload
    checksum = _sha256(_sha256(body))[:4]
    data = body + checksum

    number = int.from_bytes(data, "big")
    encoded = []
    while number > 0:
        number, remainder = divmod(number, 58)
        encoded.append(_BASE58_ALPHABET[remainder])
    # Each leading zero byte is encoded as the alphabet's zero symbol '1'.
    leading_zeros = len(data) - len(data.lstrip(b"\x00"))
    return "1" * leading_zeros + "".join(reversed(encoded))


def base58check_decode(address: str) -> bytes:
    """Decode a Base58Check string back to ``version || payload`` bytes.

    Raises :class:`ValidationError` on a bad alphabet or checksum.
    """
    number = 0
    for char in address:
        if char not in _BASE58_INDEX:
            raise ValidationError(f"invalid base58 character {char!r} in address")
        number = number * 58 + _BASE58_INDEX[char]
    body = number.to_bytes((number.bit_length() + 7) // 8, "big")
    leading = len(address) - len(address.lstrip("1"))
    data = b"\x00" * leading + body
    if len(data) < 5:
        raise ValidationError("address too short to contain a checksum")
    payload, checksum = data[:-4], data[-4:]
    if _sha256(_sha256(payload))[:4] != checksum:
        raise ValidationError("address checksum mismatch")
    return payload


def is_valid_address(address: str) -> bool:
    """Return True if ``address`` Base58Check-decodes with a valid checksum."""
    try:
        base58check_decode(address)
    except ValidationError:
        return False
    return True


@dataclass(frozen=True)
class KeyPair:
    """A simulated key pair and its derived P2PKH-style address."""

    private_key: bytes
    public_key: bytes
    address: str

    @staticmethod
    def from_private_key(private_key: bytes) -> "KeyPair":
        """Derive the public key and address from 32 private-key bytes."""
        if len(private_key) != 32:
            raise ValidationError(
                f"private key must be 32 bytes, got {len(private_key)}"
            )
        public_key = _sha256(private_key)
        hash160 = _sha256(_sha256(public_key))[:20]
        address = base58check_encode(_P2PKH_VERSION, hash160)
        return KeyPair(private_key=private_key, public_key=public_key, address=address)


class AddressFactory:
    """Mint deterministic key pairs / addresses from a random stream.

    A single factory is shared by a wallet (or the whole simulated world) so
    that address creation order — and therefore every downstream artifact —
    is reproducible from the master seed.
    """

    def __init__(self, seed_or_generator: "int | np.random.Generator | None" = None):
        self._rng = as_generator(seed_or_generator)
        self._minted = 0

    @property
    def minted(self) -> int:
        """How many key pairs this factory has created."""
        return self._minted

    def new_keypair(self) -> KeyPair:
        """Create a fresh key pair with a random 32-byte private key."""
        private_key = self._rng.bytes(32)
        self._minted += 1
        return KeyPair.from_private_key(private_key)

    def new_address(self) -> str:
        """Create a fresh address (discarding the key material)."""
        return self.new_keypair().address
