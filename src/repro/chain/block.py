"""Blocks and block headers.

A block packages an ordered list of transactions under a header that links
to the previous block's hash and commits to the transaction set via a
Merkle root — the structure that gives the ledger its tamper-proof nature
(paper §I).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.chain.transaction import Transaction
from repro.errors import ValidationError

__all__ = ["Block", "merkle_root"]


def _sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def merkle_root(txids: Sequence[str]) -> str:
    """Compute the Merkle root of a txid list.

    Follows Bitcoin's convention of duplicating the last element of odd
    levels.  An empty list hashes to the hash of the empty string, which
    only occurs for artificial empty blocks.
    """
    if not txids:
        return _sha256_hex(b"")
    level: List[str] = list(txids)
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        level = [
            _sha256_hex((level[i] + level[i + 1]).encode())
            for i in range(0, len(level), 2)
        ]
    return level[0]


@dataclass(frozen=True)
class Block:
    """An immutable block: header fields plus the transaction list.

    Parameters
    ----------
    height:
        Position in the chain (genesis = 0).
    timestamp:
        Unix seconds (simulated clock) when the block was mined.
    prev_hash:
        Hash of the previous block header (all-zero for genesis).
    transactions:
        Ordered transactions; the first must be the coinbase for non-empty
        validated blocks (enforced by :class:`repro.chain.chain.Blockchain`,
        not here, so that unit tests can build minimal blocks).
    """

    height: int
    timestamp: float
    prev_hash: str
    transactions: Tuple[Transaction, ...]
    merkle: str = field(init=False)
    hash: str = field(init=False)

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ValidationError(f"height must be >= 0, got {self.height}")
        object.__setattr__(
            self, "merkle", merkle_root([tx.txid for tx in self.transactions])
        )
        header = (
            f"h={self.height};t={self.timestamp!r};"
            f"p={self.prev_hash};m={self.merkle}"
        )
        object.__setattr__(self, "hash", _sha256_hex(header.encode()))

    @staticmethod
    def create(
        height: int,
        timestamp: float,
        prev_hash: str,
        transactions: Sequence[Transaction],
    ) -> "Block":
        """Build a block from any transaction sequence."""
        return Block(
            height=height,
            timestamp=float(timestamp),
            prev_hash=prev_hash,
            transactions=tuple(transactions),
        )

    @property
    def coinbase(self) -> "Transaction | None":
        """The block's coinbase transaction, if the block has one."""
        if self.transactions and self.transactions[0].is_coinbase:
            return self.transactions[0]
        return None

    @property
    def tx_count(self) -> int:
        """Number of transactions in the block."""
        return len(self.transactions)

    def total_fees(self) -> int:
        """Total fees paid by the block's non-coinbase transactions."""
        return sum(tx.fee for tx in self.transactions if not tx.is_coinbase)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Block(height={self.height}, {self.tx_count} txs, "
            f"hash={self.hash[:12]}…)"
        )
