"""The blockchain: an append-only, validated sequence of blocks.

Validation enforces the invariants downstream analysis relies on:

- blocks link by hash and have monotonically non-decreasing timestamps;
- the first transaction of each mined block is the coinbase, minting at
  most ``subsidy(height) + fees``;
- every other transaction spends only existing, unspent outputs and does
  not create value (checked by the :class:`~repro.chain.utxo.UTXOSet`).

The chain maintains the UTXO set incrementally and notifies registered
listeners (e.g. the :class:`~repro.chain.explorer.ChainIndex`) on append.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.chain.block import Block
from repro.chain.transaction import SATOSHIS_PER_BTC, Transaction
from repro.chain.utxo import UTXOSet
from repro.errors import ChainError, InvalidBlockError, ValidationError

__all__ = ["ChainParams", "Blockchain", "GENESIS_PREV_HASH"]

GENESIS_PREV_HASH = "0" * 64


@dataclass(frozen=True)
class ChainParams:
    """Consensus-level constants for a simulated chain.

    ``halving_interval`` defaults far smaller than mainnet's 210,000 so a
    simulated decade exercises the subsidy schedule.
    """

    initial_subsidy: int = 50 * SATOSHIS_PER_BTC
    halving_interval: int = 10_000
    block_interval: float = 600.0

    def subsidy_at(self, height: int) -> int:
        """Block subsidy at ``height`` under the halving schedule."""
        if height < 0:
            raise ValidationError(f"height must be >= 0, got {height}")
        halvings = height // self.halving_interval
        if halvings >= 64:
            return 0
        return self.initial_subsidy >> halvings


class Blockchain:
    """An in-memory validated chain with an incrementally-maintained UTXO set."""

    def __init__(
        self,
        params: Optional[ChainParams] = None,
        genesis_timestamp: float = 0.0,
    ):
        self.params = params or ChainParams()
        self.utxo_set = UTXOSet()
        self._blocks: List[Block] = []
        self._listeners: List[Callable[[Block], None]] = []
        genesis = Block.create(
            height=0,
            timestamp=genesis_timestamp,
            prev_hash=GENESIS_PREV_HASH,
            transactions=(),
        )
        self._blocks.append(genesis)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def height(self) -> int:
        """Height of the chain tip (genesis = 0)."""
        return len(self._blocks) - 1

    @property
    def tip(self) -> Block:
        """The most recent block."""
        return self._blocks[-1]

    @property
    def blocks(self) -> Sequence[Block]:
        """All blocks, genesis first (read-only view)."""
        return tuple(self._blocks)

    def block_at(self, height: int) -> Block:
        """The block at ``height``."""
        if not 0 <= height < len(self._blocks):
            raise ValidationError(
                f"height {height} out of range [0, {self.height}]"
            )
        return self._blocks[height]

    def add_listener(self, listener: Callable[[Block], None]) -> None:
        """Register a callback invoked with each successfully appended block."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[Block], None]) -> None:
        """Unregister a previously added listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def append_block(self, block: Block) -> None:
        """Validate ``block`` against the tip and apply it.

        On failure the chain state is unchanged: transactions already
        applied during validation are rolled back in reverse order.
        """
        self._check_header(block)
        self._check_coinbase(block)
        applied: List[Transaction] = []
        try:
            for tx in block.transactions:
                if tx.is_coinbase and applied:
                    raise InvalidBlockError(
                        f"block {block.height} has a non-leading coinbase"
                    )
                self.utxo_set.apply_transaction(tx)
                applied.append(tx)
        except ChainError:
            # Validation failures (InvalidTransactionError from the UTXO
            # rules, the non-leading-coinbase InvalidBlockError above)
            # are the failures this rollback exists for; a non-chain
            # exception here is a bug and should surface as one.
            for tx in reversed(applied):
                self.utxo_set.unapply_transaction(tx)
            raise
        self._blocks.append(block)
        for listener in self._listeners:
            listener(block)

    def mine_block(
        self,
        transactions: Sequence[Transaction],
        reward_address: str,
        timestamp: Optional[float] = None,
    ) -> Block:
        """Assemble a coinbase, build the next block, and append it.

        The coinbase claims the full ``subsidy + fees``.  Returns the
        appended block.
        """
        height = self.height + 1
        if timestamp is None:
            timestamp = self.tip.timestamp + self.params.block_interval
        fees = sum(tx.fee for tx in transactions if not tx.is_coinbase)
        reward = self.params.subsidy_at(height) + fees
        coinbase = Transaction.coinbase(
            reward_address=reward_address,
            value=reward,
            timestamp=timestamp,
            tag=f"height={height}",
        )
        block = Block.create(
            height=height,
            timestamp=timestamp,
            prev_hash=self.tip.hash,
            transactions=(coinbase, *transactions),
        )
        self.append_block(block)
        return block

    # ------------------------------------------------------------------ #
    # Validation internals
    # ------------------------------------------------------------------ #

    def _check_header(self, block: Block) -> None:
        if block.height != self.height + 1:
            raise InvalidBlockError(
                f"expected height {self.height + 1}, got {block.height}"
            )
        if block.prev_hash != self.tip.hash:
            raise InvalidBlockError(
                f"block {block.height} does not link to tip "
                f"{self.tip.hash[:12]}"
            )
        if block.timestamp < self.tip.timestamp:
            raise InvalidBlockError(
                f"block {block.height} timestamp {block.timestamp} precedes "
                f"tip timestamp {self.tip.timestamp}"
            )

    def _check_coinbase(self, block: Block) -> None:
        if not block.transactions:
            return  # empty blocks are permitted (no reward claimed)
        coinbase = block.transactions[0]
        if not coinbase.is_coinbase:
            raise InvalidBlockError(
                f"block {block.height} first transaction is not a coinbase"
            )
        fees = sum(tx.fee for tx in block.transactions[1:] if not tx.is_coinbase)
        allowed = self.params.subsidy_at(block.height) + fees
        if coinbase.output_value > allowed:
            raise InvalidBlockError(
                f"block {block.height} coinbase mints {coinbase.output_value} "
                f"sat, allowed {allowed}"
            )

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    def total_supply(self) -> int:
        """Current monetary base (equals the UTXO set's total value)."""
        return self.utxo_set.total_value()

    def transaction_count(self) -> int:
        """Total transactions across all blocks (including coinbases)."""
        return sum(block.tx_count for block in self._blocks)
