"""Chain indexing and query layer (the simulator's ``btc.com``).

The paper's pipeline starts from "gather all the transactions related to an
address" (§III).  :class:`ChainIndex` maintains exactly that mapping
incrementally as blocks are appended, plus the aggregate activity series
used for Figure 1 (monthly active addresses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chain.block import Block
from repro.chain.chain import Blockchain
from repro.chain.transaction import Transaction

__all__ = ["TxRecord", "ChainIndex", "attach_index"]


@dataclass(frozen=True)
class TxRecord:
    """One address's involvement in one transaction.

    ``net_value`` is satoshis received minus satoshis spent by the address
    in this transaction; positive means net inflow.
    """

    txid: str
    block_height: int
    timestamp: float
    net_value: int

    @property
    def direction(self) -> str:
        """``'in'``, ``'out'`` or ``'self'`` by the sign of the net flow."""
        if self.net_value > 0:
            return "in"
        if self.net_value < 0:
            return "out"
        return "self"


class ChainIndex:
    """Incremental address→transactions index over an append-only chain."""

    def __init__(self) -> None:
        self._tx_by_id: Dict[str, Transaction] = {}
        self._tx_height: Dict[str, int] = {}
        self._records: Dict[str, List[TxRecord]] = {}
        self._first_seen: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def on_block(self, block: Block) -> None:
        """Ingest one appended block (register via ``chain.add_listener``)."""
        for tx in block.transactions:
            self._ingest(tx, block.height)

    def _ingest(self, tx: Transaction, height: int) -> None:
        self._tx_by_id[tx.txid] = tx
        self._tx_height[tx.txid] = height
        for address in tx.addresses():
            record = TxRecord(
                txid=tx.txid,
                block_height=height,
                timestamp=tx.timestamp,
                net_value=tx.value_for(address),
            )
            self._records.setdefault(address, []).append(record)
            self._first_seen.setdefault(address, tx.timestamp)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def transaction(self, txid: str) -> Optional[Transaction]:
        """The transaction with ``txid``, or None if unknown."""
        return self._tx_by_id.get(txid)

    def height_of(self, txid: str) -> Optional[int]:
        """Block height containing ``txid``, or None if unknown."""
        return self._tx_height.get(txid)

    def records_for(self, address: str) -> Sequence[TxRecord]:
        """Chronological involvement records for ``address``."""
        return tuple(self._records.get(address, ()))

    def transactions_of(self, address: str) -> List[Transaction]:
        """Chronological transactions touching ``address``."""
        return [self._tx_by_id[rec.txid] for rec in self._records.get(address, ())]

    def transaction_count(self, address: str) -> int:
        """Number of transactions touching ``address``."""
        return len(self._records.get(address, ()))

    def known_addresses(self) -> List[str]:
        """Every address that has appeared on chain."""
        return list(self._records)

    def first_seen(self, address: str) -> Optional[float]:
        """Timestamp of the first transaction touching ``address``."""
        return self._first_seen.get(address)

    def counterparties(self, address: str) -> Set[str]:
        """Distinct addresses that co-occur in transactions with ``address``."""
        partners: Set[str] = set()
        for record in self._records.get(address, ()):
            tx = self._tx_by_id[record.txid]
            partners.update(tx.addresses())
        partners.discard(address)
        return partners

    # ------------------------------------------------------------------ #
    # Activity series (Figure 1)
    # ------------------------------------------------------------------ #

    def active_addresses_by_bucket(
        self, bucket_seconds: float
    ) -> List[Tuple[float, int]]:
        """Distinct active addresses per time bucket, in bucket order.

        An address is *active* in a bucket if it appears in any
        transaction whose timestamp falls inside the bucket — the quantity
        plotted in the paper's Figure 1.
        """
        buckets: Dict[int, Set[str]] = {}
        for address, records in self._records.items():
            for record in records:
                key = int(record.timestamp // bucket_seconds)
                buckets.setdefault(key, set()).add(address)
        return [
            (key * bucket_seconds, len(buckets[key])) for key in sorted(buckets)
        ]


def attach_index(chain: Blockchain) -> ChainIndex:
    """Create a :class:`ChainIndex`, subscribe it to ``chain``, and backfill.

    Blocks already on the chain are ingested immediately, so the index is
    correct regardless of when it is attached.
    """
    index = ChainIndex()
    for block in chain.blocks:
        index.on_block(block)
    chain.add_listener(index.on_block)
    return index
