"""Chain indexing and query layer (the simulator's ``btc.com``).

The paper's pipeline starts from "gather all the transactions related to an
address" (§III).  :class:`ChainIndex` maintains exactly that mapping
incrementally as blocks are appended, plus the aggregate activity series
used for Figure 1 (monthly active addresses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.chain.block import Block
from repro.chain.chain import Blockchain
from repro.chain.transaction import Transaction

__all__ = ["TxRecord", "TxArrays", "ChainIndex", "attach_index"]


@dataclass(frozen=True)
class TxRecord:
    """One address's involvement in one transaction.

    ``net_value`` is satoshis received minus satoshis spent by the address
    in this transaction; positive means net inflow.
    """

    txid: str
    block_height: int
    timestamp: float
    net_value: int

    @property
    def direction(self) -> str:
        """``'in'``, ``'out'`` or ``'self'`` by the sign of the net flow."""
        if self.net_value > 0:
            return "in"
        if self.net_value < 0:
            return "out"
        return "self"


class TxArrays:
    """One transaction's graph-facing columns, address-independent.

    The columnar counterpart of walking ``tx.inputs`` / ``tx.outputs``:
    participant *node keys* (interned integers — see
    :meth:`ChainIndex.node_names` for the encoding) plus the transferred
    values, ready for ndarray assembly.  Instances are immutable and
    cached per txid on the :class:`ChainIndex`, so the cost of touching
    a transaction's Python objects is paid once no matter how many
    address graphs include it.
    """

    __slots__ = (
        "key",
        "timestamp",
        "input_keys",
        "input_values",
        "output_keys",
        "output_values",
    )

    def __init__(
        self,
        key: int,
        timestamp: float,
        input_keys: np.ndarray,
        input_values: np.ndarray,
        output_keys: np.ndarray,
        output_values: np.ndarray,
    ):
        self.key = key
        self.timestamp = timestamp
        self.input_keys = input_keys
        self.input_values = input_values
        self.output_keys = output_keys
        self.output_values = output_values


class ChainIndex:
    """Incremental address→transactions index over an append-only chain.

    ``address_filter`` restricts which addresses the index keeps
    *records* for: transactions are always stored (any kept address
    must be able to reach its full history), but per-address record
    lists are only maintained for addresses the predicate accepts.
    This is what a shard's index slice is — see :meth:`sharded`.
    """

    def __init__(
        self, address_filter: Optional[Callable[[str], bool]] = None
    ) -> None:
        self.address_filter = address_filter
        self._tx_by_id: Dict[str, Transaction] = {}
        self._tx_height: Dict[str, int] = {}
        self._records: Dict[str, List[TxRecord]] = {}
        self._first_seen: Dict[str, float] = {}
        # Interned node-key columns (lazy; transactions are immutable so
        # cached entries never invalidate on append).
        self._address_ids: Dict[str, int] = {}
        self._address_names: List[str] = []
        self._tx_ids: Dict[str, int] = {}
        self._tx_names: List[str] = []
        self._tx_arrays: Dict[str, TxArrays] = {}

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def on_block(self, block: Block) -> None:
        """Ingest one appended block (register via ``chain.add_listener``)."""
        for tx in block.transactions:
            self._ingest(tx, block.height)

    def _ingest(self, tx: Transaction, height: int) -> None:
        self._tx_by_id[tx.txid] = tx
        self._tx_height[tx.txid] = height
        for address in tx.addresses():
            if self.address_filter is not None and not self.address_filter(
                address
            ):
                continue
            record = TxRecord(
                txid=tx.txid,
                block_height=height,
                timestamp=tx.timestamp,
                net_value=tx.value_for(address),
            )
            self._records.setdefault(address, []).append(record)
            self._first_seen.setdefault(address, tx.timestamp)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def transaction(self, txid: str) -> Optional[Transaction]:
        """The transaction with ``txid``, or None if unknown."""
        return self._tx_by_id.get(txid)

    def height_of(self, txid: str) -> Optional[int]:
        """Block height containing ``txid``, or None if unknown."""
        return self._tx_height.get(txid)

    def records_for(self, address: str) -> Sequence[TxRecord]:
        """Chronological involvement records for ``address``."""
        return tuple(self._records.get(address, ()))

    def transactions_of(self, address: str) -> List[Transaction]:
        """Chronological transactions touching ``address``."""
        return [self._tx_by_id[rec.txid] for rec in self._records.get(address, ())]

    def transaction_count(self, address: str) -> int:
        """Number of transactions touching ``address``."""
        return len(self._records.get(address, ()))

    def total_transactions(self) -> int:
        """Number of distinct transactions the index has ingested.

        Monotonic on an append-only chain, which makes it the cheap
        staleness check the cluster serving layer uses to detect growth
        that happened while it was not listening for block events.
        """
        return len(self._tx_by_id)

    def transactions_since(self, start: int) -> List[Tuple[Transaction, int]]:
        """``(transaction, height)`` pairs ingested after the first
        ``start``, in ingestion (block) order.

        The incremental replay feed for derived indexes: a shard slice
        that recorded ``total_transactions()`` when it was last in sync
        catches up by ingesting exactly this tail (see
        :meth:`ingest_transactions`) instead of being rebuilt from
        scratch.
        """
        from itertools import islice

        return [
            (tx, self._tx_height[txid])
            for txid, tx in islice(self._tx_by_id.items(), start, None)
        ]

    def ingest_transactions(
        self, transactions: "Sequence[Tuple[Transaction, int]]"
    ) -> int:
        """Ingest ``(transaction, height)`` pairs (a replay tail).

        Transactions already known are skipped, so replaying an
        overlapping tail is idempotent — re-ingesting would otherwise
        duplicate per-address records.  Returns the number of
        transactions actually ingested (0 when the whole tail was
        already known), which is what lets replay consumers — the
        cluster's shard refresh, the streaming worker ingest path —
        tell a real catch-up from a redundant one.
        """
        ingested = 0
        for tx, height in transactions:
            if tx.txid not in self._tx_by_id:
                self._ingest(tx, height)
                ingested += 1
        return ingested

    def sharded(
        self, address_filter: Callable[[str], bool]
    ) -> "ChainIndex":
        """A filtered copy of this index: one shard's ``ChainIndex`` slice.

        The copy keeps per-address records only for addresses accepted
        by ``address_filter`` (a shard-membership predicate — see
        :class:`~repro.serve.router.ShardRouter`), while sharing this
        index's immutable :class:`~repro.chain.transaction.Transaction`
        objects, so each kept address can still reach its *full*
        history through :meth:`transactions_of`.  Records are replayed
        in the original ingestion order, preserving the chronological
        per-address record contract.  The copy is independent from this
        index afterwards: feed it future blocks via :meth:`on_block`
        (the cluster layer does) or rebuild it when it goes stale.
        """
        shard = ChainIndex(address_filter=address_filter)
        for txid, tx in self._tx_by_id.items():
            shard._ingest(tx, self._tx_height[txid])
        return shard

    def known_addresses(self) -> List[str]:
        """Every address that has appeared on chain."""
        return list(self._records)

    def first_seen(self, address: str) -> Optional[float]:
        """Timestamp of the first transaction touching ``address``."""
        return self._first_seen.get(address)

    # ------------------------------------------------------------------ #
    # Columnar access (graph construction fast path)
    # ------------------------------------------------------------------ #

    def address_key(self, address: str) -> int:
        """The interned node key of ``address`` (stable per index).

        Address keys are even (``2 * id``) and transaction keys odd
        (``2 * id + 1``), so one integer column can mix both node kinds
        without collisions — the layout consumed by the Stage-1 array
        extractor.
        """
        key = self._address_ids.get(address)
        if key is None:
            key = 2 * len(self._address_names)
            self._address_ids[address] = key
            self._address_names.append(address)
        return key

    def transaction_arrays(self, tx: Transaction) -> TxArrays:
        """The cached :class:`TxArrays` columns of ``tx``.

        Built on first request and memoised by txid; shared across every
        address graph that includes the transaction.  The memo lives for
        the lifetime of the index and is unbounded (transactions are
        immutable, so entries never invalidate) — a long-lived index
        driving column-path construction over a huge chain should call
        :meth:`clear_transaction_arrays` between corpus sweeps to bound
        memory.
        """
        columns = self._tx_arrays.get(tx.txid)
        if columns is None:
            tx_key = self._tx_ids.get(tx.txid)
            if tx_key is None:
                tx_key = 2 * len(self._tx_names) + 1
                self._tx_ids[tx.txid] = tx_key
                self._tx_names.append(tx.txid)
            address_key = self.address_key
            columns = TxArrays(
                key=tx_key,
                timestamp=tx.timestamp,
                input_keys=np.array(
                    [address_key(inp.address) for inp in tx.inputs],
                    dtype=np.int64,
                ),
                input_values=np.array(
                    [inp.value for inp in tx.inputs], dtype=np.float64
                ),
                output_keys=np.array(
                    [address_key(out.address) for out in tx.outputs],
                    dtype=np.int64,
                ),
                output_values=np.array(
                    [out.value for out in tx.outputs], dtype=np.float64
                ),
            )
            self._tx_arrays[tx.txid] = columns
        return columns

    def clear_transaction_arrays(self) -> None:
        """Drop the per-transaction column memo (interning is kept —
        node keys handed out earlier stay valid)."""
        self._tx_arrays.clear()

    def resident_nbytes(self) -> int:
        """Estimated resident heap bytes held by this index.

        A deterministic ``sys.getsizeof`` walk over the transaction
        objects, per-address records, interning tables and the column
        memo (each distinct object counted once).  An estimate — Python
        object overhead is approximated, shared objects held by *other*
        indexes still count here — but consistent across index flavors,
        which is what the serving benchmarks compare: a deep-copied
        in-memory shard slice against the store-backed view's
        :meth:`~repro.chain.store.StoreBackedChainIndex.resident_nbytes`.
        """
        import sys

        seen: Set[int] = set()

        def size(obj) -> int:
            if id(obj) in seen:
                return 0
            seen.add(id(obj))
            total = sys.getsizeof(obj)
            attrs = getattr(obj, "__dict__", None)
            if attrs is not None and id(attrs) not in seen:
                seen.add(id(attrs))
                total += sys.getsizeof(attrs)
            return total

        total = 0
        for table in (
            self._tx_by_id,
            self._tx_height,
            self._records,
            self._first_seen,
            self._address_ids,
            self._address_names,
            self._tx_ids,
            self._tx_names,
            self._tx_arrays,
        ):
            total += size(table)
        for txid, tx in self._tx_by_id.items():
            total += size(txid) + size(tx) + size(tx.inputs) + size(tx.outputs)
            for inp in tx.inputs:
                total += size(inp) + size(inp.outpoint)
                total += size(inp.outpoint.txid) + size(inp.address)
            for out in tx.outputs:
                total += size(out) + size(out.address)
        for address, records in self._records.items():
            total += size(address) + size(records)
            for record in records:
                total += size(record) + size(record.txid)
        for columns in self._tx_arrays.values():
            total += size(columns)
            total += columns.input_keys.nbytes + columns.input_values.nbytes
            total += columns.output_keys.nbytes + columns.output_values.nbytes
        return total

    def node_names(self, keys: Sequence[int]) -> List[str]:
        """Decode interned node keys back to reference strings.

        Even keys decode to addresses, odd keys to txids — the inverse
        of :meth:`address_key` / :meth:`transaction_arrays`.
        """
        address_names = self._address_names
        tx_names = self._tx_names
        return [
            tx_names[key >> 1] if key & 1 else address_names[key >> 1]
            for key in keys
        ]

    def counterparties(self, address: str) -> Set[str]:
        """Distinct addresses that co-occur in transactions with ``address``."""
        partners: Set[str] = set()
        for record in self._records.get(address, ()):
            tx = self._tx_by_id[record.txid]
            partners.update(tx.addresses())
        partners.discard(address)
        return partners

    # ------------------------------------------------------------------ #
    # Activity series (Figure 1)
    # ------------------------------------------------------------------ #

    def active_addresses_by_bucket(
        self, bucket_seconds: float
    ) -> List[Tuple[float, int]]:
        """Distinct active addresses per time bucket, in bucket order.

        An address is *active* in a bucket if it appears in any
        transaction whose timestamp falls inside the bucket — the quantity
        plotted in the paper's Figure 1.
        """
        buckets: Dict[int, Set[str]] = {}
        for address, records in self._records.items():
            for record in records:
                key = int(record.timestamp // bucket_seconds)
                buckets.setdefault(key, set()).add(address)
        return [
            (key * bucket_seconds, len(buckets[key])) for key in sorted(buckets)
        ]


def attach_index(chain: Blockchain) -> ChainIndex:
    """Create a :class:`ChainIndex`, subscribe it to ``chain``, and backfill.

    Blocks already on the chain are ingested immediately, so the index is
    correct regardless of when it is attached.
    """
    index = ChainIndex()
    for block in chain.blocks:
        index.on_block(block)
    chain.add_listener(index.on_block)
    return index
