"""A mempool of validated-but-unconfirmed transactions.

The mempool maintains a *delta view* over the confirmed UTXO set: the
outpoints its pending transactions spend and the outputs they create.
Validation of a new transaction consults the confirmed set plus this delta,
so intra-mempool chains (spend an unconfirmed output) and double-spend
rejection both work without copying the UTXO set.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.chain.transaction import OutPoint, Transaction
from repro.chain.utxo import UTXOEntry, UTXOSet
from repro.errors import InvalidTransactionError

__all__ = ["Mempool", "PendingView"]


class Mempool:
    """FIFO pool of unconfirmed transactions with double-spend protection."""

    def __init__(self, utxo_set: UTXOSet):
        self._utxo_set = utxo_set
        self._pending: Dict[str, Transaction] = {}
        self._order: List[str] = []
        self._spent: Set[OutPoint] = set()
        self._created: Dict[OutPoint, UTXOEntry] = {}

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, txid: str) -> bool:
        return txid in self._pending

    @property
    def transactions(self) -> List[Transaction]:
        """Pending transactions in arrival order."""
        return [self._pending[txid] for txid in self._order]

    def submit(self, tx: Transaction) -> None:
        """Validate ``tx`` against confirmed + pending state and enqueue it."""
        if tx.txid in self._pending:
            raise InvalidTransactionError(f"tx {tx.txid[:12]} already in mempool")
        if tx.is_coinbase:
            raise InvalidTransactionError("coinbase transactions cannot enter the mempool")
        for inp in tx.inputs:
            if inp.outpoint in self._spent:
                raise InvalidTransactionError(
                    f"tx {tx.txid[:12]} double-spends pending outpoint "
                    f"{inp.outpoint.txid[:12]}:{inp.outpoint.vout}"
                )
            entry = self._resolve(inp.outpoint)
            if entry is None:
                raise InvalidTransactionError(
                    f"tx {tx.txid[:12]} spends unknown outpoint "
                    f"{inp.outpoint.txid[:12]}:{inp.outpoint.vout}"
                )
            if entry.address != inp.address or entry.value != inp.value:
                raise InvalidTransactionError(
                    f"tx {tx.txid[:12]} input does not match the available output"
                )
        if tx.output_value > tx.input_value:
            raise InvalidTransactionError(
                f"tx {tx.txid[:12]} outputs exceed inputs"
            )
        self._pending[tx.txid] = tx
        self._order.append(tx.txid)
        for inp in tx.inputs:
            self._spent.add(inp.outpoint)
        for vout, out in enumerate(tx.outputs):
            outpoint = OutPoint(txid=tx.txid, vout=vout)
            self._created[outpoint] = UTXOEntry(
                outpoint=outpoint,
                address=out.address,
                value=out.value,
                timestamp=tx.timestamp,
            )

    def take(self, max_count: int) -> List[Transaction]:
        """Remove and return up to ``max_count`` transactions (FIFO).

        Intended for block assembly: the taken transactions are expected to
        be confirmed; their delta entries are dropped.
        """
        taken_ids = self._order[:max_count]
        self._order = self._order[max_count:]
        taken = []
        for txid in taken_ids:
            tx = self._pending.pop(txid)
            taken.append(tx)
            for inp in tx.inputs:
                self._spent.discard(inp.outpoint)
            for vout in range(len(tx.outputs)):
                self._created.pop(OutPoint(txid=txid, vout=vout), None)
        return taken

    def drain(self) -> List[Transaction]:
        """Remove and return every pending transaction (FIFO)."""
        return self.take(len(self._order))

    def _resolve(self, outpoint: OutPoint) -> "UTXOEntry | None":
        created = self._created.get(outpoint)
        if created is not None:
            return created
        return self._utxo_set.get(outpoint)

    def view(self) -> "PendingView":
        """A spendability view over confirmed + pending state."""
        return PendingView(self._utxo_set, self)


class PendingView:
    """Read-only 'confirmed plus mempool' view used by wallets.

    An output is spendable iff it exists in the confirmed set or was
    created by a pending transaction, and is not spent by any pending
    transaction.
    """

    def __init__(self, utxo_set: UTXOSet, mempool: Mempool):
        self._utxo_set = utxo_set
        self._mempool = mempool

    def entries_for(self, address: str) -> List[UTXOEntry]:
        """Spendable entries owned by ``address`` under this view."""
        spent = self._mempool._spent
        entries = [
            entry
            for entry in self._utxo_set.entries_for(address)
            if entry.outpoint not in spent
        ]
        entries.extend(
            entry
            for entry in self._mempool._created.values()
            if entry.address == address and entry.outpoint not in spent
        )
        return entries

    def balance_of(self, address: str) -> int:
        """Spendable satoshis owned by ``address`` under this view."""
        return sum(entry.value for entry in self.entries_for(address))
