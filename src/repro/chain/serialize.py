"""Chain persistence: save and replay a blockchain as JSON lines.

A chain file stores the consensus parameters followed by one JSON object
per block.  Loading *replays* the blocks through full validation, so a
corrupted or hand-edited file is rejected rather than silently accepted —
the ledger's integrity guarantees hold across the serialisation boundary.

Worlds (chain + label maps) round-trip via :func:`save_world` /
:func:`load_world_chain`, which lets an expensive simulation be generated
once and shared across experiment processes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Tuple

from repro.chain.block import Block
from repro.chain.chain import Blockchain, ChainParams
from repro.chain.explorer import ChainIndex, attach_index
from repro.chain.transaction import OutPoint, Transaction, TxInput, TxOutput
from repro.errors import ValidationError

__all__ = [
    "transaction_to_dict",
    "transaction_from_dict",
    "transaction_from_columns",
    "save_chain",
    "load_chain",
    "save_world",
    "load_world_chain",
]


def transaction_to_dict(tx: Transaction) -> Dict:
    """JSON-safe encoding of one transaction."""
    return {
        "timestamp": tx.timestamp,
        "inputs": [
            {
                "txid": inp.outpoint.txid,
                "vout": inp.outpoint.vout,
                "address": inp.address,
                "value": inp.value,
            }
            for inp in tx.inputs
        ],
        "outputs": [
            {"address": out.address, "value": out.value} for out in tx.outputs
        ],
        "txid": tx.txid,
    }


def transaction_from_dict(payload: Dict) -> Transaction:
    """Rebuild a transaction; restores the recorded txid (coinbase tags
    are not recoverable from content alone)."""
    try:
        tx = Transaction.create(
            inputs=[
                TxInput(
                    outpoint=OutPoint(txid=item["txid"], vout=int(item["vout"])),
                    address=item["address"],
                    value=int(item["value"]),
                )
                for item in payload["inputs"]
            ],
            outputs=[
                TxOutput(address=item["address"], value=int(item["value"]))
                for item in payload["outputs"]
            ],
            timestamp=float(payload["timestamp"]),
        )
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed transaction payload: {exc}") from exc
    recorded = payload.get("txid")
    if recorded:
        object.__setattr__(tx, "txid", recorded)
    return tx


def transaction_from_columns(
    txid: str,
    timestamp: float,
    inputs: "Tuple[Tuple[str, int], ...] | list",
    outputs: "Tuple[Tuple[str, int], ...] | list",
) -> Transaction:
    """Rebuild a transaction from stored ``(address, value)`` columns.

    The columnar chain store (:mod:`repro.chain.store`) persists only the
    graph-facing content of a transaction — participant addresses, values
    and the timestamp — not the spent outpoints, which no downstream
    consumer (records, features, graph construction) reads.  Inputs are
    therefore given synthetic ``stored:<i>`` outpoints, and the recorded
    txid is restored verbatim (it would not recompute from content with
    synthetic outpoints).  Round-trips ``is_coinbase``, ``value_for``,
    ``addresses`` and ``fee`` exactly; outpoint identity is *not*
    preserved.
    """
    tx = Transaction.create(
        inputs=[
            TxInput(
                outpoint=OutPoint(txid="stored", vout=i),
                address=address,
                value=int(value),
            )
            for i, (address, value) in enumerate(inputs)
        ],
        outputs=[
            TxOutput(address=address, value=int(value))
            for address, value in outputs
        ],
        timestamp=float(timestamp),
    )
    object.__setattr__(tx, "txid", txid)
    return tx


def save_chain(chain: Blockchain, path: "str | Path") -> None:
    """Write the chain as one JSON line per block (header + params first)."""
    lines = [
        json.dumps(
            {
                "kind": "params",
                "initial_subsidy": chain.params.initial_subsidy,
                "halving_interval": chain.params.halving_interval,
                "block_interval": chain.params.block_interval,
                "genesis_timestamp": chain.block_at(0).timestamp,
            }
        )
    ]
    for block in chain.blocks[1:]:
        lines.append(
            json.dumps(
                {
                    "kind": "block",
                    "height": block.height,
                    "timestamp": block.timestamp,
                    "transactions": [
                        transaction_to_dict(tx) for tx in block.transactions
                    ],
                }
            )
        )
    Path(path).write_text("\n".join(lines) + "\n")


def load_chain(path: "str | Path") -> Tuple[Blockchain, ChainIndex]:
    """Replay a saved chain through full validation.

    Returns the chain plus a freshly attached index.
    """
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValidationError(f"chain file {path} is empty")
    header = json.loads(lines[0])
    if header.get("kind") != "params":
        raise ValidationError("chain file must start with a params record")
    chain = Blockchain(
        ChainParams(
            initial_subsidy=int(header["initial_subsidy"]),
            halving_interval=int(header["halving_interval"]),
            block_interval=float(header["block_interval"]),
        ),
        genesis_timestamp=float(header["genesis_timestamp"]),
    )
    index = attach_index(chain)
    for line in lines[1:]:
        record = json.loads(line)
        if record.get("kind") != "block":
            raise ValidationError(f"unexpected record kind {record.get('kind')!r}")
        transactions = tuple(
            transaction_from_dict(item) for item in record["transactions"]
        )
        block = Block.create(
            height=int(record["height"]),
            timestamp=float(record["timestamp"]),
            prev_hash=chain.tip.hash,
            transactions=transactions,
        )
        chain.append_block(block)
    return chain, index


def save_world(world, directory: "str | Path") -> None:
    """Persist a simulated world: chain plus coarse and fine label maps."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    save_chain(world.chain, path / "chain.jsonl")
    (path / "labels.json").write_text(
        json.dumps({address: int(label) for address, label in world.labels.items()})
    )
    (path / "fine_labels.json").write_text(json.dumps(world.fine_labels))


def load_world_chain(
    directory: "str | Path",
) -> Tuple[Blockchain, ChainIndex, Dict[str, int], Dict[str, str]]:
    """Load a world saved by :func:`save_world`.

    Returns ``(chain, index, labels, fine_labels)``.  Actor objects are
    not reconstructed — the chain and labels are all the experiments
    need.
    """
    path = Path(directory)
    chain, index = load_chain(path / "chain.jsonl")
    labels = {
        address: int(label)
        for address, label in json.loads((path / "labels.json").read_text()).items()
    }
    fine_path = path / "fine_labels.json"
    fine_labels = (
        json.loads(fine_path.read_text()) if fine_path.exists() else {}
    )
    return chain, index, labels, fine_labels
