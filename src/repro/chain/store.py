"""Memory-mapped columnar chain persistence (the corpus-scale substrate).

Everything upstream of this module assumes the whole chain lives in
memory as Python ``Transaction`` objects; corpus-scale datasets
(10^5 - 10^6 addresses) do not fit that way.  :class:`ChainStore`
persists the interned transaction columns that
:meth:`~repro.chain.explorer.ChainIndex.transaction_arrays` produces —
participant node keys, values, timestamps, heights, plus the address/tx
id mappings — as flat ``.npy`` segments that readers open with
``np.load(..., mmap_mode="r")``, so a cluster shard worker maps its
slice read-only instead of holding a deep-copied index.

Segment layout (all files live flat in the store directory)::

    manifest.json                   store manifest, committed LAST
    seg_00000000.json               per-segment metadata + pairing token
    seg_00000000.timestamps.npy     float64 [T]   per-tx unix seconds
    seg_00000000.heights.npy        int64   [T]   per-tx block height
    seg_00000000.in_indptr.npy      int64   [T+1] CSR offsets into in_*
    seg_00000000.in_keys.npy        int64   [E_in]  interned address keys
    seg_00000000.in_values.npy      float64 [E_in]  satoshis spent
    seg_00000000.out_indptr.npy     int64   [T+1] CSR offsets into out_*
    seg_00000000.out_keys.npy       int64   [E_out] interned address keys
    seg_00000000.out_values.npy     float64 [E_out] satoshis received
    seg_00000000.address_names.npy  <U*   [A_new] new addresses, intern order
    seg_00000000.address_sort.npy   int64 [A_new] argsort of address_names
    seg_00000000.tx_names.npy       <U64  [T]     txids, ingestion order
    seg_00000000.tx_sort.npy        int64 [T]     argsort of tx_names

Interning matches the in-memory index exactly: address keys are even
(``2 * id``), transaction keys odd (``2 * id + 1``), ids are assigned in
ingestion order, inputs before outputs within a transaction — so a
store synced from a fresh index yields *identical* column values to
walking that index's :meth:`transaction_arrays` in ingestion order.

Commit protocol (mirrors ``CacheStore``'s torn-bundle discipline): every
file is written to a ``.tmp`` sibling and ``os.replace``d into place;
column files first, then the segment metadata carrying a random pairing
token, and only then the store manifest listing the segment with the
same token.  A crash mid-append leaves stray unlisted files that the
next open ignores and the next append overwrites.  At open, every
listed segment is validated (metadata present, token paired, every
column maps with the declared dtype/shape); a torn *tail* segment is
dropped — the store falls back to the last committed prefix and records
the drop in :attr:`ChainStore.recovered_tail` — while corruption before
the tail raises :class:`~repro.errors.ChainStoreError`.

:class:`StoreBackedChainIndex` is the read side: a drop-in
:class:`~repro.chain.explorer.ChainIndex` whose queries read the mapped
segments (records, columns, reconstructed transactions) instead of
materialized Python objects.  It is read-only — appends go through the
writable :class:`ChainStore` and readers catch up via :meth:`remap`,
which is how the cluster streams block appends to long-lived shard
workers without restarting them.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import obs
from repro.chain.block import Block
from repro.chain.explorer import ChainIndex, TxArrays, TxRecord
from repro.chain.serialize import transaction_from_columns
from repro.chain.transaction import Transaction
from repro.errors import ChainStoreError

__all__ = ["ChainStore", "StoreBackedChainIndex", "STORE_FORMAT_VERSION"]

# Registry handles for store lifecycle events (see repro.obs).  Literal
# snake_case names are pinned by the obs-discipline lint rule.
_STORE_COMMITS = obs.counter("store_segment_commits_total")
_STORE_REMAPS = obs.counter("store_remaps_total")
_STORE_RECOVERIES = obs.counter("store_torn_tail_recoveries_total")

#: Bump when the segment layout changes incompatibly.
STORE_FORMAT_VERSION = 1

#: Column name -> expected dtype kind; shapes are validated against the
#: per-segment metadata and the tx/edge counts.
_COLUMNS = (
    "timestamps",
    "heights",
    "in_indptr",
    "in_keys",
    "in_values",
    "out_indptr",
    "out_keys",
    "out_values",
    "address_names",
    "address_sort",
    "tx_names",
    "tx_sort",
)

_MANIFEST = "manifest.json"

#: Exceptions that mean "this segment is torn or malformed" at map time.
_MAP_ERRORS = (OSError, ValueError, KeyError, TypeError)


class _Segment:
    """One committed, mapped segment: metadata plus its column memmaps."""

    __slots__ = (
        "name",
        "tx_base",
        "address_base",
        "tx_count",
        "new_addresses",
        "first_height",
        "last_height",
        "arrays",
    )

    def __init__(self, entry: Dict, arrays: Dict[str, np.ndarray]) -> None:
        self.name = entry["name"]
        self.tx_base = int(entry["tx_base"])
        self.address_base = int(entry["address_base"])
        self.tx_count = int(entry["tx_count"])
        self.new_addresses = int(entry["new_addresses"])
        self.first_height = int(entry["first_height"])
        self.last_height = int(entry["last_height"])
        self.arrays = arrays


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


def _atomic_save_array(path: Path, array: np.ndarray) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        np.save(handle, array)
    os.replace(tmp, path)


class ChainStore:
    """Append-only, memory-mapped columnar chain store.

    Open writable to create/extend a store (the writer owns the
    address/tx interning tables and is the only process that appends);
    open read-only to map committed segments — readers follow appends
    with :meth:`remap`.

    Attributes
    ----------
    recovered_tail:
        Name of the torn tail segment dropped during open, or ``None``
        when the store opened clean.  A writable open also rewrites the
        manifest without the torn entry, so the next append recommits
        under the same segment name.
    """

    def __init__(self, directory: "str | Path", writable: bool = False) -> None:
        """Open (and for a writable store, create) ``directory``."""
        self.directory = Path(directory)
        self.writable = bool(writable)
        self.recovered_tail: Optional[str] = None
        self._closed = False
        self._segments: List[_Segment] = []
        self._address_ids: Dict[str, int] = {}
        self._tx_ids: Dict[str, int] = {}
        manifest_path = self.directory / _MANIFEST
        if not manifest_path.exists():
            if not self.writable:
                raise ChainStoreError(
                    f"no chain store at {self.directory} (missing {_MANIFEST})"
                )
            self.directory.mkdir(parents=True, exist_ok=True)
            self._write_manifest([])
        entries = self._read_manifest()
        for position, entry in enumerate(entries):
            try:
                self._segments.append(self._map_segment(entry))
            except ChainStoreError:
                if position != len(entries) - 1:
                    raise
                # Torn tail: fall back to the last committed prefix.
                self.recovered_tail = entry.get("name")
                _STORE_RECOVERIES.inc()
                if self.writable:
                    self._write_manifest(entries[:position])
        if self.writable:
            self._rebuild_interning()

    # ------------------------------------------------------------------ #
    # Manifest + mapping
    # ------------------------------------------------------------------ #

    def _read_manifest(self) -> List[Dict]:
        path = self.directory / _MANIFEST
        try:
            manifest = json.loads(path.read_text())
            if manifest.get("format") != STORE_FORMAT_VERSION:
                raise ChainStoreError(
                    f"chain store {self.directory} has format "
                    f"{manifest.get('format')!r}, expected {STORE_FORMAT_VERSION}"
                )
            segments = manifest["segments"]
            if not isinstance(segments, list):
                raise ChainStoreError(
                    f"chain store manifest at {path} is malformed"
                )
            return segments
        except _MAP_ERRORS as exc:
            raise ChainStoreError(
                f"cannot read chain store manifest at {path}: {exc}"
            ) from exc

    def _write_manifest(self, entries: List[Dict]) -> None:
        payload = json.dumps(
            {"format": STORE_FORMAT_VERSION, "segments": entries}, indent=0
        ).encode()
        _atomic_write_bytes(self.directory / _MANIFEST, payload)

    def _map_segment(self, entry: Dict) -> _Segment:
        name = entry.get("name", "<unnamed>")
        try:
            meta = json.loads((self.directory / f"{name}.json").read_text())
            if meta["token"] != entry["token"]:
                raise ChainStoreError(
                    f"segment {name}: metadata token {meta['token']!r} does "
                    f"not pair with manifest token {entry['token']!r}"
                )
            arrays: Dict[str, np.ndarray] = {}
            for column in _COLUMNS:
                spec = meta["columns"][column]
                array = np.load(
                    self.directory / f"{name}.{column}.npy", mmap_mode="r"
                )
                if (
                    str(array.dtype) != spec["dtype"]
                    or list(array.shape) != list(spec["shape"])
                ):
                    raise ChainStoreError(
                        f"segment {name}: column {column} is "
                        f"{array.dtype}{array.shape}, metadata declares "
                        f"{spec['dtype']}{tuple(spec['shape'])}"
                    )
                # Serve reads through a plain-ndarray view: np.memmap's
                # subclass machinery (__array_finalize__ on every slice,
                # mmap bookkeeping in __getitem__) measurably taxes the
                # per-transaction column reads of store-backed scoring.
                # The view keeps the memmap alive as its .base, so the
                # pages stay file-backed and shared across processes,
                # and dropping the segment still closes the handle.
                arrays[column] = array.view(np.ndarray)
            tx_count = int(entry["tx_count"])
            if (
                arrays["timestamps"].shape != (tx_count,)
                or arrays["tx_names"].shape != (tx_count,)
                or arrays["in_indptr"].shape != (tx_count + 1,)
                or arrays["out_indptr"].shape != (tx_count + 1,)
                or arrays["address_names"].shape
                != (int(entry["new_addresses"]),)
            ):
                raise ChainStoreError(
                    f"segment {name}: column shapes disagree with the "
                    "manifest transaction/address counts"
                )
            return _Segment(entry, arrays)
        except ChainStoreError:
            raise
        except _MAP_ERRORS as exc:
            raise ChainStoreError(
                f"segment {name} failed to map: {exc}"
            ) from exc

    def _rebuild_interning(self) -> None:
        self._address_ids = {}
        self._tx_ids = {}
        for segment in self._segments:
            for offset, address in enumerate(
                np.asarray(segment.arrays["address_names"]).tolist()
            ):
                self._address_ids[address] = segment.address_base + offset
            for offset, txid in enumerate(
                np.asarray(segment.arrays["tx_names"]).tolist()
            ):
                self._tx_ids[txid] = segment.tx_base + offset

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_segments(self) -> int:
        """Number of committed segments currently mapped."""
        return len(self._segments)

    @property
    def num_transactions(self) -> int:
        """Total transactions across mapped segments."""
        if not self._segments:
            return 0
        tail = self._segments[-1]
        return tail.tx_base + tail.tx_count

    @property
    def num_addresses(self) -> int:
        """Total interned addresses across mapped segments."""
        if not self._segments:
            return 0
        tail = self._segments[-1]
        return tail.address_base + tail.new_addresses

    def mapped_nbytes(self) -> int:
        """Bytes of column data reachable through the maps (file-backed,
        shared between processes — *not* private resident heap)."""
        return sum(
            array.nbytes
            for segment in self._segments
            for array in segment.arrays.values()
        )

    # ------------------------------------------------------------------ #
    # Append path (writable stores only)
    # ------------------------------------------------------------------ #

    def append_transactions(
        self, pairs: "Sequence[Tuple[Transaction, int]]"
    ) -> int:
        """Commit ``(transaction, height)`` pairs as one new tail segment.

        Already-stored txids are skipped (idempotent tail replay, same
        contract as
        :meth:`~repro.chain.explorer.ChainIndex.ingest_transactions`).
        Returns the number of transactions actually appended; no segment
        is written when the whole tail was already known.
        """
        if not self.writable:
            raise ChainStoreError(
                "append_transactions on a read-only chain store — open "
                "with writable=True (readers catch up via remap())"
            )
        self._check_open()
        fresh = [
            (tx, height) for tx, height in pairs if tx.txid not in self._tx_ids
        ]
        if not fresh:
            return 0
        tx_base = self.num_transactions
        address_base = self.num_addresses
        timestamps: List[float] = []
        heights: List[int] = []
        in_indptr: List[int] = [0]
        out_indptr: List[int] = [0]
        in_keys: List[int] = []
        in_values: List[int] = []
        out_keys: List[int] = []
        out_values: List[int] = []
        new_address_names: List[str] = []

        def intern(address: str) -> int:
            key = self._address_ids.get(address)
            if key is None:
                key = len(self._address_ids)
                self._address_ids[address] = key
                new_address_names.append(address)
            return 2 * key

        for tx, height in fresh:
            self._tx_ids[tx.txid] = tx_base + len(timestamps)
            timestamps.append(tx.timestamp)
            heights.append(int(height))
            for inp in tx.inputs:
                in_keys.append(intern(inp.address))
                in_values.append(inp.value)
            in_indptr.append(len(in_keys))
            for out in tx.outputs:
                out_keys.append(intern(out.address))
                out_values.append(out.value)
            out_indptr.append(len(out_keys))

        address_names = (
            np.array(new_address_names, dtype=np.str_)
            if new_address_names
            else np.array([], dtype="<U1")
        )
        tx_names = np.array([tx.txid for tx, _ in fresh], dtype="<U64")
        arrays = {
            "timestamps": np.array(timestamps, dtype=np.float64),
            "heights": np.array(heights, dtype=np.int64),
            "in_indptr": np.array(in_indptr, dtype=np.int64),
            "in_keys": np.array(in_keys, dtype=np.int64),
            "in_values": np.array(in_values, dtype=np.float64),
            "out_indptr": np.array(out_indptr, dtype=np.int64),
            "out_keys": np.array(out_keys, dtype=np.int64),
            "out_values": np.array(out_values, dtype=np.float64),
            "address_names": address_names,
            "address_sort": np.argsort(address_names, kind="stable").astype(
                np.int64
            ),
            "tx_names": tx_names,
            "tx_sort": np.argsort(tx_names, kind="stable").astype(np.int64),
        }
        entry = {
            "name": f"seg_{len(self._segments):08d}",
            "token": os.urandom(8).hex(),
            "tx_base": tx_base,
            "address_base": address_base,
            "tx_count": len(fresh),
            "new_addresses": len(new_address_names),
            "first_height": heights[0],
            "last_height": heights[-1],
        }
        # Commit order: columns, then segment metadata (with the pairing
        # token), then the store manifest.  A crash at any point leaves
        # either an unlisted (ignored) segment or a fully committed one.
        for column, array in arrays.items():
            _atomic_save_array(
                self.directory / f"{entry['name']}.{column}.npy", array
            )
        meta = dict(entry)
        meta["columns"] = {
            column: {"dtype": str(array.dtype), "shape": list(array.shape)}
            for column, array in arrays.items()
        }
        _atomic_write_bytes(
            self.directory / f"{entry['name']}.json",
            json.dumps(meta, indent=0).encode(),
        )
        entries = self._read_manifest()[: len(self._segments)] + [entry]
        self._write_manifest(entries)
        self._segments.append(self._map_segment(entry))
        _STORE_COMMITS.inc()
        return len(fresh)

    def sync_from_index(self, index: ChainIndex) -> int:
        """Append whatever ``index`` has ingested beyond this store.

        The boundary transaction is spot-checked (the index's txid at
        the store's watermark must match the last stored txid) so a
        store cannot silently diverge from an index it did not come
        from.  Returns the number of transactions appended.
        """
        count = self.num_transactions
        if count > index.total_transactions():
            raise ChainStoreError(
                f"chain store holds {count} transactions but the index "
                f"only {index.total_transactions()} — refusing to sync "
                "from a shorter history"
            )
        if count:
            pairs = index.transactions_since(count - 1)
            stored = str(self._segments[-1].arrays["tx_names"][-1])
            if not pairs or pairs[0][0].txid != stored:
                raise ChainStoreError(
                    "chain store and index disagree at the sync boundary "
                    f"(stored txid {stored[:12]}…) — this store was not "
                    "built from this chain"
                )
            tail = pairs[1:]
        else:
            tail = index.transactions_since(0)
        return self.append_transactions(tail)

    def append_block(self, block: Block) -> int:
        """Commit one block's transactions as a tail segment (the
        streaming append path — see :meth:`append_transactions`)."""
        return self.append_transactions(
            [(tx, block.height) for tx in block.transactions]
        )

    # ------------------------------------------------------------------ #
    # Reader catch-up
    # ------------------------------------------------------------------ #

    def remap(self) -> int:
        """Map segments committed since this store was opened.

        Re-reads the manifest, verifies the already-mapped prefix is
        unchanged (token pairing), and maps any new tail segments.
        Returns the number of segments newly mapped.  Unlike open-time
        recovery, a torn segment here raises — the writer commits the
        manifest last, so every listed segment must map.
        """
        self._check_open()
        entries = self._read_manifest()
        if len(entries) < len(self._segments):
            raise ChainStoreError(
                f"chain store at {self.directory} shrank from "
                f"{len(self._segments)} to {len(entries)} segments"
            )
        for segment, entry in zip(self._segments, entries):
            if entry.get("name") != segment.name:
                raise ChainStoreError(
                    f"chain store segment {segment.name} was renamed to "
                    f"{entry.get('name')!r} behind this reader"
                )
        mapped = 0
        for entry in entries[len(self._segments):]:
            segment = self._map_segment(entry)
            self._segments.append(segment)
            if self.writable:
                for offset, address in enumerate(
                    np.asarray(segment.arrays["address_names"]).tolist()
                ):
                    self._address_ids.setdefault(
                        address, segment.address_base + offset
                    )
                for offset, txid in enumerate(
                    np.asarray(segment.arrays["tx_names"]).tolist()
                ):
                    self._tx_ids.setdefault(txid, segment.tx_base + offset)
            mapped += 1
        if mapped:
            _STORE_REMAPS.inc()
        return mapped

    def close(self) -> None:
        """Release every mapped segment (drops the memmap references —
        with no outstanding column views, the file handles close)."""
        self._segments = []
        self._address_ids = {}
        self._tx_ids = {}
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ChainStoreError("chain store is closed")

    # ------------------------------------------------------------------ #
    # Id mapping (searchsorted over the mapped, per-segment sorted names)
    # ------------------------------------------------------------------ #

    def address_id(self, address: str) -> Optional[int]:
        """Interned id of ``address``, or ``None`` if never stored."""
        for segment in self._segments:
            names = segment.arrays["address_names"]
            if not len(names):
                continue
            sorter = segment.arrays["address_sort"]
            slot = int(np.searchsorted(names, address, sorter=sorter))
            if slot < len(names):
                offset = int(sorter[slot])
                if str(names[offset]) == address:
                    return segment.address_base + offset
        return None

    def tx_id(self, txid: str) -> Optional[int]:
        """Interned id of ``txid``, or ``None`` if never stored."""
        for segment in self._segments:
            names = segment.arrays["tx_names"]
            if not len(names):
                continue
            sorter = segment.arrays["tx_sort"]
            slot = int(np.searchsorted(names, txid, sorter=sorter))
            if slot < len(names):
                offset = int(sorter[slot])
                if str(names[offset]) == txid:
                    return segment.tx_base + offset
        return None

    def address_name(self, address_id: int) -> str:
        """Decode an interned address id back to the address string."""
        segment = self._segment_for(address_id, "address_base", "new_addresses")
        return str(segment.arrays["address_names"][address_id - segment.address_base])

    def tx_name(self, tx_id: int) -> str:
        """Decode an interned transaction id back to the txid string."""
        segment, row = self.tx_location(tx_id)
        return str(segment.arrays["tx_names"][row])

    def tx_location(self, tx_id: int) -> "Tuple[_Segment, int]":
        """The ``(segment, row)`` holding global transaction ``tx_id``."""
        segment = self._segment_for(tx_id, "tx_base", "tx_count")
        return segment, tx_id - segment.tx_base

    def _segment_for(self, value: int, base: str, count: str) -> _Segment:
        lo, hi = 0, len(self._segments)
        while lo < hi:
            mid = (lo + hi) // 2
            if getattr(self._segments[mid], base) <= value:
                lo = mid + 1
            else:
                hi = mid
        if lo:
            segment = self._segments[lo - 1]
            if value < getattr(segment, base) + getattr(segment, count):
                return segment
        raise ChainStoreError(
            f"id {value} is outside the mapped chain store "
            f"({self.num_transactions} transactions, "
            f"{self.num_addresses} addresses)"
        )


class StoreBackedChainIndex(ChainIndex):
    """A :class:`~repro.chain.explorer.ChainIndex` reading mapped segments.

    Drop-in for the query surface — records, columns, reconstructed
    transactions, activity series — but **read-only**: appends go
    through the writable :class:`ChainStore` (or its owner), and this
    index catches up by :meth:`remap`, re-deriving its per-address
    adjacency only for the new tail segments.  ``address_filter``
    restricts record-keeping exactly like the in-memory index (a shard
    slice is ``sharded(...)`` of a store-backed index, sharing the
    underlying maps).

    Column reads never populate the in-memory ``TxArrays`` memo — the
    mapped segments *are* the cache, so a corpus sweep's resident
    footprint stays flat at the per-address adjacency (two int64 per
    membership record) plus the shard-membership verdict cache.
    """

    def __init__(
        self,
        store: "ChainStore | str | Path",
        address_filter: Optional[Callable[[str], bool]] = None,
    ) -> None:
        """Wrap ``store`` (an open :class:`ChainStore`, or a directory
        to open read-only, which this index then owns and closes)."""
        super().__init__(address_filter=address_filter)
        self._owns_store = not isinstance(store, ChainStore)
        self._store = (
            store if isinstance(store, ChainStore) else ChainStore(store)
        )
        self._adj_addr: List[np.ndarray] = []
        self._adj_rows: List[np.ndarray] = []
        self._member_cache: Dict[int, bool] = {}
        self.remap()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def store(self) -> ChainStore:
        """The underlying (possibly shared) :class:`ChainStore`."""
        return self._store

    def remap(self) -> int:
        """Catch up with segments appended since the last remap.

        Pulls new tail segments from the store (a no-op for the writer,
        whose own appends map eagerly) and extends the per-address
        adjacency over them — O(tail edges), never a rebuild.  Returns
        the number of segments newly indexed.
        """
        self._store.remap()
        fresh = 0
        while len(self._adj_addr) < self._store.num_segments:
            self._index_segment(self._store._segments[len(self._adj_addr)])
            fresh += 1
        return fresh

    def close(self) -> None:
        """Drop the per-address adjacency (and the store itself when
        this index opened it from a directory)."""
        self._adj_addr = []
        self._adj_rows = []
        self._member_cache = {}
        if self._owns_store:
            self._store.close()

    def __getstate__(self) -> Dict:
        """Pickle as ``(directory, filter)`` — maps never cross processes."""
        return {
            "directory": str(self._store.directory),
            "address_filter": self.address_filter,
        }

    def __setstate__(self, state: Dict) -> None:
        """Reopen the store read-only and rebuild the adjacency."""
        self.__init__(state["directory"], state["address_filter"])

    # ------------------------------------------------------------------ #
    # Membership adjacency
    # ------------------------------------------------------------------ #

    def _index_segment(self, segment: _Segment) -> None:
        """Derive this index's member (address, tx-row) pairs for one
        segment: vectorized over the mapped key columns, one predicate
        call per distinct address (verdicts cached across segments)."""
        tx_count = segment.tx_count
        rows_in = np.repeat(
            np.arange(tx_count, dtype=np.int64),
            np.diff(segment.arrays["in_indptr"]),
        )
        rows_out = np.repeat(
            np.arange(tx_count, dtype=np.int64),
            np.diff(segment.arrays["out_indptr"]),
        )
        addr = np.concatenate(
            [
                np.asarray(segment.arrays["in_keys"]) >> 1,
                np.asarray(segment.arrays["out_keys"]) >> 1,
            ]
        )
        rows = np.concatenate([rows_in, rows_out])
        order = np.lexsort((rows, addr))
        addr = addr[order]
        rows = rows[order]
        if len(addr):
            keep = np.ones(len(addr), dtype=bool)
            keep[1:] = (addr[1:] != addr[:-1]) | (rows[1:] != rows[:-1])
            addr = addr[keep]
            rows = rows[keep]
        if self.address_filter is not None and len(addr):
            unique = np.unique(addr)
            verdicts = np.empty(len(unique), dtype=bool)
            for i, address_id in enumerate(unique.tolist()):
                verdict = self._member_cache.get(address_id)
                if verdict is None:
                    verdict = bool(
                        self.address_filter(
                            self._store.address_name(address_id)
                        )
                    )
                    self._member_cache[address_id] = verdict
                verdicts[i] = verdict
            member = verdicts[np.searchsorted(unique, addr)]
            addr = addr[member]
            rows = rows[member]
        self._adj_addr.append(np.ascontiguousarray(addr))
        self._adj_rows.append(np.ascontiguousarray(rows))

    def _positions_for(self, address: str) -> List[Tuple[_Segment, np.ndarray]]:
        """Per-segment member rows for ``address``, in ingestion order."""
        address_id = self._store.address_id(address)
        if address_id is None:
            return []
        out = []
        for chunk, rows, segment in zip(
            self._adj_addr, self._adj_rows, self._store._segments
        ):
            lo = int(np.searchsorted(chunk, address_id, side="left"))
            hi = int(np.searchsorted(chunk, address_id, side="right"))
            if hi > lo:
                out.append((segment, rows[lo:hi]))
        return out

    # ------------------------------------------------------------------ #
    # Read-only guards
    # ------------------------------------------------------------------ #

    def on_block(self, block: Block) -> None:
        """Unsupported: store-backed indexes are read-only.  Append the
        block to the writable :class:`ChainStore` and call
        :meth:`remap` instead."""
        raise ChainStoreError(
            "store-backed index is read-only: append blocks via "
            "ChainStore.append_block and call remap()"
        )

    def ingest_transactions(
        self, transactions: "Sequence[Tuple[Transaction, int]]"
    ) -> int:
        """Unsupported: store-backed indexes are read-only.  Append the
        tail via :meth:`ChainStore.append_transactions` and
        :meth:`remap` instead."""
        raise ChainStoreError(
            "store-backed index is read-only: append tails via "
            "ChainStore.append_transactions and call remap()"
        )

    # ------------------------------------------------------------------ #
    # Query surface (mapped-segment implementations)
    # ------------------------------------------------------------------ #

    def transaction(self, txid: str) -> Optional[Transaction]:
        """The stored transaction with ``txid`` (reconstructed — see
        :func:`~repro.chain.serialize.transaction_from_columns`), or
        ``None`` if unknown."""
        tx_id = self._store.tx_id(txid)
        if tx_id is None:
            return None
        return self._reconstruct(tx_id)

    def height_of(self, txid: str) -> Optional[int]:
        """Block height containing ``txid``, or None if unknown."""
        tx_id = self._store.tx_id(txid)
        if tx_id is None:
            return None
        segment, row = self._store.tx_location(tx_id)
        return int(segment.arrays["heights"][row])

    def records_for(self, address: str) -> Sequence[TxRecord]:
        """Chronological involvement records for ``address``."""
        positions = self._positions_for(address)
        if not positions:
            return ()
        address_key = 2 * self._store.address_id(address)
        records = []
        for segment, rows in positions:
            for row in rows.tolist():
                records.append(
                    TxRecord(
                        txid=str(segment.arrays["tx_names"][row]),
                        block_height=int(segment.arrays["heights"][row]),
                        timestamp=float(segment.arrays["timestamps"][row]),
                        net_value=self._net_value(segment, row, address_key),
                    )
                )
        return tuple(records)

    def _net_value(
        self, segment: _Segment, row: int, address_key: int
    ) -> int:
        received = spent = 0.0
        lo, hi = segment.arrays["out_indptr"][row: row + 2]
        keys = segment.arrays["out_keys"][lo:hi]
        if len(keys):
            received = float(
                segment.arrays["out_values"][lo:hi][keys == address_key].sum()
            )
        lo, hi = segment.arrays["in_indptr"][row: row + 2]
        keys = segment.arrays["in_keys"][lo:hi]
        if len(keys):
            spent = float(
                segment.arrays["in_values"][lo:hi][keys == address_key].sum()
            )
        return int(received - spent)

    def transactions_of(self, address: str) -> List[Transaction]:
        """Chronological (reconstructed) transactions touching ``address``."""
        return [
            self._reconstruct(segment.tx_base + int(row))
            for segment, rows in self._positions_for(address)
            for row in rows
        ]

    def transaction_count(self, address: str) -> int:
        """Number of transactions touching ``address``."""
        return sum(
            len(rows) for _, rows in self._positions_for(address)
        )

    def total_transactions(self) -> int:
        """Number of transactions in the mapped store (the staleness
        watermark, same monotonic contract as the in-memory index)."""
        return self._store.num_transactions

    def transactions_since(self, start: int) -> List[Tuple[Transaction, int]]:
        """``(transaction, height)`` pairs after the first ``start``, in
        ingestion order, reconstructed from the mapped columns."""
        out = []
        for segment in self._store._segments:
            first = max(start - segment.tx_base, 0)
            for row in range(first, segment.tx_count):
                out.append(
                    (
                        self._reconstruct_at(segment, row),
                        int(segment.arrays["heights"][row]),
                    )
                )
        return out

    def sharded(
        self, address_filter: Callable[[str], bool]
    ) -> "StoreBackedChainIndex":
        """A filtered view over the *same* mapped store: one shard's
        slice, holding only its own member adjacency (no copied
        transactions, no copied maps)."""
        return StoreBackedChainIndex(self._store, address_filter=address_filter)

    def known_addresses(self) -> List[str]:
        """Every address with at least one member record, ordered by
        first appearance (matching the in-memory index)."""
        first_pos: Dict[int, int] = {}
        for chunk, rows, segment in zip(
            self._adj_addr, self._adj_rows, self._store._segments
        ):
            if not len(chunk):
                continue
            heads = np.ones(len(chunk), dtype=bool)
            heads[1:] = chunk[1:] != chunk[:-1]
            for address_id, row in zip(
                chunk[heads].tolist(), rows[heads].tolist()
            ):
                first_pos.setdefault(address_id, segment.tx_base + row)
        ordered = sorted(first_pos.items(), key=lambda item: item[1])
        return [
            self._store.address_name(address_id) for address_id, _ in ordered
        ]

    def first_seen(self, address: str) -> Optional[float]:
        """Timestamp of the first member transaction touching ``address``."""
        positions = self._positions_for(address)
        if not positions:
            return None
        segment, rows = positions[0]
        return float(segment.arrays["timestamps"][rows[0]])

    def address_key(self, address: str) -> int:
        """The interned node key of ``address`` (read-only lookup —
        unlike the in-memory index, an unknown address raises instead
        of interning a fresh key)."""
        address_id = self._store.address_id(address)
        if address_id is None:
            raise ChainStoreError(
                f"address {address[:12]}… is not in the chain store "
                "(store-backed interning is read-only)"
            )
        return 2 * address_id

    def transaction_arrays(self, tx: Transaction) -> TxArrays:
        """Mapped-column :class:`TxArrays` view of a stored transaction.

        Reads straight from the segment maps (zero-copy views); nothing
        is memoised in-process, and an unstored transaction raises —
        store-backed indexes never intern."""
        tx_id = self._store.tx_id(tx.txid)
        if tx_id is None:
            raise ChainStoreError(
                f"transaction {tx.txid[:12]}… is not in the chain store "
                "(store-backed interning is read-only)"
            )
        return self._arrays_at(*self._store.tx_location(tx_id))

    def clear_transaction_arrays(self) -> None:
        """No-op: store-backed column reads are served straight from the
        maps and never populate the in-process memo."""

    def transaction_columns_of(self, address: str) -> List[TxArrays]:
        """All of ``address``'s transactions as mapped-column
        :class:`TxArrays`, sorted by ``(timestamp, txid)`` — the exact
        order :func:`~repro.graphs.extraction.slice_transactions`
        produces, ready for slicing without touching Python
        ``Transaction`` objects."""
        located = [
            (segment, int(row))
            for segment, rows in self._positions_for(address)
            for row in rows
        ]
        if not located:
            return []
        timestamps = np.array(
            [float(seg.arrays["timestamps"][row]) for seg, row in located]
        )
        txids = np.array(
            [str(seg.arrays["tx_names"][row]) for seg, row in located]
        )
        order = np.lexsort((txids, timestamps))
        return [self._arrays_at(*located[i]) for i in order.tolist()]

    def _arrays_at(self, segment: _Segment, row: int) -> TxArrays:
        in_lo, in_hi = segment.arrays["in_indptr"][row: row + 2]
        out_lo, out_hi = segment.arrays["out_indptr"][row: row + 2]
        return TxArrays(
            key=2 * (segment.tx_base + row) + 1,
            timestamp=float(segment.arrays["timestamps"][row]),
            input_keys=segment.arrays["in_keys"][in_lo:in_hi],
            input_values=segment.arrays["in_values"][in_lo:in_hi],
            output_keys=segment.arrays["out_keys"][out_lo:out_hi],
            output_values=segment.arrays["out_values"][out_lo:out_hi],
        )

    def _reconstruct(self, tx_id: int) -> Transaction:
        return self._reconstruct_at(*self._store.tx_location(tx_id))

    def _reconstruct_at(self, segment: _Segment, row: int) -> Transaction:
        arrays = segment.arrays
        in_lo, in_hi = arrays["in_indptr"][row: row + 2]
        out_lo, out_hi = arrays["out_indptr"][row: row + 2]
        decode = self._store.address_name
        return transaction_from_columns(
            txid=str(arrays["tx_names"][row]),
            timestamp=float(arrays["timestamps"][row]),
            inputs=[
                (decode(int(key) >> 1), int(value))
                for key, value in zip(
                    arrays["in_keys"][in_lo:in_hi],
                    arrays["in_values"][in_lo:in_hi],
                )
            ],
            outputs=[
                (decode(int(key) >> 1), int(value))
                for key, value in zip(
                    arrays["out_keys"][out_lo:out_hi],
                    arrays["out_values"][out_lo:out_hi],
                )
            ],
        )

    def node_names(self, keys: Sequence[int]) -> List[str]:
        """Decode interned node keys back to reference strings (even →
        address, odd → txid), reading the mapped name columns."""
        return [
            self._store.tx_name(key >> 1)
            if key & 1
            else self._store.address_name(key >> 1)
            for key in keys
        ]

    def counterparties(self, address: str) -> Set[str]:
        """Distinct addresses co-occurring in transactions with ``address``."""
        own = self._store.address_id(address)
        partner_ids: Set[int] = set()
        for segment, rows in self._positions_for(address):
            arrays = segment.arrays
            for row in rows.tolist():
                in_lo, in_hi = arrays["in_indptr"][row: row + 2]
                out_lo, out_hi = arrays["out_indptr"][row: row + 2]
                partner_ids.update(
                    (np.asarray(arrays["in_keys"][in_lo:in_hi]) >> 1).tolist()
                )
                partner_ids.update(
                    (np.asarray(arrays["out_keys"][out_lo:out_hi]) >> 1).tolist()
                )
        partner_ids.discard(own)
        return {self._store.address_name(pid) for pid in partner_ids}

    def active_addresses_by_bucket(
        self, bucket_seconds: float
    ) -> List[Tuple[float, int]]:
        """Distinct active member addresses per time bucket (Figure 1),
        computed over the mapped adjacency."""
        buckets: Dict[int, Set[int]] = {}
        for chunk, rows, segment in zip(
            self._adj_addr, self._adj_rows, self._store._segments
        ):
            times = np.asarray(segment.arrays["timestamps"])[rows]
            keys = (times // bucket_seconds).astype(np.int64)
            for address_id, bucket in zip(chunk.tolist(), keys.tolist()):
                buckets.setdefault(bucket, set()).add(address_id)
        return [
            (key * bucket_seconds, len(buckets[key])) for key in sorted(buckets)
        ]

    # ------------------------------------------------------------------ #
    # Footprint accounting
    # ------------------------------------------------------------------ #

    def resident_nbytes(self) -> int:
        """Private resident bytes held by this index: the per-address
        adjacency plus the membership-verdict cache.  Mapped column
        bytes are file-backed and shared — see
        :meth:`ChainStore.mapped_nbytes`."""
        total = sum(chunk.nbytes for chunk in self._adj_addr)
        total += sum(chunk.nbytes for chunk in self._adj_rows)
        total += sys.getsizeof(self._member_cache)
        total += 28 * 2 * len(self._member_cache)  # int key + bool value
        return total
