"""UTXO-model transactions.

A transaction consumes previously-unspent outputs (inputs reference them by
``(txid, vout)`` outpoint) and creates new outputs, each locking ``value``
satoshis to an address.  A *coinbase* transaction has no inputs and mints
the block subsidy plus fees (paper §II-A).

Values are integer satoshis (1 BTC = 100,000,000 sat) to avoid float drift
in conservation checks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from repro.errors import ValidationError

__all__ = [
    "SATOSHIS_PER_BTC",
    "OutPoint",
    "TxInput",
    "TxOutput",
    "Transaction",
    "btc",
]

SATOSHIS_PER_BTC = 100_000_000


def btc(amount: float) -> int:
    """Convert a BTC float amount to integer satoshis (rounded)."""
    return int(round(amount * SATOSHIS_PER_BTC))


@dataclass(frozen=True, order=True)
class OutPoint:
    """Reference to a transaction output: ``(txid, vout)``."""

    txid: str
    vout: int

    def __post_init__(self) -> None:
        if self.vout < 0:
            raise ValidationError(f"vout must be >= 0, got {self.vout}")


@dataclass(frozen=True)
class TxInput:
    """A transaction input spending a prior output.

    ``address`` records the owner of the spent output.  In real Bitcoin this
    is recoverable from the scriptSig; carrying it explicitly saves every
    consumer a UTXO-set lookup and is validated against the UTXO set when
    the transaction is applied.
    """

    outpoint: OutPoint
    address: str
    value: int

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValidationError(f"input value must be > 0 sat, got {self.value}")


@dataclass(frozen=True)
class TxOutput:
    """A transaction output locking ``value`` satoshis to ``address``."""

    address: str
    value: int

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValidationError(f"output value must be > 0 sat, got {self.value}")


@dataclass(frozen=True)
class Transaction:
    """An immutable transaction with a content-derived txid.

    Parameters
    ----------
    inputs:
        Spent outpoints; empty for a coinbase transaction.
    outputs:
        Created outputs; must be non-empty.
    timestamp:
        Unix seconds (simulated clock) at creation time.
    """

    inputs: Tuple[TxInput, ...]
    outputs: Tuple[TxOutput, ...]
    timestamp: float
    txid: str = field(init=False)

    def __post_init__(self) -> None:
        if not self.outputs:
            raise ValidationError("a transaction must have at least one output")
        if len(set(inp.outpoint for inp in self.inputs)) != len(self.inputs):
            raise ValidationError("a transaction may not spend an outpoint twice")
        object.__setattr__(self, "txid", self._compute_txid())

    @staticmethod
    def create(
        inputs: Iterable[TxInput],
        outputs: Iterable[TxOutput],
        timestamp: float,
    ) -> "Transaction":
        """Build a transaction from any input/output iterables."""
        return Transaction(
            inputs=tuple(inputs), outputs=tuple(outputs), timestamp=float(timestamp)
        )

    @staticmethod
    def coinbase(
        reward_address: str, value: int, timestamp: float, tag: str = ""
    ) -> "Transaction":
        """Build a coinbase transaction minting ``value`` sat to one address.

        ``tag`` disambiguates coinbases that would otherwise hash
        identically (same miner, value and timestamp in distinct blocks).
        """
        output = TxOutput(address=reward_address, value=value)
        tx = Transaction(inputs=(), outputs=(output,), timestamp=float(timestamp))
        if tag:
            object.__setattr__(tx, "txid", tx._compute_txid(extra=tag))
        return tx

    def _compute_txid(self, extra: str = "") -> str:
        hasher = hashlib.sha256()
        hasher.update(f"ts={self.timestamp!r};{extra}|".encode())
        for inp in self.inputs:
            hasher.update(
                f"in:{inp.outpoint.txid}:{inp.outpoint.vout}:"
                f"{inp.address}:{inp.value}|".encode()
            )
        for out in self.outputs:
            hasher.update(f"out:{out.address}:{out.value}|".encode())
        return hasher.hexdigest()

    @property
    def is_coinbase(self) -> bool:
        """True when the transaction mints new coins (no inputs)."""
        return len(self.inputs) == 0

    @property
    def input_value(self) -> int:
        """Total satoshis consumed (0 for a coinbase)."""
        return sum(inp.value for inp in self.inputs)

    @property
    def output_value(self) -> int:
        """Total satoshis created."""
        return sum(out.value for out in self.outputs)

    @property
    def fee(self) -> int:
        """Satoshis left to the miner (0 for a coinbase)."""
        if self.is_coinbase:
            return 0
        return self.input_value - self.output_value

    def input_addresses(self) -> List[str]:
        """Addresses on the spending side, in input order (with repeats)."""
        return [inp.address for inp in self.inputs]

    def output_addresses(self) -> List[str]:
        """Addresses on the receiving side, in output order (with repeats)."""
        return [out.address for out in self.outputs]

    def addresses(self) -> List[str]:
        """All distinct addresses touched by this transaction."""
        seen = {}
        for addr in self.input_addresses() + self.output_addresses():
            seen.setdefault(addr, None)
        return list(seen)

    def value_for(self, address: str) -> int:
        """Net satoshi flow for ``address``: outputs received minus inputs spent."""
        received = sum(out.value for out in self.outputs if out.address == address)
        spent = sum(inp.value for inp in self.inputs if inp.address == address)
        return received - spent

    def outpoint(self, vout: int) -> OutPoint:
        """The outpoint referencing this transaction's ``vout``-th output."""
        if not 0 <= vout < len(self.outputs):
            raise ValidationError(
                f"vout {vout} out of range for {len(self.outputs)} outputs"
            )
        return OutPoint(txid=self.txid, vout=vout)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "coinbase " if self.is_coinbase else ""
        return (
            f"Transaction({kind}{self.txid[:12]}…, "
            f"{len(self.inputs)} in, {len(self.outputs)} out, "
            f"{self.output_value} sat)"
        )
