"""The UTXO set: every unspent transaction output, indexed for fast queries.

The UTXO set is the substrate of the Bitcoin transaction model (paper
§II-A): wallets look through their available UTXOs to fund spends, and
validation rejects transactions whose inputs are absent (double spends or
spends of never-created outputs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Set

from repro.chain.transaction import OutPoint, Transaction
from repro.errors import InvalidTransactionError

__all__ = ["UTXOEntry", "UTXOSet"]


@dataclass(frozen=True)
class UTXOEntry:
    """An unspent output: its outpoint, owner address, value and birth time."""

    outpoint: OutPoint
    address: str
    value: int
    timestamp: float


class UTXOSet:
    """Mutable set of unspent outputs with a per-address secondary index.

    All mutation goes through :meth:`apply_transaction` /
    :meth:`unapply_transaction` so the primary map and the address index can
    never diverge.
    """

    def __init__(self) -> None:
        self._entries: Dict[OutPoint, UTXOEntry] = {}
        self._by_address: Dict[str, Set[OutPoint]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, outpoint: OutPoint) -> bool:
        return outpoint in self._entries

    def __iter__(self) -> Iterator[UTXOEntry]:
        return iter(self._entries.values())

    def get(self, outpoint: OutPoint) -> "UTXOEntry | None":
        """The entry at ``outpoint``, or None if spent/unknown."""
        return self._entries.get(outpoint)

    def entries_for(self, address: str) -> List[UTXOEntry]:
        """All unspent entries owned by ``address`` (outpoint-sorted)."""
        outpoints = self._by_address.get(address, set())
        return [self._entries[op] for op in sorted(outpoints)]

    def balance_of(self, address: str) -> int:
        """Total unspent satoshis owned by ``address``."""
        return sum(entry.value for entry in self.entries_for(address))

    def total_value(self) -> int:
        """Total satoshis across the entire set (monetary base)."""
        return sum(entry.value for entry in self._entries.values())

    def validate_transaction(self, tx: Transaction) -> None:
        """Raise :class:`InvalidTransactionError` if ``tx`` cannot apply.

        Checks: every input exists and is unspent, the recorded input
        address/value match the UTXO set, and outputs do not exceed inputs
        (no inflation) for non-coinbase transactions.
        """
        if tx.is_coinbase:
            return
        for inp in tx.inputs:
            entry = self._entries.get(inp.outpoint)
            if entry is None:
                raise InvalidTransactionError(
                    f"tx {tx.txid[:12]} spends missing/spent outpoint "
                    f"{inp.outpoint.txid[:12]}:{inp.outpoint.vout}"
                )
            if entry.address != inp.address:
                raise InvalidTransactionError(
                    f"tx {tx.txid[:12]} claims input owner {inp.address[:8]} "
                    f"but UTXO belongs to {entry.address[:8]}"
                )
            if entry.value != inp.value:
                raise InvalidTransactionError(
                    f"tx {tx.txid[:12]} claims input value {inp.value} "
                    f"but UTXO holds {entry.value}"
                )
        if tx.output_value > tx.input_value:
            raise InvalidTransactionError(
                f"tx {tx.txid[:12]} creates {tx.output_value} sat "
                f"from {tx.input_value} sat of inputs"
            )

    def apply_transaction(self, tx: Transaction) -> None:
        """Validate then apply ``tx``: remove its inputs, add its outputs."""
        self.validate_transaction(tx)
        for inp in tx.inputs:
            self._remove(inp.outpoint)
        for vout, out in enumerate(tx.outputs):
            self._add(
                UTXOEntry(
                    outpoint=OutPoint(txid=tx.txid, vout=vout),
                    address=out.address,
                    value=out.value,
                    timestamp=tx.timestamp,
                )
            )

    def unapply_transaction(self, tx: Transaction) -> None:
        """Reverse :meth:`apply_transaction` (used for mempool rollback).

        The caller must supply the same transaction that was applied; its
        recorded input addresses/values restore the consumed entries.
        """
        for vout in range(len(tx.outputs)):
            self._remove(OutPoint(txid=tx.txid, vout=vout))
        for inp in tx.inputs:
            self._add(
                UTXOEntry(
                    outpoint=inp.outpoint,
                    address=inp.address,
                    value=inp.value,
                    timestamp=tx.timestamp,
                )
            )

    def _add(self, entry: UTXOEntry) -> None:
        if entry.outpoint in self._entries:
            raise InvalidTransactionError(
                f"outpoint {entry.outpoint.txid[:12]}:{entry.outpoint.vout} "
                "already exists in the UTXO set"
            )
        self._entries[entry.outpoint] = entry
        self._by_address.setdefault(entry.address, set()).add(entry.outpoint)

    def _remove(self, outpoint: OutPoint) -> None:
        entry = self._entries.pop(outpoint, None)
        if entry is None:
            raise InvalidTransactionError(
                f"cannot remove unknown outpoint "
                f"{outpoint.txid[:12]}:{outpoint.vout}"
            )
        owners = self._by_address.get(entry.address)
        if owners is not None:
            owners.discard(outpoint)
            if not owners:
                del self._by_address[entry.address]
