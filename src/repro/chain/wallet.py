"""Wallets implementing the Bitcoin change mechanism.

Paper §II-A: "When a transaction occurs, the bitcoin wallet will zero off
the balance in the original address, and transfer any leftover funds to a
new address."  A :class:`Wallet` therefore spends *whole addresses*: coin
selection picks source addresses, consumes **all** their spendable UTXOs,
and routes any remainder to a change output — by default a freshly minted
address, optionally (``change_to_source``) back to the source address, the
variant some services use and which address-clustering heuristics exploit.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.chain.address import AddressFactory
from repro.chain.mempool import PendingView
from repro.chain.transaction import Transaction, TxInput, TxOutput
from repro.errors import InsufficientFundsError, ValidationError

__all__ = ["Wallet", "Payment"]

Payment = Tuple[str, int]  # (recipient address, satoshis)


class Wallet:
    """A key-managing wallet over a spendability view.

    Parameters
    ----------
    view:
        Where the wallet looks up its spendable outputs (confirmed UTXO
        set or a mempool-aware :class:`~repro.chain.mempool.PendingView`).
    address_factory:
        Mints this wallet's receive and change addresses.
    name:
        Optional human-readable owner tag (used by the dataset labeller).
    """

    def __init__(
        self,
        view: PendingView,
        address_factory: AddressFactory,
        name: str = "",
    ):
        self._view = view
        self._factory = address_factory
        self.name = name
        self._addresses: List[str] = []
        self._address_set: Set[str] = set()

    # ------------------------------------------------------------------ #
    # Address management
    # ------------------------------------------------------------------ #

    @property
    def addresses(self) -> Sequence[str]:
        """All addresses ever owned by this wallet, oldest first."""
        return tuple(self._addresses)

    def owns(self, address: str) -> bool:
        """True if this wallet minted ``address``."""
        return address in self._address_set

    def new_address(self) -> str:
        """Mint and register a fresh receive address."""
        address = self._factory.new_address()
        self._addresses.append(address)
        self._address_set.add(address)
        return address

    def adopt_address(self, address: str) -> str:
        """Register an externally created address as wallet-owned."""
        if address not in self._address_set:
            self._addresses.append(address)
            self._address_set.add(address)
        return address

    # ------------------------------------------------------------------ #
    # Balances
    # ------------------------------------------------------------------ #

    def balance(self) -> int:
        """Total spendable satoshis across all owned addresses."""
        return sum(self._view.balance_of(addr) for addr in self._addresses)

    def funded_addresses(self) -> List[Tuple[str, int]]:
        """``(address, balance)`` for owned addresses with spendable funds."""
        funded = []
        for address in self._addresses:
            value = self._view.balance_of(address)
            if value > 0:
                funded.append((address, value))
        return funded

    # ------------------------------------------------------------------ #
    # Spending
    # ------------------------------------------------------------------ #

    def create_transaction(
        self,
        payments: Iterable[Payment],
        timestamp: float,
        fee: int = 0,
        change_to_source: bool = False,
        source_addresses: Optional[Sequence[str]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Transaction:
        """Build a transaction paying ``payments`` plus ``fee``.

        Coin selection spends whole source addresses (largest balance
        first, or the caller-pinned ``source_addresses``) until the target
        is covered; any remainder goes to a change output.

        Raises
        ------
        InsufficientFundsError
            If the wallet's spendable balance cannot cover the spend.
        """
        payment_list = list(payments)
        if not payment_list:
            raise ValidationError("payments must be non-empty")
        if fee < 0:
            raise ValidationError(f"fee must be >= 0, got {fee}")
        target = sum(value for _, value in payment_list) + fee
        if any(value <= 0 for _, value in payment_list):
            raise ValidationError("payment values must be > 0")

        inputs, total_in, change_source = self._select_inputs(
            target, source_addresses
        )
        outputs = [TxOutput(address=addr, value=value) for addr, value in payment_list]
        change = total_in - target
        if change > 0:
            if change_to_source:
                change_address = change_source
            else:
                change_address = self.new_address()
            outputs.append(TxOutput(address=change_address, value=change))
        return Transaction.create(inputs=inputs, outputs=outputs, timestamp=timestamp)

    def _select_inputs(
        self,
        target: int,
        source_addresses: Optional[Sequence[str]],
    ) -> Tuple[List[TxInput], int, str]:
        """Select whole-address inputs worth at least ``target`` satoshis.

        Returns ``(inputs, total_value, first_source_address)``.
        """
        if source_addresses is not None:
            candidates = [
                (addr, self._view.balance_of(addr)) for addr in source_addresses
            ]
            candidates = [(addr, bal) for addr, bal in candidates if bal > 0]
        else:
            funded = self.funded_addresses()
            candidates = sorted(funded, key=lambda item: (-item[1], item[0]))

        inputs: List[TxInput] = []
        total = 0
        first_source = ""
        for address, _balance in candidates:
            for entry in self._view.entries_for(address):
                inputs.append(
                    TxInput(
                        outpoint=entry.outpoint,
                        address=entry.address,
                        value=entry.value,
                    )
                )
                total += entry.value
            if not first_source:
                first_source = address
            if total >= target:
                break
        if total < target:
            raise InsufficientFundsError(
                f"wallet {self.name or '<anon>'} needs {target} sat "
                f"but only {total} sat spendable"
            )
        return inputs, total, first_source

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Wallet(name={self.name!r}, addresses={len(self._addresses)}, "
            f"balance={self.balance()})"
        )
