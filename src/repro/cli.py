"""Command-line interface: simulate worlds, train, evaluate, classify.

Usage::

    python -m repro simulate --seed 7 --blocks 200 --out world_dir
    python -m repro train    --world world_dir --out model_dir
    python -m repro evaluate --world world_dir --model model_dir
    python -m repro classify --world world_dir --model model_dir ADDR [ADDR...]

``simulate`` persists the chain and label maps; ``train``/``evaluate``
work from a persisted world, so the expensive simulation runs once.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro.chain.serialize import load_world_chain, save_world
from repro.core import BAClassifier, BAClassifierConfig
from repro.datagen import CLASS_NAMES, WorldConfig, generate_world
from repro.eval import classification_report

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BAClassifier: bitcoin address behavior classification",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate a world and persist it")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--blocks", type=int, default=200)
    sim.add_argument("--retail", type=int, default=80)
    sim.add_argument("--out", required=True, help="output directory")

    train = sub.add_parser("train", help="train BAClassifier on a world")
    train.add_argument("--world", required=True)
    train.add_argument("--out", required=True, help="model directory")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--slice-size", type=int, default=40)
    train.add_argument("--gnn-epochs", type=int, default=15)
    train.add_argument("--head-epochs", type=int, default=25)
    train.add_argument("--min-transactions", type=int, default=5)
    train.add_argument("--test-fraction", type=float, default=0.2)

    evaluate = sub.add_parser("evaluate", help="evaluate a trained model")
    evaluate.add_argument("--world", required=True)
    evaluate.add_argument("--model", required=True)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--min-transactions", type=int, default=5)
    evaluate.add_argument("--test-fraction", type=float, default=0.2)

    classify = sub.add_parser("classify", help="classify specific addresses")
    classify.add_argument("--world", required=True)
    classify.add_argument("--model", required=True)
    classify.add_argument("addresses", nargs="+")

    score = sub.add_parser(
        "score", help="score addresses via the caching scoring service"
    )
    score.add_argument("--world", required=True)
    score.add_argument("--model", required=True)
    score.add_argument("--workers", type=int, default=0,
                       help="construction workers: threads for the "
                            "single service, processes with --shards "
                            "(0 = inline)")
    score.add_argument("--shards", type=int, default=0,
                       help="shard the scoring service into N shards "
                            "via ClusterScoringService (0 = unsharded)")
    score.add_argument("--warm-dir", default=None,
                       help="warm-cache store directory: load before "
                            "scoring, save after (keyed by pipeline "
                            "fingerprint + model version)")
    score.add_argument("--store-dir", default=None,
                       help="memory-mapped chain store directory "
                            "(cluster mode only): shards read columns "
                            "from mapped segments instead of deep-"
                            "copied indexes; created/extended on use")
    score.add_argument("--cache-capacity", type=int, default=4096,
                       help="slice-cache entries (per shard when "
                            "--shards > 0)")
    score.add_argument("--stats", action="store_true",
                       help="print cache statistics after scoring")
    score.add_argument("--stats-json", default=None, metavar="PATH",
                       help="write the repro.obs metrics snapshot of "
                            "the run to PATH as JSON")
    score.add_argument("--trace-jsonl", default=None, metavar="PATH",
                       help="write the request traces of the run to "
                            "PATH as JSON lines (one trace per line)")
    score.add_argument("addresses", nargs="+")

    stats = sub.add_parser(
        "stats",
        help="render a repro.obs metrics snapshot (from --stats-json)",
    )
    stats.add_argument("--input", required=True,
                       help="snapshot JSON written by score --stats-json")
    stats.add_argument("--format", choices=("json", "prometheus"),
                       default="prometheus",
                       help="output rendering (default: prometheus text)")

    lint = sub.add_parser(
        "lint",
        help="run the AST invariant linter (repro.analysis) over the tree",
    )
    lint.add_argument("paths", nargs="*", default=None,
                      help="files/directories to lint (default: src)")
    lint.add_argument("--baseline", default=None,
                      help="baseline JSON of grandfathered findings "
                           "(default: scripts/lint_baseline.json when "
                           "present)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="write current findings to the baseline file "
                           "with TODO justifications, then exit")
    lint.add_argument("--list-rules", action="store_true",
                      help="print every registered rule and its scope")
    return parser


def _split_from_world(directory: str, min_transactions: int,
                      test_fraction: float, seed: int):
    from repro.datagen.dataset import LabeledAddressDataset

    _, index, labels, _ = load_world_chain(directory)
    eligible = [
        (address, label)
        for address, label in labels.items()
        if index.transaction_count(address) >= min_transactions
    ]
    dataset = LabeledAddressDataset(
        addresses=tuple(a for a, _ in eligible),
        labels=np.array([l for _, l in eligible], dtype=np.int64),
    )
    train, test = dataset.split(test_fraction=test_fraction, seed=seed)
    return index, train, test


def _cmd_simulate(args) -> int:
    config = WorldConfig(
        seed=args.seed, num_blocks=args.blocks, num_retail=args.retail
    )
    print(f"Simulating {args.blocks} blocks (seed {args.seed}) ...")
    world = generate_world(config)
    save_world(world, args.out)
    counts = world.class_counts(min_transactions=1)
    print(
        f"Saved to {args.out}: height={world.chain.height}, "
        f"txs={world.chain.transaction_count():,}, labels="
        + ", ".join(f"{CLASS_NAMES[k]}={v}" for k, v in counts.items())
    )
    return 0


def _cmd_train(args) -> int:
    index, train, _ = _split_from_world(
        args.world, args.min_transactions, args.test_fraction, args.seed
    )
    print(f"Training on {len(train)} addresses ...")
    classifier = BAClassifier(
        BAClassifierConfig(
            slice_size=args.slice_size,
            gnn_epochs=args.gnn_epochs,
            head_epochs=args.head_epochs,
            head_learning_rate=3e-3,
            seed=args.seed,
        )
    )
    classifier.fit(train.addresses, train.labels, index)
    classifier.save(args.out)
    print(f"Model saved to {args.out}")
    return 0


def _cmd_evaluate(args) -> int:
    index, _, test = _split_from_world(
        args.world, args.min_transactions, args.test_fraction, args.seed
    )
    classifier = BAClassifier.load(args.model)
    print(f"Evaluating on {len(test)} held-out addresses ...")
    predictions = classifier.predict(test.addresses, index)
    print(classification_report(test.labels, predictions, class_names=CLASS_NAMES))
    return 0


def _cmd_classify(args) -> int:
    _, index, _, _ = load_world_chain(args.world)
    classifier = BAClassifier.load(args.model)
    known = [a for a in args.addresses if index.transaction_count(a) > 0]
    unknown = [a for a in args.addresses if index.transaction_count(a) == 0]
    for address in unknown:
        print(f"{address}  <no transactions on chain>")
    if known:
        predictions = classifier.predict(known, index)
        for address, label in zip(known, predictions):
            print(f"{address}  {CLASS_NAMES[label]}")
    return 0


def _cmd_score(args) -> int:
    from repro.serve import (
        AddressScoringService,
        ClusterConfig,
        ClusterScoringService,
        ScoringServiceConfig,
    )

    if args.store_dir and args.shards <= 0:
        print("error: --store-dir requires --shards > 0 "
              "(the chain store backs cluster shards)",
              file=sys.stderr)
        return 2
    chain, index, _, _ = load_world_chain(args.world)
    classifier = BAClassifier.load(args.model)
    if args.shards > 0:
        service = ClusterScoringService(
            classifier,
            index,
            chain=chain,
            config=ClusterConfig(
                num_shards=args.shards,
                num_workers=args.workers,
                cache_capacity=args.cache_capacity,
                store_dir=args.store_dir,
            ),
            class_names=CLASS_NAMES,
        )
    else:
        service = AddressScoringService(
            classifier,
            index,
            chain=chain,
            config=ScoringServiceConfig(
                cache_capacity=args.cache_capacity,
                max_workers=args.workers,
            ),
            class_names=CLASS_NAMES,
        )
    if args.warm_dir:
        restored = service.load_warm(args.warm_dir)
        print(f"warm store: restored {restored} cached slice graphs")
    known = [a for a in args.addresses if index.transaction_count(a) > 0]
    unknown = [a for a in args.addresses if index.transaction_count(a) == 0]
    for address in unknown:
        print(f"{address}  <no transactions on chain>")
    if known:
        scores = service.score(known)
        for address in known:
            result = scores[address]
            distribution = " ".join(
                f"{p:.3f}" for p in result.probabilities
            )
            print(f"{address}  {result.class_name}  [{distribution}]")
    if args.warm_dir:
        service.save_warm(args.warm_dir)
        print(f"warm store: saved to {args.warm_dir}")
    if args.stats:
        stats = service.stats
        print(
            f"cache: hits={stats.hits} misses={stats.misses} "
            f"evictions={stats.evictions} "
            f"invalidations={stats.invalidations} "
            f"hit_rate={stats.hit_rate:.2%}"
        )
        if args.shards > 0:
            for row in service.shard_stats():
                print(
                    "  shard {shard}: entries={entries} "
                    "nbytes={nbytes} hits={hits} misses={misses}".format(
                        **row
                    )
                )
    if args.stats_json:
        from repro import obs
        from repro.obs import render_json

        with open(args.stats_json, "w", encoding="utf-8") as handle:
            handle.write(render_json(obs.snapshot()))
            handle.write("\n")
        print(f"stats: snapshot written to {args.stats_json}")
    if args.trace_jsonl:
        from repro import obs

        count = obs.export_trace_jsonl(args.trace_jsonl)
        print(f"traces: {count} written to {args.trace_jsonl}")
    service.close()
    return 0


def _cmd_stats(args) -> int:
    from repro.obs import render_json, render_prometheus

    with open(args.input, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if args.format == "json":
        sys.stdout.write(render_json(snapshot))
        sys.stdout.write("\n")
    else:
        sys.stdout.write(render_prometheus(snapshot))
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.engine import run_lint

    return run_lint(args)


_COMMANDS = {
    "simulate": _cmd_simulate,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "classify": _cmd_classify,
    "score": _cmd_score,
    "stats": _cmd_stats,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
