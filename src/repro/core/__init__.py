"""The end-to-end BAClassifier pipeline."""

from repro.core.baclassifier import BAClassifier
from repro.core.config import BAClassifierConfig
from repro.core.embedding import embedding_sequences
from repro.core.refinement import (
    neighbor_label_distribution,
    refine_with_neighbor_labels,
)

__all__ = [
    "BAClassifier",
    "BAClassifierConfig",
    "embedding_sequences",
    "neighbor_label_distribution",
    "refine_with_neighbor_labels",
]
