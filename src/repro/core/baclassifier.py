"""BAClassifier — the paper's end-to-end address behaviour classifier.

``fit`` runs the full three-stage pipeline on labelled addresses:

1. **Address graph construction**: slice each address's transaction
   history and build compressed, augmented graphs
   (:mod:`repro.graphs.pipeline`).
2. **Graph representation learning**: train a GFN on slice graphs
   (graph label = address label) and harvest pre-classifier embeddings.
3. **Address classification**: train an LSTM+MLP head on each address's
   embedding sequence (Eq. 22).

``predict`` replays stages 1–2 with the frozen encoder and applies the
trained head.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chain.explorer import ChainIndex
from repro.core.config import BAClassifierConfig
from repro.core.embedding import embedding_sequences
from repro.errors import NotFittedError, ValidationError
from repro.eval.curves import TrainingCurve
from repro.gnn.data import EncodedGraph, encode_sequences
from repro.gnn.gfn import GFN
from repro.gnn.training import fit_graph_classifier
from repro.graphs.model import NODE_FEATURE_DIM
from repro.graphs.pipeline import GraphConstructionPipeline
from repro.nn.serialize import load_module, save_module
from repro.seqmodels.heads import build_head
from repro.seqmodels.trainer import (
    fit_sequence_classifier,
    predict_proba_sequences,
    predict_sequences,
)
from repro.utils.rng import SeedSequenceFactory

__all__ = ["BAClassifier"]

_CONFIG_FILE = "config.json"
_ENCODER_FILE = "encoder.json"
_HEAD_FILE = "head.json"


class BAClassifier:
    """Bitcoin address behaviour classifier (graph NN + LSTM head)."""

    def __init__(self, config: Optional[BAClassifierConfig] = None):
        self.config = config or BAClassifierConfig()
        self._seeds = SeedSequenceFactory(self.config.seed)
        self.pipeline = GraphConstructionPipeline(self.config.pipeline_config())
        self.encoder = GFN(
            input_dim=NODE_FEATURE_DIM,
            num_classes=self.config.num_classes,
            hidden_dim=self.config.gnn_hidden_dim,
            k=self.config.gfn_k,
            rng=self._seeds.generator("encoder"),
        )
        self.head = build_head(
            self.config.head_name,
            input_dim=self.encoder.embedding_dim,
            num_classes=self.config.num_classes,
            hidden_dim=self.config.head_hidden_dim,
            rng=self._seeds.generator("head"),
        )
        self._fitted = False
        self.encoder_curve: Optional[TrainingCurve] = None
        self.head_curve: Optional[TrainingCurve] = None

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    def fit(
        self,
        addresses: Sequence[str],
        labels: Sequence[int],
        index: ChainIndex,
        eval_addresses: Optional[Sequence[str]] = None,
        eval_labels: Optional[Sequence[int]] = None,
    ) -> "BAClassifier":
        """Run the full training pipeline on labelled addresses.

        Passing an evaluation split records per-epoch F1 curves on both
        stages (``encoder_curve`` / ``head_curve``).
        """
        addresses = list(addresses)
        labels = np.asarray(labels, dtype=np.int64)
        if len(addresses) != len(labels):
            raise ValidationError("addresses and labels must align")
        if len(addresses) == 0:
            raise ValidationError("fit needs at least one address")

        encoded = self._encode(index, addresses, dict(zip(addresses, labels)))
        train_graphs = [g for address in addresses for g in encoded[address]]

        eval_graphs: Optional[List[EncodedGraph]] = None
        eval_encoded: Optional[Dict[str, List[EncodedGraph]]] = None
        if eval_addresses is not None and eval_labels is not None:
            eval_addresses = list(eval_addresses)
            eval_label_map = dict(zip(eval_addresses, np.asarray(eval_labels)))
            eval_encoded = self._encode(index, eval_addresses, eval_label_map)
            eval_graphs = [g for a in eval_addresses for g in eval_encoded[a]]

        self.encoder_curve = fit_graph_classifier(
            self.encoder,
            train_graphs,
            self.config.gnn_training_config(),
            eval_graphs=eval_graphs,
            curve_name="GFN",
        )

        sequences = embedding_sequences(self.encoder, encoded, addresses)
        eval_sequences = None
        if eval_encoded is not None:
            eval_sequences = embedding_sequences(
                self.encoder, eval_encoded, list(eval_encoded)
            )
            eval_labels_arr = np.asarray(
                [eval_label_map[a] for a in eval_encoded], dtype=np.int64
            )
        else:
            eval_labels_arr = None
        self._fit_head_with_restarts(
            sequences, labels, eval_sequences, eval_labels_arr
        )
        self._fitted = True
        return self

    def _fit_head_with_restarts(
        self,
        sequences,
        labels: np.ndarray,
        eval_sequences,
        eval_labels,
    ) -> None:
        """Train the head ``head_restarts`` times; keep the best by
        training-set weighted F1.

        The LSTM head occasionally lands in a collapsed optimum (one class
        absorbed into a neighbour); restarts with fresh initialisation are
        the standard remedy and are cheap relative to graph construction.
        """
        from repro.eval.metrics import precision_recall_f1

        best_f1 = -1.0
        best_state = None
        best_curve = None
        base_config = self.config.head_training_config()
        for restart in range(self.config.head_restarts):
            head = build_head(
                self.config.head_name,
                input_dim=self.encoder.embedding_dim,
                num_classes=self.config.num_classes,
                hidden_dim=self.config.head_hidden_dim,
                rng=self._seeds.generator(f"head/{restart}"),
            )
            config = dataclasses.replace(
                base_config, seed=self._seeds.seed(f"head-train/{restart}")
            )
            curve = fit_sequence_classifier(
                head,
                sequences,
                labels,
                config,
                eval_sequences=eval_sequences,
                eval_labels=eval_labels,
                curve_name=self.config.head_name,
            )
            train_predictions = predict_sequences(
                head, sequences, self.config.max_sequence_length
            )
            train_f1 = precision_recall_f1(
                labels, train_predictions, num_classes=self.config.num_classes
            ).weighted_f1
            if train_f1 > best_f1:
                best_f1 = train_f1
                best_state = head.state_dict()
                best_curve = curve
        self.head.load_state_dict(best_state)
        self.head_curve = best_curve

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #

    def predict(self, addresses: Sequence[str], index: ChainIndex) -> np.ndarray:
        """Predicted class per address."""
        sequences = self.embed(addresses, index)
        return predict_sequences(
            self.head, sequences, self.config.max_sequence_length
        )

    def predict_proba(
        self, addresses: Sequence[str], index: ChainIndex
    ) -> np.ndarray:
        """Class-probability matrix ``(len(addresses), num_classes)``."""
        sequences = self.embed(addresses, index)
        return predict_proba_sequences(
            self.head, sequences, self.config.max_sequence_length
        )

    def classify_address(self, address: str, index: ChainIndex) -> int:
        """Predicted class of a single address."""
        return int(self.predict([address], index)[0])

    def embed(
        self, addresses: Sequence[str], index: ChainIndex
    ) -> List[np.ndarray]:
        """Per-address embedding sequences under the trained encoder."""
        self._require_fitted()
        addresses = list(addresses)
        encoded = self._encode(index, addresses, {})
        return embedding_sequences(self.encoder, encoded, addresses)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, directory: "str | Path") -> None:
        """Persist config plus both model stages to ``directory``."""
        self._require_fitted()
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        (path / _CONFIG_FILE).write_text(
            json.dumps(dataclasses.asdict(self.config), indent=2)
        )
        save_module(self.encoder, path / _ENCODER_FILE)
        save_module(self.head, path / _HEAD_FILE)

    @classmethod
    def load(cls, directory: "str | Path") -> "BAClassifier":
        """Restore a classifier saved with :meth:`save`."""
        path = Path(directory)
        config = BAClassifierConfig(
            **json.loads((path / _CONFIG_FILE).read_text())
        )
        model = cls(config)
        load_module(model.encoder, path / _ENCODER_FILE)
        load_module(model.head, path / _HEAD_FILE)
        model._fitted = True
        return model

    @property
    def is_fitted(self) -> bool:
        """Whether the classifier has been fitted (or loaded)."""
        return self._fitted

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _encode(
        self,
        index: ChainIndex,
        addresses: Sequence[str],
        label_map: Dict[str, int],
    ) -> Dict[str, List[EncodedGraph]]:
        graphs_by_address = self.pipeline.build_many(index, addresses)
        return encode_sequences(graphs_by_address, label_map)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                "BAClassifier must be fitted (or loaded) before inference"
            )
