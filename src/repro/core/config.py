"""End-to-end configuration of the BAClassifier pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ValidationError
from repro.gnn.training import GraphTrainingConfig
from repro.graphs.pipeline import GraphPipelineConfig
from repro.seqmodels.trainer import SequenceTrainingConfig

__all__ = ["BAClassifierConfig"]


@dataclass(frozen=True)
class BAClassifierConfig:
    """All knobs of the three-stage pipeline.

    Graph construction (paper defaults: 100-transaction slices, Ψ/σ
    compression), GFN representation learning (hidden width, propagation
    depth k, epochs), and the sequence head (LSTM+MLP by default, as
    selected in Table III).
    """

    num_classes: int = 4
    # Stage 1-4: graph construction
    slice_size: int = 100
    psi: float = 0.6
    sigma: int = 2
    enable_single_compression: bool = True
    enable_multi_compression: bool = True
    enable_augmentation: bool = True
    # Stage: graph representation learning (GFN)
    gnn_hidden_dim: int = 64
    gfn_k: int = 2
    gnn_epochs: int = 15
    gnn_batch_size: int = 32
    gnn_learning_rate: float = 1e-3
    # Stage: address classification
    head_name: str = "lstm"
    head_hidden_dim: int = 64
    head_epochs: int = 25
    head_batch_size: int = 32
    head_learning_rate: float = 1e-3
    head_restarts: int = 2
    max_sequence_length: Optional[int] = 32
    # Shared
    seed: int = 0
    class_weighted: bool = True

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValidationError(
                f"num_classes must be >= 2, got {self.num_classes}"
            )
        if self.head_restarts < 1:
            raise ValidationError(
                f"head_restarts must be >= 1, got {self.head_restarts}"
            )

    def pipeline_config(self) -> GraphPipelineConfig:
        """The graph-construction sub-configuration."""
        return GraphPipelineConfig(
            slice_size=self.slice_size,
            psi=self.psi,
            sigma=self.sigma,
            enable_single_compression=self.enable_single_compression,
            enable_multi_compression=self.enable_multi_compression,
            enable_augmentation=self.enable_augmentation,
        )

    def gnn_training_config(self) -> GraphTrainingConfig:
        """The graph-representation training sub-configuration."""
        return GraphTrainingConfig(
            epochs=self.gnn_epochs,
            batch_size=self.gnn_batch_size,
            learning_rate=self.gnn_learning_rate,
            seed=self.seed,
            class_weighted=self.class_weighted,
        )

    def head_training_config(self) -> SequenceTrainingConfig:
        """The address-classification training sub-configuration."""
        return SequenceTrainingConfig(
            epochs=self.head_epochs,
            batch_size=self.head_batch_size,
            learning_rate=self.head_learning_rate,
            seed=self.seed,
            class_weighted=self.class_weighted,
            max_sequence_length=self.max_sequence_length,
        )
