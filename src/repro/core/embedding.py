"""Per-address embedding sequences from a trained graph encoder."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.gnn.base import GraphClassifier
from repro.gnn.data import EncodedGraph

__all__ = ["embedding_sequences"]


def embedding_sequences(
    encoder: GraphClassifier,
    encoded_by_address: Dict[str, List[EncodedGraph]],
    addresses: Sequence[str],
) -> List[np.ndarray]:
    """One ``(k_i, D)`` embedding sequence per address, slice-ordered.

    The address's slice graphs are embedded with the trained encoder; the
    resulting row sequence is the input to the paper's LSTM stage.
    """
    sequences: List[np.ndarray] = []
    for address in addresses:
        graphs = encoded_by_address.get(address)
        if not graphs:
            raise ValidationError(
                f"no encoded graphs available for address {address[:12]}"
            )
        ordered = sorted(graphs, key=lambda g: g.slice_index)
        sequences.append(encoder.embed_graphs(ordered))
    return sequences
