"""Neighbour-label refinement — the paper's second future-work direction.

§V: "our model only utilizes the topology of the current node ... which
does not take account into the label information of other nodes.  In
real-world scenarios, nodes of the same type often cluster together.  The
accuracy of the classification model can usually be improved by analyzing
the types of connected nodes."

:func:`refine_with_neighbor_labels` blends a classifier's per-address
probability estimates with the empirical label distribution of each
address's *known-label* counterparties (e.g. the training set), i.e. one
step of anchored label propagation over the transaction graph.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.chain.explorer import ChainIndex
from repro.errors import ValidationError

__all__ = ["neighbor_label_distribution", "refine_with_neighbor_labels"]


def neighbor_label_distribution(
    index: ChainIndex,
    address: str,
    anchor_labels: Dict[str, int],
    num_classes: int,
) -> "np.ndarray | None":
    """Label histogram of an address's labelled counterparties.

    Returns a normalised distribution over classes, or None when no
    counterparty has a known label.
    """
    counts = np.zeros(num_classes, dtype=np.float64)
    for neighbor in index.counterparties(address):
        label = anchor_labels.get(neighbor)
        if label is not None and 0 <= label < num_classes:
            counts[label] += 1.0
    total = counts.sum()
    if total == 0.0:
        return None
    return counts / total


def refine_with_neighbor_labels(
    probabilities: np.ndarray,
    addresses: Sequence[str],
    index: ChainIndex,
    anchor_labels: Dict[str, int],
    alpha: float = 0.25,
) -> np.ndarray:
    """Blend model probabilities with neighbour-label evidence.

    ``refined = (1 − α)·model + α·neighbour_distribution`` for addresses
    with labelled counterparties; others keep the model's estimate.

    Parameters
    ----------
    probabilities:
        Model output, shape ``(len(addresses), num_classes)``.
    anchor_labels:
        Known labels (typically the training set) used as propagation
        anchors.
    alpha:
        Neighbour-evidence weight in [0, 1].

    Returns
    -------
    numpy.ndarray
        Refined probability matrix of the same shape (rows sum to 1).
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.ndim != 2 or probabilities.shape[0] != len(addresses):
        raise ValidationError(
            f"probabilities shape {probabilities.shape} does not match "
            f"{len(addresses)} addresses"
        )
    if not 0.0 <= alpha <= 1.0:
        raise ValidationError(f"alpha must be in [0, 1], got {alpha}")
    num_classes = probabilities.shape[1]
    refined = probabilities.copy()
    for row, address in enumerate(addresses):
        neighbors = neighbor_label_distribution(
            index, address, anchor_labels, num_classes
        )
        if neighbors is not None:
            refined[row] = (1.0 - alpha) * refined[row] + alpha * neighbors
    row_sums = refined.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0] = 1.0
    return refined / row_sums
