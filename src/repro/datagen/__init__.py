"""Behaviour-driven workload generation for the four address classes.

This package substitutes for the paper's crawled 2.1 M-address corpus:
actors with the on-chain signatures of exchanges, mining pools, gambling
sites and services (mixer / custodial wallet / lending) transact on the
simulated chain, and the resulting addresses carry ground-truth labels.
"""

from repro.datagen.actor import (
    Actor,
    AddressLabel,
    CLASS_NAMES,
    LabeledActor,
    WorldContext,
)
from repro.datagen.dataset import (
    LabeledAddressDataset,
    build_dataset,
    build_fine_grained_dataset,
    stratified_sample,
    stratified_split,
)
from repro.datagen.exchange import ExchangeActor
from repro.datagen.gambling import Bet, GamblerActor, GamblingHouseActor
from repro.datagen.mining import MinerMemberActor, MiningPoolActor
from repro.datagen.retail import FaucetActor, RetailActor
from repro.datagen.service import (
    LendingActor,
    MixerActor,
    MixOrder,
    WalletServiceActor,
)
from repro.datagen.simulator import World, WorldConfig, WorldSimulator, generate_world

__all__ = [
    "Actor",
    "AddressLabel",
    "CLASS_NAMES",
    "LabeledActor",
    "WorldContext",
    "LabeledAddressDataset",
    "build_dataset",
    "build_fine_grained_dataset",
    "stratified_sample",
    "stratified_split",
    "ExchangeActor",
    "Bet",
    "GamblerActor",
    "GamblingHouseActor",
    "MinerMemberActor",
    "MiningPoolActor",
    "FaucetActor",
    "RetailActor",
    "LendingActor",
    "MixerActor",
    "MixOrder",
    "WalletServiceActor",
    "World",
    "WorldConfig",
    "WorldSimulator",
    "generate_world",
]
