"""Actor framework for the behaviour-driven workload generator.

Each labelled behaviour class in the paper's dataset (Table I) is produced
by an *actor*: a stateful process owning a wallet that emits transactions
with the class's characteristic topology, value distribution and cadence.
Actors run inside the :class:`~repro.datagen.simulator.WorldSimulator`,
which advances a block clock and mines their submitted transactions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from repro.chain.mempool import Mempool
from repro.chain.transaction import Transaction
from repro.chain.wallet import Wallet
from repro.errors import InsufficientFundsError, InvalidTransactionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chain.chain import Blockchain
    from repro.chain.explorer import ChainIndex

__all__ = ["AddressLabel", "CLASS_NAMES", "WorldContext", "Actor", "LabeledActor"]


class AddressLabel(IntEnum):
    """The four behaviour classes of the paper's dataset (Table I)."""

    EXCHANGE = 0
    MINING = 1
    GAMBLING = 2
    SERVICE = 3


CLASS_NAMES = ("Exchange", "Mining", "Gambling", "Service")


@dataclass
class WorldContext:
    """Shared state actors read and write during a simulation step.

    The ``bulletin`` dict is the simulator's off-chain side channel: the
    website databases (exchange deposit books, gambling bet queues, mixer
    orders) that coordinate real-world services.  Only transactions reach
    the chain; the bulletin never leaks into features.
    """

    chain: "Blockchain"
    index: "ChainIndex"
    mempool: Mempool
    now: float = 0.0
    height: int = 0
    bulletin: Dict[str, object] = field(default_factory=dict)

    def submit(self, tx: Transaction) -> bool:
        """Submit ``tx`` to the mempool; False if it was rejected."""
        try:
            self.mempool.submit(tx)
        except InvalidTransactionError:
            # The only rejection Mempool.submit issues (double spend,
            # unknown outpoint, coinbase, overspend); anything else
            # would be a simulator bug worth crashing on.
            return False
        return True


class Actor(abc.ABC):
    """A transaction-emitting participant in the simulated economy.

    Parameters
    ----------
    name:
        Unique identifier, also used to derive the actor's random stream.
    wallet:
        The actor's wallet (addresses it controls).
    rng:
        This actor's private random generator.
    active_from:
        Simulated timestamp before which the actor does nothing — used to
        model staggered adoption (Figure 1's growth curve).
    """

    def __init__(
        self,
        name: str,
        wallet: Wallet,
        rng: np.random.Generator,
        active_from: float = 0.0,
    ):
        self.name = name
        self.wallet = wallet
        self.rng = rng
        self.active_from = active_from

    def step(self, ctx: WorldContext) -> None:
        """Run one simulation tick (no-op before ``active_from``)."""
        if ctx.now < self.active_from:
            return
        self.on_step(ctx)

    @abc.abstractmethod
    def on_step(self, ctx: WorldContext) -> None:
        """Actor-specific behaviour for one tick."""

    # ------------------------------------------------------------------ #
    # Helpers shared by concrete actors
    # ------------------------------------------------------------------ #

    def try_pay(
        self,
        ctx: WorldContext,
        payments: List,
        fee: int,
        change_to_source: bool = False,
        source_addresses: Optional[List[str]] = None,
    ) -> Optional[Transaction]:
        """Create and submit a payment; None if unaffordable or rejected."""
        try:
            tx = self.wallet.create_transaction(
                payments,
                timestamp=ctx.now,
                fee=fee,
                change_to_source=change_to_source,
                source_addresses=source_addresses,
            )
        except InsufficientFundsError:
            return None
        if not ctx.submit(tx):
            return None
        return tx

    def lognormal_sats(self, mean_btc: float, sigma: float = 1.0) -> int:
        """A lognormal satoshi amount with the given BTC-scale median."""
        from repro.chain.transaction import btc

        amount = float(self.rng.lognormal(mean=np.log(mean_btc), sigma=sigma))
        return max(1_000, btc(amount))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class LabeledActor(Actor):
    """An actor whose addresses carry a ground-truth behaviour label."""

    label: AddressLabel

    def labeled_addresses(self) -> List[str]:
        """Addresses of this actor that should enter the labelled dataset.

        Default: every address the actor's wallet ever owned.  Subclasses
        narrow this (e.g. an exchange labels hot/cold/deposit addresses
        but a mixer labels only its intake addresses).
        """
        return list(self.wallet.addresses)

    def fine_labeled_addresses(self) -> List[tuple]:
        """``(address, fine_label)`` pairs for fine-grained classification.

        Implements the paper's first future-work direction ("we will
        expand the number of categories based on the address behavior,
        such as exchange cold wallets, exchange hot wallets...").  The
        default tags every labelled address with the coarse class name;
        subclasses refine to sub-behaviours.
        """
        from repro.datagen.actor import CLASS_NAMES as _NAMES

        coarse = _NAMES[self.label].lower()
        return [(address, coarse) for address in self.labeled_addresses()]
