"""Labelled dataset assembly: filtering, stratified sampling and splits.

Mirrors the paper's protocol (§IV-B): the full world plays the role of the
2.1 M-address corpus; experiments draw a stratified sample and split it
80/20 into train and test sets by label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.actor import CLASS_NAMES, AddressLabel
from repro.datagen.simulator import World
from repro.errors import ValidationError
from repro.utils.rng import as_generator

__all__ = [
    "LabeledAddressDataset",
    "build_dataset",
    "stratified_split",
    "stratified_sample",
]


@dataclass(frozen=True)
class LabeledAddressDataset:
    """Parallel arrays of addresses and integer labels."""

    addresses: Tuple[str, ...]
    labels: np.ndarray  # int64, aligned with addresses

    def __post_init__(self) -> None:
        if len(self.addresses) != len(self.labels):
            raise ValidationError("addresses and labels must be the same length")

    def __len__(self) -> int:
        return len(self.addresses)

    def class_counts(self) -> Dict[str, int]:
        """Address count per class name, in label order."""
        counts = {}
        for label in AddressLabel:
            counts[CLASS_NAMES[label]] = int(np.sum(self.labels == int(label)))
        return counts

    def subset(self, indices: Sequence[int]) -> "LabeledAddressDataset":
        """A new dataset restricted to ``indices`` (order preserved)."""
        idx = np.asarray(indices, dtype=np.int64)
        return LabeledAddressDataset(
            addresses=tuple(self.addresses[i] for i in idx),
            labels=self.labels[idx].copy(),
        )

    def split(
        self, test_fraction: float = 0.2, seed: int = 0
    ) -> Tuple["LabeledAddressDataset", "LabeledAddressDataset"]:
        """Stratified train/test split (paper uses 80/20)."""
        train_idx, test_idx = stratified_split(
            self.labels, test_fraction=test_fraction, rng=seed
        )
        return self.subset(train_idx), self.subset(test_idx)

    def sample(
        self, per_class: int, seed: int = 0
    ) -> "LabeledAddressDataset":
        """Stratified sample of up to ``per_class`` addresses per class."""
        idx = stratified_sample(self.labels, per_class=per_class, rng=seed)
        return self.subset(idx)


def build_dataset(
    world: World,
    min_transactions: int = 4,
    max_per_class: Optional[int] = None,
    seed: int = 0,
) -> LabeledAddressDataset:
    """Extract the labelled dataset from a simulated world.

    Addresses with fewer than ``min_transactions`` on-chain transactions
    are dropped (too little behaviour to classify), mirroring the paper's
    implicit filtering — every labelled address has a usable history.
    """
    addresses: List[str] = []
    labels: List[int] = []
    for address, label in world.labels.items():
        if world.index.transaction_count(address) >= min_transactions:
            addresses.append(address)
            labels.append(int(label))
    if not addresses:
        raise ValidationError(
            "no labelled address meets the min_transactions filter; "
            "run a longer simulation or lower the threshold"
        )
    dataset = LabeledAddressDataset(
        addresses=tuple(addresses), labels=np.asarray(labels, dtype=np.int64)
    )
    if max_per_class is not None:
        dataset = dataset.sample(per_class=max_per_class, seed=seed)
    return dataset


def build_fine_grained_dataset(
    world: World,
    min_transactions: int = 4,
    min_class_size: int = 4,
) -> Tuple[LabeledAddressDataset, List[str]]:
    """The fine-grained (sub-behaviour) dataset of the paper's future work.

    Returns ``(dataset, class_names)`` where labels index into
    ``class_names`` (e.g. ``exchange_hot``, ``mining_pool``, ``mixer``).
    Sub-classes with fewer than ``min_class_size`` qualifying addresses
    are dropped — too small to split.
    """
    qualifying: Dict[str, List[str]] = {}
    for address, fine in world.fine_labels.items():
        if world.index.transaction_count(address) >= min_transactions:
            qualifying.setdefault(fine, []).append(address)
    class_names = sorted(
        name for name, members in qualifying.items()
        if len(members) >= min_class_size
    )
    if not class_names:
        raise ValidationError(
            "no fine-grained class has enough members; lower the thresholds"
        )
    name_to_id = {name: i for i, name in enumerate(class_names)}
    addresses: List[str] = []
    labels: List[int] = []
    for name in class_names:
        for address in qualifying[name]:
            addresses.append(address)
            labels.append(name_to_id[name])
    dataset = LabeledAddressDataset(
        addresses=tuple(addresses), labels=np.asarray(labels, dtype=np.int64)
    )
    return dataset, class_names


def stratified_split(
    labels: np.ndarray,
    test_fraction: float = 0.2,
    rng: "int | np.random.Generator | None" = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Index split preserving per-class proportions.

    Every class with at least two members contributes at least one test
    example, so per-class metrics are always defined.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValidationError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    labels = np.asarray(labels, dtype=np.int64)
    generator = as_generator(rng)
    train_parts: List[np.ndarray] = []
    test_parts: List[np.ndarray] = []
    for value in np.unique(labels):
        class_idx = np.flatnonzero(labels == value)
        generator.shuffle(class_idx)
        n_test = int(round(len(class_idx) * test_fraction))
        if len(class_idx) >= 2:
            n_test = min(max(n_test, 1), len(class_idx) - 1)
        test_parts.append(class_idx[:n_test])
        train_parts.append(class_idx[n_test:])
    train_idx = np.concatenate(train_parts)
    test_idx = np.concatenate(test_parts) if test_parts else np.empty(0, np.int64)
    generator.shuffle(train_idx)
    generator.shuffle(test_idx)
    return train_idx, test_idx


def stratified_sample(
    labels: np.ndarray,
    per_class: int,
    rng: "int | np.random.Generator | None" = 0,
) -> np.ndarray:
    """Up to ``per_class`` indices per class, shuffled together."""
    if per_class <= 0:
        raise ValidationError(f"per_class must be > 0, got {per_class}")
    labels = np.asarray(labels, dtype=np.int64)
    generator = as_generator(rng)
    parts: List[np.ndarray] = []
    for value in np.unique(labels):
        class_idx = np.flatnonzero(labels == value)
        generator.shuffle(class_idx)
        parts.append(class_idx[:per_class])
    chosen = np.concatenate(parts)
    generator.shuffle(chosen)
    return chosen
