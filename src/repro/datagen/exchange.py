"""Exchange actor: hot/cold wallet management, deposits and withdrawals.

Behaviour signature (paper §IV-B: "cold wallet addresses and hot wallet
addresses ... used by exchanges to manage funds and provide deposit and
withdrawal services"):

- users deposit to per-user *deposit addresses*;
- the exchange periodically *consolidates* funded deposit addresses into a
  hot wallet (large fan-in transactions);
- withdrawals are paid from the hot wallet with change back to it (the hot
  address is long-lived and accumulates a very high transaction count);
- when the hot balance exceeds a threshold the excess is *swept* to cold
  storage; when it runs low, cold refills hot.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.chain.transaction import btc
from repro.chain.wallet import Wallet
from repro.datagen.actor import AddressLabel, LabeledActor, WorldContext

__all__ = ["ExchangeActor"]


class ExchangeActor(LabeledActor):
    """A centralized exchange with hot/cold wallets and deposit addresses."""

    label = AddressLabel.EXCHANGE

    def __init__(
        self,
        name: str,
        wallet: Wallet,
        rng: np.random.Generator,
        active_from: float = 0.0,
        num_hot: int = 2,
        num_cold: int = 2,
        consolidate_every: int = 6,
        withdrawal_rate: float = 1.5,
        withdrawal_mean_btc: float = 0.3,
        sweep_threshold_btc: float = 400.0,
        refill_threshold_btc: float = 20.0,
        fee_sats: int = 2_000,
        deposit_address_reuse: float = 0.8,
    ):
        super().__init__(name, wallet, rng, active_from)
        self.hot_addresses = [wallet.new_address() for _ in range(num_hot)]
        self.cold_addresses = [wallet.new_address() for _ in range(num_cold)]
        self.consolidate_every = consolidate_every
        self.withdrawal_rate = withdrawal_rate
        self.withdrawal_mean_btc = withdrawal_mean_btc
        self.sweep_threshold = btc(sweep_threshold_btc)
        self.refill_threshold = btc(refill_threshold_btc)
        self.fee_sats = fee_sats
        self.deposit_address_reuse = deposit_address_reuse
        self._deposit_address_of: Dict[str, str] = {}
        self._funded_deposits: List[str] = []
        self._tick = 0

    # ------------------------------------------------------------------ #
    # Deposit-side API (called by retail users via the world bulletin)
    # ------------------------------------------------------------------ #

    def deposit_address(self, user_id: str) -> str:
        """The deposit address assigned to ``user_id``.

        With probability ``deposit_address_reuse`` an existing assignment
        is kept; otherwise a fresh address is minted (exchanges rotate
        deposit addresses for privacy).
        """
        existing = self._deposit_address_of.get(user_id)
        if existing is not None and self.rng.random() < self.deposit_address_reuse:
            return existing
        address = self.wallet.new_address()
        self._deposit_address_of[user_id] = address
        return address

    def notify_deposit(self, address: str) -> None:
        """Record that ``address`` received a deposit (queues consolidation)."""
        self._funded_deposits.append(address)

    # ------------------------------------------------------------------ #
    # Per-tick behaviour
    # ------------------------------------------------------------------ #

    def on_step(self, ctx: WorldContext) -> None:
        self._tick += 1
        if self._tick % self.consolidate_every == 0:
            self._consolidate(ctx)
        self._withdrawals(ctx)
        self._rebalance(ctx)

    def _consolidate(self, ctx: WorldContext) -> None:
        """Sweep funded deposit addresses into the hot wallet (fan-in tx)."""
        view = self.wallet._view
        funded = [
            addr
            for addr in dict.fromkeys(self._funded_deposits)
            if view.balance_of(addr) > self.fee_sats
        ]
        if not funded:
            return
        self._funded_deposits = []
        total = sum(view.balance_of(addr) for addr in funded)
        hot = self._pick_hot()
        self.try_pay(
            ctx,
            payments=[(hot, total - self.fee_sats)],
            fee=self.fee_sats,
            source_addresses=funded,
        )

    def _withdrawals(self, ctx: WorldContext) -> None:
        """Pay user withdrawals from the hot wallet, change back to hot."""
        book = ctx.bulletin.get("retail_addresses", [])
        if not book:
            return
        count = int(self.rng.poisson(self.withdrawal_rate))
        for _ in range(count):
            target = book[int(self.rng.integers(len(book)))]
            amount = self.lognormal_sats(self.withdrawal_mean_btc, sigma=1.2)
            hot = self._pick_hot()
            view = self.wallet._view
            if view.balance_of(hot) < amount + self.fee_sats:
                continue
            self.try_pay(
                ctx,
                payments=[(target, amount)],
                fee=self.fee_sats,
                change_to_source=True,
                source_addresses=[hot],
            )

    def _rebalance(self, ctx: WorldContext) -> None:
        """Hot→cold sweep above threshold; cold→hot refill below threshold."""
        view = self.wallet._view
        hot = self._pick_hot()
        hot_balance = view.balance_of(hot)
        if hot_balance > self.sweep_threshold:
            excess = hot_balance - self.sweep_threshold // 2
            cold = self.cold_addresses[int(self.rng.integers(len(self.cold_addresses)))]
            self.try_pay(
                ctx,
                payments=[(cold, excess - self.fee_sats)],
                fee=self.fee_sats,
                change_to_source=True,
                source_addresses=[hot],
            )
        elif hot_balance < self.refill_threshold:
            funded_cold = [
                addr for addr in self.cold_addresses if view.balance_of(addr) > 0
            ]
            if funded_cold:
                cold = funded_cold[int(self.rng.integers(len(funded_cold)))]
                amount = min(view.balance_of(cold) - self.fee_sats, self.sweep_threshold // 2)
                if amount > self.fee_sats:
                    self.try_pay(
                        ctx,
                        payments=[(hot, amount)],
                        fee=self.fee_sats,
                        source_addresses=[cold],
                    )

    def _pick_hot(self) -> str:
        return self.hot_addresses[int(self.rng.integers(len(self.hot_addresses)))]

    def labeled_addresses(self) -> List[str]:
        """Hot, cold, and all deposit addresses carry the Exchange label."""
        deposits = list(dict.fromkeys(self._deposit_address_of.values()))
        return self.hot_addresses + self.cold_addresses + deposits

    def fine_labeled_addresses(self) -> List[tuple]:
        """Sub-behaviours: hot wallet / cold wallet / deposit address."""
        deposits = list(dict.fromkeys(self._deposit_address_of.values()))
        return (
            [(a, "exchange_hot") for a in self.hot_addresses]
            + [(a, "exchange_cold") for a in self.cold_addresses]
            + [(a, "exchange_deposit") for a in deposits]
        )
