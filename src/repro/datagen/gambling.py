"""Gambling actors: a betting house and dedicated gambler wallets.

Behaviour signature (paper §IV-B: "gambling websites absorb and manage
gambling funds through this class of addresses, while gamblers send and
receive gambling funds through this class of addresses"):

- bets are small lognormal amounts sent to a long-lived house bank
  address (very high transaction count, tiny values);
- the house resolves bets with a win probability below fair odds (house
  edge) and pays winners in batched payout transactions;
- dedicated gambler wallets bet frequently; both sides carry the
  Gambling label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.chain.wallet import Wallet
from repro.datagen.actor import AddressLabel, LabeledActor, WorldContext

__all__ = ["GamblingHouseActor", "GamblerActor", "Bet"]


@dataclass
class Bet:
    """An unresolved wager: who to pay, how much was staked, when."""

    payout_address: str
    amount: int
    placed_at: float


class GamblingHouseActor(LabeledActor):
    """A casino/dice site with a hot bank address and batched payouts."""

    label = AddressLabel.GAMBLING

    def __init__(
        self,
        name: str,
        wallet: Wallet,
        rng: np.random.Generator,
        active_from: float = 0.0,
        num_bank_addresses: int = 2,
        win_probability: float = 0.46,
        payout_multiplier: float = 2.0,
        max_payouts_per_tx: int = 8,
        fee_sats: int = 1_200,
    ):
        super().__init__(name, wallet, rng, active_from)
        self.bank_addresses = [wallet.new_address() for _ in range(num_bank_addresses)]
        self.win_probability = win_probability
        self.payout_multiplier = payout_multiplier
        self.max_payouts_per_tx = max_payouts_per_tx
        self.fee_sats = fee_sats
        self._pending: List[Bet] = []

    def betting_address(self) -> str:
        """Where bettors should send their stakes."""
        return self.bank_addresses[int(self.rng.integers(len(self.bank_addresses)))]

    def place_bet(self, bet: Bet) -> None:
        """Register an on-chain stake for resolution next tick."""
        self._pending.append(bet)

    def on_step(self, ctx: WorldContext) -> None:
        if not self._pending:
            return
        winners = []
        for bet in self._pending:
            if self.rng.random() < self.win_probability:
                payout = int(bet.amount * self.payout_multiplier)
                winners.append((bet.payout_address, payout))
        self._pending = []
        view = self.wallet._view
        # Batch winner payouts; each batch spends from one bank address
        # with change back to it, keeping the bank address long-lived.
        for start in range(0, len(winners), self.max_payouts_per_tx):
            batch = winners[start : start + self.max_payouts_per_tx]
            total = sum(amount for _, amount in batch) + self.fee_sats
            bank = max(self.bank_addresses, key=view.balance_of)
            if view.balance_of(bank) < total:
                continue
            self.try_pay(
                ctx,
                payments=batch,
                fee=self.fee_sats,
                change_to_source=True,
                source_addresses=[bank],
            )

    def labeled_addresses(self) -> List[str]:
        """The house bank addresses carry the Gambling label."""
        return list(self.bank_addresses)

    def fine_labeled_addresses(self) -> List[tuple]:
        """House banks form their own sub-class."""
        return [(a, "gambling_house") for a in self.bank_addresses]


class GamblerActor(LabeledActor):
    """A habitual gambler: frequent small stakes, winnings re-staked."""

    label = AddressLabel.GAMBLING

    def __init__(
        self,
        name: str,
        wallet: Wallet,
        rng: np.random.Generator,
        active_from: float = 0.0,
        bet_probability: float = 0.55,
        bet_mean_btc: float = 0.004,
        max_bets_per_tick: int = 3,
        fee_sats: int = 1_000,
    ):
        super().__init__(name, wallet, rng, active_from)
        self.bet_probability = bet_probability
        self.bet_mean_btc = bet_mean_btc
        self.max_bets_per_tick = max_bets_per_tick
        self.fee_sats = fee_sats
        self._stake_address = wallet.new_address()

    def stake_address(self) -> str:
        """The gambler's long-lived betting/payout address."""
        return self._stake_address

    def on_step(self, ctx: WorldContext) -> None:
        houses = ctx.bulletin.get("gambling_houses", [])
        if not houses:
            return
        for _ in range(self.max_bets_per_tick):
            if self.rng.random() >= self.bet_probability:
                continue
            house = houses[int(self.rng.integers(len(houses)))]
            amount = self.lognormal_sats(self.bet_mean_btc, sigma=0.8)
            view = self.wallet._view
            if view.balance_of(self._stake_address) < amount + self.fee_sats:
                # Top the stake address up from the rest of the wallet.
                if self.wallet.balance() < 2 * (amount + self.fee_sats):
                    return
                self.try_pay(
                    ctx,
                    payments=[(self._stake_address, amount * 4)],
                    fee=self.fee_sats,
                )
                continue
            tx = self.try_pay(
                ctx,
                payments=[(house.betting_address(), amount)],
                fee=self.fee_sats,
                change_to_source=True,
                source_addresses=[self._stake_address],
            )
            if tx is not None:
                house.place_bet(
                    Bet(
                        payout_address=self._stake_address,
                        amount=amount,
                        placed_at=ctx.now,
                    )
                )

    def labeled_addresses(self) -> List[str]:
        """Only the gambler's stake address carries the label."""
        return [self._stake_address]

    def fine_labeled_addresses(self) -> List[tuple]:
        """Gambler stake addresses form their own sub-class."""
        return [(self._stake_address, "gambler")]
