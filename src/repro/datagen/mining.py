"""Mining-pool actor: coinbase collection and high-fan-out reward payouts.

Behaviour signature (paper §IV-B and §III-A: "the mining pool will pay the
reward to every address which participated in the mining, resulting in
thousands of mining addresses being linked to each transaction of the
mining pool address"):

- the pool's reward address receives block subsidies (coinbases);
- every ``payout_interval`` blocks it emits a payout transaction fanning
  out to all member addresses at once (the signature the paper's
  multi-transaction address compression targets);
- member wallets accumulate small regular rewards and occasionally sweep
  them out to an exchange (cash-out).

Both the pool addresses and the member addresses carry the Mining label,
matching the paper's definition ("the mining nodes receive their reward
from the mining pools through this type of address").
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.chain.transaction import btc
from repro.chain.wallet import Wallet
from repro.datagen.actor import AddressLabel, LabeledActor, WorldContext

__all__ = ["MiningPoolActor", "MinerMemberActor"]


class MiningPoolActor(LabeledActor):
    """A mining pool: receives coinbases, pays members in bulk."""

    label = AddressLabel.MINING

    def __init__(
        self,
        name: str,
        wallet: Wallet,
        rng: np.random.Generator,
        active_from: float = 0.0,
        payout_interval: int = 4,
        pool_fee_fraction: float = 0.02,
        rotate_reward_every: int = 40,
        fee_sats: int = 3_000,
    ):
        super().__init__(name, wallet, rng, active_from)
        self.payout_interval = payout_interval
        self.pool_fee_fraction = pool_fee_fraction
        self.rotate_reward_every = rotate_reward_every
        self.fee_sats = fee_sats
        self.members: List["MinerMemberActor"] = []
        self._reward_addresses = [wallet.new_address()]
        self._tick = 0
        self._payouts_done = 0

    @property
    def reward_address(self) -> str:
        """The address coinbases are currently paid to."""
        return self._reward_addresses[-1]

    def register_member(self, member: "MinerMemberActor") -> None:
        """Add a miner whose shares earn payout outputs."""
        self.members.append(member)

    def on_step(self, ctx: WorldContext) -> None:
        self._tick += 1
        if self._tick % self.payout_interval != 0 or not self.members:
            return
        view = self.wallet._view
        balance = sum(view.balance_of(addr) for addr in self._reward_addresses)
        distributable = int(balance * (1.0 - self.pool_fee_fraction)) - self.fee_sats
        if distributable < btc(0.01) * len(self.members):
            return
        payments = self._member_shares(distributable)
        if not payments:
            return
        tx = self.try_pay(
            ctx,
            payments=payments,
            fee=self.fee_sats,
            source_addresses=list(self._reward_addresses),
        )
        if tx is None:
            return
        self._payouts_done += 1
        if self._payouts_done % self.rotate_reward_every == 0:
            self._reward_addresses.append(self.wallet.new_address())

    def _member_shares(self, distributable: int) -> List:
        """Split ``distributable`` over members with ±20% hashrate noise."""
        weights = self.rng.uniform(0.8, 1.2, size=len(self.members))
        weights = weights / weights.sum()
        payments = []
        for member, weight in zip(self.members, weights):
            share = int(distributable * float(weight))
            if share > 10_000:
                payments.append((member.payout_address(), share))
        return payments

    def labeled_addresses(self) -> List[str]:
        """Only the pool's reward addresses (members label their own)."""
        return list(self._reward_addresses)

    def fine_labeled_addresses(self) -> List[tuple]:
        """Pool reward addresses form their own sub-class."""
        return [(a, "mining_pool") for a in self._reward_addresses]


class MinerMemberActor(LabeledActor):
    """A pool member: receives regular payouts, occasionally cashes out."""

    label = AddressLabel.MINING

    def __init__(
        self,
        name: str,
        wallet: Wallet,
        rng: np.random.Generator,
        active_from: float = 0.0,
        cashout_probability: float = 0.03,
        cashout_fraction: float = 0.7,
        fee_sats: int = 1_500,
        rotate_payout_probability: float = 0.05,
    ):
        super().__init__(name, wallet, rng, active_from)
        self.cashout_probability = cashout_probability
        self.cashout_fraction = cashout_fraction
        self.fee_sats = fee_sats
        self.rotate_payout_probability = rotate_payout_probability
        self._payout_addresses = [wallet.new_address()]

    def payout_address(self) -> str:
        """Where the pool should send this member's share.

        Rotates occasionally, as real miners reconfigure payout targets.
        """
        if self.rng.random() < self.rotate_payout_probability:
            self._payout_addresses.append(self.wallet.new_address())
        return self._payout_addresses[-1]

    def on_step(self, ctx: WorldContext) -> None:
        if self.rng.random() >= self.cashout_probability:
            return
        exchanges = ctx.bulletin.get("exchanges", [])
        if not exchanges:
            return
        balance = self.wallet.balance()
        amount = int(balance * self.cashout_fraction)
        if amount <= self.fee_sats + 10_000:
            return
        exchange = exchanges[int(self.rng.integers(len(exchanges)))]
        deposit_addr = exchange.deposit_address(self.name)
        tx = self.try_pay(
            ctx, payments=[(deposit_addr, amount)], fee=self.fee_sats
        )
        if tx is not None:
            exchange.notify_deposit(deposit_addr)

    def labeled_addresses(self) -> List[str]:
        """Only reward-receiving addresses carry the Mining label.

        Change addresses from cash-outs are ordinary one-shot addresses
        and are not representative of mining behaviour.
        """
        return list(self._payout_addresses)

    def fine_labeled_addresses(self) -> List[tuple]:
        """Member payout addresses form their own sub-class."""
        return [(a, "mining_member") for a in self._payout_addresses]
