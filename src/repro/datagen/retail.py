"""Unlabelled background traffic: retail users and the bootstrap faucet.

Retail users are the economy's connective tissue — they deposit to
exchanges, place casual bets, order mixes, open lending positions, and pay
each other peer-to-peer.  Their addresses are *not* labelled; they exist
so that labelled addresses have realistic, diverse counterparties.

The :class:`FaucetActor` models coins already in circulation before the
simulation window: it receives the warm-up coinbases and disperses initial
float to services and retail (an exchange's cold storage, a casino's
bankroll and a mixer's liquidity do not appear out of thin air on mainnet
either — they were funded by earlier history we do not simulate).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.chain.transaction import btc
from repro.chain.wallet import Wallet
from repro.datagen.actor import Actor, WorldContext
from repro.datagen.gambling import Bet
from repro.datagen.service import MixOrder

__all__ = ["RetailActor", "FaucetActor"]


class RetailActor(Actor):
    """An ordinary user with a small wallet and mixed habits."""

    def __init__(
        self,
        name: str,
        wallet: Wallet,
        rng: np.random.Generator,
        active_from: float = 0.0,
        action_probability: float = 0.25,
        p2p_weight: float = 0.40,
        deposit_weight: float = 0.22,
        bet_weight: float = 0.12,
        mix_weight: float = 0.08,
        lend_weight: float = 0.08,
        wallet_weight: float = 0.10,
        fee_sats: int = 1_200,
    ):
        super().__init__(name, wallet, rng, active_from)
        self.action_probability = action_probability
        weights = np.array(
            [p2p_weight, deposit_weight, bet_weight, mix_weight, lend_weight,
             wallet_weight]
        )
        self._weights = weights / weights.sum()
        self.fee_sats = fee_sats
        self.receive_address = wallet.new_address()

    def on_step(self, ctx: WorldContext) -> None:
        if self.rng.random() >= self.action_probability:
            return
        action = int(self.rng.choice(6, p=self._weights))
        balance = self.wallet.balance()
        if balance < btc(0.01):
            return
        if action == 0:
            self._p2p_payment(ctx, balance)
        elif action == 1:
            self._exchange_deposit(ctx, balance)
        elif action == 2:
            self._casual_bet(ctx, balance)
        elif action == 3:
            self._mix_order(ctx, balance)
        elif action == 4:
            self._lending_deposit(ctx, balance)
        else:
            self._wallet_deposit(ctx, balance)

    def _p2p_payment(self, ctx: WorldContext, balance: int) -> None:
        book = ctx.bulletin.get("retail_addresses", [])
        if len(book) < 2:
            return
        target = book[int(self.rng.integers(len(book)))]
        if target == self.receive_address:
            return
        amount = min(self.lognormal_sats(0.05, sigma=1.0), balance // 3)
        if amount > 10_000:
            self.try_pay(ctx, payments=[(target, amount)], fee=self.fee_sats)

    def _exchange_deposit(self, ctx: WorldContext, balance: int) -> None:
        exchanges = ctx.bulletin.get("exchanges", [])
        if not exchanges:
            return
        exchange = exchanges[int(self.rng.integers(len(exchanges)))]
        amount = min(self.lognormal_sats(0.15, sigma=1.2), balance // 2)
        if amount <= 20_000:
            return
        deposit_addr = exchange.deposit_address(self.name)
        tx = self.try_pay(ctx, payments=[(deposit_addr, amount)], fee=self.fee_sats)
        if tx is not None:
            exchange.notify_deposit(deposit_addr)

    def _casual_bet(self, ctx: WorldContext, balance: int) -> None:
        houses = ctx.bulletin.get("gambling_houses", [])
        if not houses:
            return
        house = houses[int(self.rng.integers(len(houses)))]
        amount = min(self.lognormal_sats(0.003, sigma=0.8), balance // 5)
        if amount <= 5_000:
            return
        tx = self.try_pay(
            ctx, payments=[(house.betting_address(), amount)], fee=self.fee_sats
        )
        if tx is not None:
            house.place_bet(
                Bet(
                    payout_address=self.receive_address,
                    amount=amount,
                    placed_at=ctx.now,
                )
            )

    def _mix_order(self, ctx: WorldContext, balance: int) -> None:
        mixers = ctx.bulletin.get("mixers", [])
        if not mixers:
            return
        mixer = mixers[int(self.rng.integers(len(mixers)))]
        amount = min(self.lognormal_sats(0.2, sigma=1.0), balance // 2)
        if amount <= btc(0.02):
            return
        tx = self.try_pay(
            ctx, payments=[(mixer.intake_address(), amount)], fee=self.fee_sats
        )
        if tx is not None:
            returns = [self.wallet.new_address() for _ in range(2)]
            mixer.request_mix(
                MixOrder(amount=amount, return_addresses=returns, received_at=ctx.now)
            )

    def _lending_deposit(self, ctx: WorldContext, balance: int) -> None:
        desks = ctx.bulletin.get("lending_desks", [])
        if not desks:
            return
        desk = desks[int(self.rng.integers(len(desks)))]
        amount = min(self.lognormal_sats(0.3, sigma=1.0), balance // 2)
        if amount <= btc(0.05):
            return
        tx = self.try_pay(
            ctx, payments=[(desk.treasury_address, amount)], fee=self.fee_sats
        )
        if tx is not None:
            desk.open_position(principal=amount, payee_address=self.receive_address)

    def _wallet_deposit(self, ctx: WorldContext, balance: int) -> None:
        services = ctx.bulletin.get("wallet_services", [])
        if not services:
            return
        service = services[int(self.rng.integers(len(services)))]
        amount = min(self.lognormal_sats(0.06, sigma=1.0), balance // 3)
        if amount <= 15_000:
            return
        deposit_addr = service.deposit_address(self.name)
        tx = self.try_pay(ctx, payments=[(deposit_addr, amount)], fee=self.fee_sats)
        if tx is not None:
            service.notify_deposit(deposit_addr)


class FaucetActor(Actor):
    """Disperses warm-up coinbase funds as initial float and balances."""

    def __init__(
        self,
        name: str,
        wallet: Wallet,
        rng: np.random.Generator,
        grants: List,
        fee_sats: int = 2_500,
        grants_per_tick: int = 6,
    ):
        super().__init__(name, wallet, rng, active_from=0.0)
        self.reward_address = wallet.new_address()
        # Each grant is (recipient address, satoshis); paid out gradually.
        self._grants = list(grants)
        self.fee_sats = fee_sats
        self.grants_per_tick = grants_per_tick

    def add_grant(self, address: str, value: int) -> None:
        """Queue a one-off capital grant."""
        self._grants.append((address, value))

    @property
    def pending_grants(self) -> int:
        """Grants not yet paid out."""
        return len(self._grants)

    @property
    def total_pending_value(self) -> int:
        """Total satoshis still queued for dispersal."""
        return sum(value for _, value in self._grants)

    def on_step(self, ctx: WorldContext) -> None:
        if not self._grants:
            return
        batch = self._grants[: self.grants_per_tick]
        affordable = []
        total = self.fee_sats
        balance = self.wallet.balance()
        for address, value in batch:
            if total + value > balance:
                break
            affordable.append((address, value))
            total += value
        if not affordable:
            return
        tx = self.try_pay(ctx, payments=affordable, fee=self.fee_sats)
        if tx is not None:
            self._grants = self._grants[len(affordable):]
