"""Service actors: mixer (underground bank), custodial wallet, lending.

The paper's *Service* class is a heterogeneous grab-bag — "wallet, coin
mixer, dark web, and lending" (§IV-B) — and is its hardest class (lowest
per-class F1 in Tables III/IV).  We reproduce that difficulty by composing
three distinct sub-behaviours under one label:

- :class:`MixerActor` — the money-laundering workflow of the paper's §III
  walkthrough: take a deposit, split it into peeling chains through fresh
  intermediate addresses, return it (minus a fee) to the client later;
- :class:`WalletServiceActor` — custodial deposits/withdrawals that look
  like a *small* exchange (deliberate overlap with the Exchange class);
- :class:`LendingActor` — principal in, scheduled interest out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.chain.transaction import btc
from repro.chain.wallet import Wallet
from repro.datagen.actor import AddressLabel, LabeledActor, WorldContext

__all__ = ["MixerActor", "WalletServiceActor", "LendingActor", "MixOrder"]


@dataclass
class MixOrder:
    """A mixing request: amount received and where to return clean coins."""

    amount: int
    return_addresses: List[str]
    received_at: float
    hops_remaining: int = 2
    chunks: List[int] = field(default_factory=list)


class MixerActor(LabeledActor):
    """A coin mixer / underground bank running peeling-chain splits."""

    label = AddressLabel.SERVICE

    def __init__(
        self,
        name: str,
        wallet: Wallet,
        rng: np.random.Generator,
        active_from: float = 0.0,
        num_intake_addresses: int = 4,
        service_fee_fraction: float = 0.03,
        min_chunks: int = 2,
        max_chunks: int = 5,
        delay_ticks: int = 2,
        fee_sats: int = 1_500,
    ):
        super().__init__(name, wallet, rng, active_from)
        self.intake_addresses = [
            wallet.new_address() for _ in range(num_intake_addresses)
        ]
        self.service_fee_fraction = service_fee_fraction
        self.min_chunks = min_chunks
        self.max_chunks = max_chunks
        self.delay_ticks = delay_ticks
        self.fee_sats = fee_sats
        self._orders: List[Tuple[int, MixOrder]] = []  # (due_tick, order)
        self._tick = 0

    def intake_address(self) -> str:
        """Where a client should send coins to be mixed."""
        return self.intake_addresses[int(self.rng.integers(len(self.intake_addresses)))]

    def request_mix(self, order: MixOrder) -> None:
        """Register a mixing order whose funds just hit an intake address."""
        due = self._tick + self.delay_ticks
        self._orders.append((due, order))

    def on_step(self, ctx: WorldContext) -> None:
        self._tick += 1
        due_now = [order for due, order in self._orders if due <= self._tick]
        self._orders = [(due, o) for due, o in self._orders if due > self._tick]
        for order in due_now:
            self._process(ctx, order)

    def _process(self, ctx: WorldContext, order: MixOrder) -> None:
        """Run one hop of the order's peeling chain."""
        payable = int(order.amount * (1.0 - self.service_fee_fraction))
        if order.hops_remaining > 1:
            # Intermediate hop: split into fresh mixer-owned addresses.
            chunks = self._split(payable)
            payments = [(self.wallet.new_address(), chunk) for chunk in chunks]
            tx = self.try_pay(ctx, payments=payments, fee=self.fee_sats)
            if tx is None:
                return
            order.hops_remaining -= 1
            order.amount = payable - self.fee_sats
            self._orders.append((self._tick + self.delay_ticks, order))
        else:
            # Final hop: pay the client's return addresses.
            targets = order.return_addresses
            share = max(10_000, (payable - self.fee_sats) // max(1, len(targets)))
            payments = [(addr, share) for addr in targets]
            self.try_pay(ctx, payments=payments, fee=self.fee_sats)

    def _split(self, amount: int) -> List[int]:
        """Split ``amount`` into 2–5 near-equal chunks with ±15% jitter."""
        count = int(self.rng.integers(self.min_chunks, self.max_chunks + 1))
        weights = self.rng.uniform(0.85, 1.15, size=count)
        weights = weights / weights.sum()
        chunks = [max(10_000, int(amount * float(w))) for w in weights]
        overshoot = sum(chunks) - amount + self.fee_sats
        if overshoot > 0:
            chunks[0] = max(10_000, chunks[0] - overshoot)
        return chunks

    def labeled_addresses(self) -> List[str]:
        """Intake addresses carry the Service label (the paper's focus:
        'which addresses are used for money laundering and mixing')."""
        return list(self.intake_addresses)

    def fine_labeled_addresses(self) -> List[tuple]:
        """Mixer intakes form their own sub-class."""
        return [(a, "mixer") for a in self.intake_addresses]


class WalletServiceActor(LabeledActor):
    """A custodial web-wallet: a low-volume lookalike of an exchange."""

    label = AddressLabel.SERVICE

    def __init__(
        self,
        name: str,
        wallet: Wallet,
        rng: np.random.Generator,
        active_from: float = 0.0,
        consolidate_every: int = 10,
        withdrawal_rate: float = 0.5,
        withdrawal_mean_btc: float = 0.08,
        fee_sats: int = 1_500,
    ):
        super().__init__(name, wallet, rng, active_from)
        self.custody_address = wallet.new_address()
        self.consolidate_every = consolidate_every
        self.withdrawal_rate = withdrawal_rate
        self.withdrawal_mean_btc = withdrawal_mean_btc
        self.fee_sats = fee_sats
        self._deposit_address_of: Dict[str, str] = {}
        self._funded_deposits: List[str] = []
        self._tick = 0

    def deposit_address(self, user_id: str) -> str:
        """A stable per-user custodial deposit address."""
        existing = self._deposit_address_of.get(user_id)
        if existing is not None:
            return existing
        address = self.wallet.new_address()
        self._deposit_address_of[user_id] = address
        return address

    def notify_deposit(self, address: str) -> None:
        """Record a deposit so the next consolidation picks it up."""
        self._funded_deposits.append(address)

    def on_step(self, ctx: WorldContext) -> None:
        self._tick += 1
        view = self.wallet._view
        if self._tick % self.consolidate_every == 0 and self._funded_deposits:
            funded = [
                addr
                for addr in dict.fromkeys(self._funded_deposits)
                if view.balance_of(addr) > self.fee_sats
            ]
            self._funded_deposits = []
            if funded:
                total = sum(view.balance_of(a) for a in funded)
                self.try_pay(
                    ctx,
                    payments=[(self.custody_address, total - self.fee_sats)],
                    fee=self.fee_sats,
                    source_addresses=funded,
                )
        book = ctx.bulletin.get("retail_addresses", [])
        if not book:
            return
        for _ in range(int(self.rng.poisson(self.withdrawal_rate))):
            target = book[int(self.rng.integers(len(book)))]
            amount = self.lognormal_sats(self.withdrawal_mean_btc, sigma=1.0)
            if view.balance_of(self.custody_address) < amount + self.fee_sats:
                continue
            self.try_pay(
                ctx,
                payments=[(target, amount)],
                fee=self.fee_sats,
                change_to_source=True,
                source_addresses=[self.custody_address],
            )

    def labeled_addresses(self) -> List[str]:
        """Custody plus per-user deposit addresses carry the Service label."""
        deposits = list(dict.fromkeys(self._deposit_address_of.values()))
        return [self.custody_address] + deposits

    def fine_labeled_addresses(self) -> List[tuple]:
        """Custodial-wallet addresses form their own sub-class."""
        return [(a, "wallet_service") for a in self.labeled_addresses()]


class LendingActor(LabeledActor):
    """A lending desk: deposits earn scheduled interest payouts."""

    label = AddressLabel.SERVICE

    def __init__(
        self,
        name: str,
        wallet: Wallet,
        rng: np.random.Generator,
        active_from: float = 0.0,
        interest_per_period: float = 0.01,
        period_ticks: int = 8,
        periods: int = 6,
        fee_sats: int = 1_200,
    ):
        super().__init__(name, wallet, rng, active_from)
        self.treasury_address = wallet.new_address()
        self.interest_per_period = interest_per_period
        self.period_ticks = period_ticks
        self.periods = periods
        self.fee_sats = fee_sats
        # (next_due_tick, payouts_left, principal, payee address)
        self._positions: List[List] = []
        self._tick = 0

    def open_position(self, principal: int, payee_address: str) -> None:
        """Register a deposit that will earn ``periods`` interest payouts."""
        self._positions.append(
            [self._tick + self.period_ticks, self.periods, principal, payee_address]
        )

    def on_step(self, ctx: WorldContext) -> None:
        self._tick += 1
        view = self.wallet._view
        payments = []
        for position in self._positions:
            due, remaining, principal, payee = position
            if due > self._tick or remaining <= 0:
                continue
            interest = max(5_000, int(principal * self.interest_per_period))
            amount = interest if remaining > 1 else interest + principal
            payments.append((payee, amount))
            position[0] = self._tick + self.period_ticks
            position[1] -= 1
        self._positions = [p for p in self._positions if p[1] > 0]
        for start in range(0, len(payments), 6):
            batch = payments[start : start + 6]
            total = sum(v for _, v in batch) + self.fee_sats
            if view.balance_of(self.treasury_address) < total:
                continue
            self.try_pay(
                ctx,
                payments=batch,
                fee=self.fee_sats,
                change_to_source=True,
                source_addresses=[self.treasury_address],
            )

    def labeled_addresses(self) -> List[str]:
        """The treasury address carries the Service label."""
        return [self.treasury_address]

    def fine_labeled_addresses(self) -> List[tuple]:
        """Lending treasuries form their own sub-class."""
        return [(self.treasury_address, "lending")]
