"""The world simulator: wires actors to a chain and advances block time.

One simulation tick = one block.  Per tick, every actor runs (submitting
transactions to the mempool), then a mining pool wins the block and the
mempool drains into it.  A warm-up phase first mines coinbases to a
faucet, which disperses initial float to services and retail — modelling
the pre-existing circulation the simulation window does not cover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.chain.address import AddressFactory
from repro.chain.chain import Blockchain, ChainParams
from repro.chain.explorer import ChainIndex, attach_index
from repro.chain.mempool import Mempool
from repro.chain.transaction import btc
from repro.chain.wallet import Wallet
from repro.datagen.actor import Actor, AddressLabel, LabeledActor, WorldContext
from repro.datagen.exchange import ExchangeActor
from repro.datagen.gambling import GamblerActor, GamblingHouseActor
from repro.datagen.mining import MinerMemberActor, MiningPoolActor
from repro.datagen.retail import FaucetActor, RetailActor
from repro.datagen.service import LendingActor, MixerActor, WalletServiceActor
from repro.errors import ValidationError
from repro.utils.rng import SeedSequenceFactory

__all__ = ["WorldConfig", "World", "WorldSimulator", "generate_world"]


@dataclass(frozen=True)
class WorldConfig:
    """Knobs of the simulated economy.

    The defaults produce a small world (a few hundred labelled addresses)
    in a couple of seconds; benchmarks scale the actor counts up.
    ``adoption_spread`` staggers actor activation over that fraction of
    the simulation window (0 = all active from the start), producing the
    growth curve of the paper's Figure 1.
    """

    seed: int = 0
    num_blocks: int = 400
    warmup_blocks: int = 40
    block_interval: float = 600.0
    max_block_txs: int = 4_000
    num_exchanges: int = 2
    num_pools: int = 2
    num_miner_members: int = 16
    num_gambling_houses: int = 2
    num_gamblers: int = 30
    num_mixers: int = 3
    num_wallet_services: int = 3
    num_lending_desks: int = 2
    num_retail: int = 80
    adoption_spread: float = 0.0
    heterogeneity: float = 0.5
    exchange_cold_float_btc: float = 220.0
    gambling_bankroll_btc: float = 60.0
    mixer_float_btc: float = 40.0
    wallet_service_float_btc: float = 30.0
    lending_treasury_btc: float = 50.0
    retail_grant_btc: float = 0.8
    gambler_grant_btc: float = 0.5

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise ValidationError("num_blocks must be > 0")
        if self.warmup_blocks < 0:
            raise ValidationError("warmup_blocks must be >= 0")
        if not 0.0 <= self.adoption_spread <= 1.0:
            raise ValidationError("adoption_spread must be in [0, 1]")
        if self.heterogeneity < 0.0:
            raise ValidationError("heterogeneity must be >= 0")

    def total_grant_budget_btc(self) -> float:
        """The satoshi value the faucet must disperse, in BTC."""
        return (
            self.num_exchanges * self.exchange_cold_float_btc
            + self.num_gambling_houses * self.gambling_bankroll_btc
            + self.num_mixers * self.mixer_float_btc
            + self.num_wallet_services * self.wallet_service_float_btc
            + self.num_lending_desks * self.lending_treasury_btc
            + self.num_retail * self.retail_grant_btc
            + self.num_gamblers * self.gambler_grant_btc
        )


@dataclass
class World:
    """A finished simulation: the chain, its index, and the label maps.

    ``fine_labels`` carries the sub-behaviour tags (exchange_hot,
    mining_pool, mixer, ...) of the paper's future-work taxonomy.
    """

    config: WorldConfig
    chain: Blockchain
    index: ChainIndex
    labels: Dict[str, AddressLabel]
    fine_labels: Dict[str, str] = field(default_factory=dict)
    actors: List[Actor] = field(default_factory=list)

    def labeled_addresses(self, min_transactions: int = 1) -> List[str]:
        """Labelled addresses with at least ``min_transactions`` on chain."""
        return [
            address
            for address in self.labels
            if self.index.transaction_count(address) >= min_transactions
        ]

    def class_counts(self, min_transactions: int = 1) -> Dict[AddressLabel, int]:
        """Number of qualifying labelled addresses per behaviour class."""
        counts = {label: 0 for label in AddressLabel}
        for address in self.labeled_addresses(min_transactions):
            counts[self.labels[address]] += 1
        return counts


class WorldSimulator:
    """Builds and runs one simulated economy from a :class:`WorldConfig`."""

    def __init__(self, config: Optional[WorldConfig] = None):
        self.config = config or WorldConfig()
        self._seeds = SeedSequenceFactory(self.config.seed)
        self._factory = AddressFactory(self._seeds.generator("addresses"))
        # A generous halving interval: no halving inside a dataset window
        # unless the caller simulates long horizons (Figure 1 does).
        self.chain = Blockchain(
            ChainParams(
                halving_interval=max(50_000, self.config.num_blocks * 4),
                block_interval=self.config.block_interval,
            )
        )
        self.index = attach_index(self.chain)
        self.mempool = Mempool(self.chain.utxo_set)
        self.ctx = WorldContext(
            chain=self.chain, index=self.index, mempool=self.mempool
        )
        self._actors: List[Actor] = []
        self._pools: List[MiningPoolActor] = []
        self._faucet: Optional[FaucetActor] = None
        self._build_actors()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _new_wallet(self, name: str) -> Wallet:
        return Wallet(self.mempool.view(), self._factory, name=name)

    def _scale(self, rng: np.random.Generator, spread: float = 1.0) -> float:
        """A per-actor lognormal scale multiplier under ``heterogeneity``.

        Real-world classes are internally diverse (a boutique exchange is
        orders of magnitude smaller than a major one); this multiplier
        injects that intra-class variance.  Clipped to [1/6, 6] so the
        faucet's grant budget stays bounded.
        """
        h = self.config.heterogeneity * spread
        if h <= 0.0:
            return 1.0
        return float(np.clip(rng.lognormal(mean=0.0, sigma=h), 1.0 / 6.0, 6.0))

    def _activation(self, rng: np.random.Generator) -> float:
        """Sample an activation time under the adoption schedule."""
        cfg = self.config
        if cfg.adoption_spread <= 0.0:
            return 0.0
        window = cfg.num_blocks * cfg.block_interval * cfg.adoption_spread
        start = (cfg.warmup_blocks + 1) * cfg.block_interval
        return start + float(rng.random()) * window

    def _build_actors(self) -> None:
        cfg = self.config
        faucet_wallet = self._new_wallet("faucet")
        self._faucet = FaucetActor(
            "faucet", faucet_wallet, self._seeds.generator("faucet"), grants=[]
        )

        exchanges = []
        for i in range(cfg.num_exchanges):
            rng = self._seeds.generator(f"exchange/{i}")
            hrng = self._seeds.generator(f"hetero/exchange/{i}")
            size = self._scale(hrng)
            actor = ExchangeActor(
                f"exchange-{i}", self._new_wallet(f"exchange-{i}"), rng,
                active_from=self._activation(rng),
                withdrawal_mean_btc=0.3 * size,
                withdrawal_rate=float(np.clip(1.5 * self._scale(hrng), 0.3, 5.0)),
                consolidate_every=int(hrng.integers(4, 11)),
                sweep_threshold_btc=400.0 * size,
                deposit_address_reuse=float(hrng.uniform(0.6, 0.95)),
            )
            float_each = btc(cfg.exchange_cold_float_btc * size) // max(
                1, len(actor.cold_addresses)
            )
            for cold in actor.cold_addresses:
                self._faucet.add_grant(cold, float_each)
            exchanges.append(actor)

        pools = []
        members_per_pool = max(1, cfg.num_miner_members // max(1, cfg.num_pools))
        member_index = 0
        for i in range(cfg.num_pools):
            rng = self._seeds.generator(f"pool/{i}")
            hrng = self._seeds.generator(f"hetero/pool/{i}")
            pool = MiningPoolActor(
                f"pool-{i}", self._new_wallet(f"pool-{i}"), rng,
                active_from=self._activation(rng),
                payout_interval=int(hrng.integers(3, 7)),
                pool_fee_fraction=float(hrng.uniform(0.01, 0.05)),
                rotate_reward_every=int(hrng.integers(20, 60)),
            )
            for _ in range(members_per_pool):
                mrng = self._seeds.generator(f"member/{member_index}")
                mhrng = self._seeds.generator(f"hetero/member/{member_index}")
                member = MinerMemberActor(
                    f"member-{member_index}",
                    self._new_wallet(f"member-{member_index}"),
                    mrng,
                    active_from=pool.active_from,
                    cashout_probability=float(mhrng.uniform(0.01, 0.06)),
                    cashout_fraction=float(mhrng.uniform(0.5, 0.9)),
                )
                pool.register_member(member)
                self._actors.append(member)
                member_index += 1
            pools.append(pool)
        self._pools = pools

        houses = []
        for i in range(cfg.num_gambling_houses):
            rng = self._seeds.generator(f"house/{i}")
            hrng = self._seeds.generator(f"hetero/house/{i}")
            size = self._scale(hrng)
            house = GamblingHouseActor(
                f"house-{i}", self._new_wallet(f"house-{i}"), rng,
                active_from=self._activation(rng),
                num_bank_addresses=int(hrng.integers(1, 4)),
                win_probability=float(hrng.uniform(0.42, 0.49)),
                payout_multiplier=float(hrng.choice([1.5, 2.0, 3.0])),
            )
            bank_each = btc(cfg.gambling_bankroll_btc * size) // max(
                1, len(house.bank_addresses)
            )
            for bank in house.bank_addresses:
                self._faucet.add_grant(bank, bank_each)
            houses.append(house)

        gamblers = []
        for i in range(cfg.num_gamblers):
            rng = self._seeds.generator(f"gambler/{i}")
            hrng = self._seeds.generator(f"hetero/gambler/{i}")
            stake_scale = self._scale(hrng, spread=1.5)
            gambler = GamblerActor(
                f"gambler-{i}", self._new_wallet(f"gambler-{i}"), rng,
                active_from=self._activation(rng),
                bet_probability=float(hrng.uniform(0.3, 0.7)),
                bet_mean_btc=0.004 * stake_scale,
                max_bets_per_tick=int(hrng.integers(1, 5)),
            )
            self._faucet.add_grant(
                gambler.stake_address(),
                btc(cfg.gambler_grant_btc * stake_scale),
            )
            gamblers.append(gambler)

        mixers = []
        for i in range(cfg.num_mixers):
            rng = self._seeds.generator(f"mixer/{i}")
            hrng = self._seeds.generator(f"hetero/mixer/{i}")
            mixer = MixerActor(
                f"mixer-{i}", self._new_wallet(f"mixer-{i}"), rng,
                active_from=self._activation(rng),
                num_intake_addresses=int(hrng.integers(3, 7)),
                service_fee_fraction=float(hrng.uniform(0.01, 0.06)),
                max_chunks=int(hrng.integers(3, 7)),
                delay_ticks=int(hrng.integers(1, 5)),
            )
            float_address = mixer.wallet.new_address()
            self._faucet.add_grant(
                float_address, btc(cfg.mixer_float_btc * self._scale(hrng))
            )
            mixers.append(mixer)

        wallet_services = []
        for i in range(cfg.num_wallet_services):
            rng = self._seeds.generator(f"walletsvc/{i}")
            hrng = self._seeds.generator(f"hetero/walletsvc/{i}")
            size = self._scale(hrng)
            service = WalletServiceActor(
                f"walletsvc-{i}", self._new_wallet(f"walletsvc-{i}"), rng,
                active_from=self._activation(rng),
                consolidate_every=int(hrng.integers(6, 15)),
                withdrawal_rate=float(hrng.uniform(0.2, 1.0)),
                withdrawal_mean_btc=0.08 * size,
            )
            self._faucet.add_grant(
                service.custody_address,
                btc(cfg.wallet_service_float_btc * size),
            )
            wallet_services.append(service)

        lending_desks = []
        for i in range(cfg.num_lending_desks):
            rng = self._seeds.generator(f"lending/{i}")
            hrng = self._seeds.generator(f"hetero/lending/{i}")
            desk = LendingActor(
                f"lending-{i}", self._new_wallet(f"lending-{i}"), rng,
                active_from=self._activation(rng),
                interest_per_period=float(hrng.uniform(0.005, 0.02)),
                period_ticks=int(hrng.integers(5, 13)),
                periods=int(hrng.integers(4, 9)),
            )
            self._faucet.add_grant(
                desk.treasury_address,
                btc(cfg.lending_treasury_btc * self._scale(hrng)),
            )
            lending_desks.append(desk)

        retail = []
        for i in range(cfg.num_retail):
            rng = self._seeds.generator(f"retail/{i}")
            hrng = self._seeds.generator(f"hetero/retail/{i}")
            user = RetailActor(
                f"retail-{i}", self._new_wallet(f"retail-{i}"), rng,
                active_from=self._activation(rng),
                action_probability=float(hrng.uniform(0.15, 0.35)),
            )
            self._faucet.add_grant(
                user.receive_address,
                btc(cfg.retail_grant_btc * self._scale(hrng)),
            )
            retail.append(user)

        self.ctx.bulletin["exchanges"] = exchanges
        self.ctx.bulletin["gambling_houses"] = houses
        self.ctx.bulletin["mixers"] = mixers
        self.ctx.bulletin["wallet_services"] = wallet_services
        self.ctx.bulletin["lending_desks"] = lending_desks
        self.ctx.bulletin["retail_addresses"] = [u.receive_address for u in retail]

        # Actor order: faucet first (funds flow out), then services, then users.
        self._actors = (
            [self._faucet]
            + exchanges
            + pools
            + houses
            + mixers
            + wallet_services
            + lending_desks
            + self._actors  # miner members (registered during pool build)
            + gamblers
            + retail
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self) -> World:
        """Run warm-up plus the main window; return the finished world."""
        cfg = self.config
        interval = cfg.block_interval
        rng = self._seeds.generator("world")

        # Warm-up: mine subsidies to the faucet so grants are fundable.
        # The actual queued grant total is used (per-actor heterogeneity
        # rescales the nominal config budget).
        needed = self._faucet.total_pending_value
        subsidy = self.chain.params.subsidy_at(1)
        warmup = max(cfg.warmup_blocks, int(needed // max(subsidy, 1)) + 2)
        for i in range(warmup):
            self.chain.mine_block(
                [],
                reward_address=self._faucet.reward_address,
                timestamp=(i + 1) * interval,
            )

        start = warmup + 1
        for tick in range(cfg.num_blocks):
            now = (start + tick) * interval
            self.ctx.now = now
            self.ctx.height = self.chain.height + 1
            for actor in self._actors:
                actor.step(self.ctx)
            txs = self.mempool.take(cfg.max_block_txs)
            reward_address = self._pick_miner(rng, now)
            self.chain.mine_block(txs, reward_address=reward_address, timestamp=now)

        labels, fine_labels = self._collect_labels()
        return World(
            config=cfg,
            chain=self.chain,
            index=self.index,
            labels=labels,
            fine_labels=fine_labels,
            actors=list(self._actors),
        )

    def _pick_miner(self, rng: np.random.Generator, now: float) -> str:
        active_pools = [p for p in self._pools if now >= p.active_from]
        if not active_pools:
            return self._faucet.reward_address
        pool = active_pools[int(rng.integers(len(active_pools)))]
        return pool.reward_address

    def _collect_labels(self) -> "tuple[Dict[str, AddressLabel], Dict[str, str]]":
        labels: Dict[str, AddressLabel] = {}
        fine_labels: Dict[str, str] = {}
        for actor in self._actors:
            if not isinstance(actor, LabeledActor):
                continue
            for address in actor.labeled_addresses():
                labels[address] = actor.label
            for address, fine in actor.fine_labeled_addresses():
                fine_labels[address] = fine
        return labels, fine_labels


def generate_world(
    config: Optional[WorldConfig] = None, seed: Optional[int] = None, **overrides
) -> World:
    """Build and run a world in one call.

    ``generate_world(seed=7, num_retail=100)`` constructs a
    :class:`WorldConfig` with the given overrides and runs it.
    """
    if config is None:
        if seed is not None:
            overrides["seed"] = seed
        config = WorldConfig(**overrides)
    elif seed is not None or overrides:
        raise ValidationError("pass either a config or keyword overrides, not both")
    return WorldSimulator(config).run()
