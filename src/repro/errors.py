"""Exception hierarchy for the ``repro`` library.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, range, or type)."""


class ChainError(ReproError):
    """Base class for blockchain-substrate errors."""


class InvalidTransactionError(ChainError):
    """A transaction violates the UTXO rules (missing input, overspend...)."""


class InvalidBlockError(ChainError):
    """A block violates chain rules (bad link, bad coinbase, bad merkle)."""


class InsufficientFundsError(ChainError):
    """A wallet cannot assemble enough UTXO value for a requested spend."""


class ChainStoreError(ChainError):
    """The persistent chain store is corrupt, torn, or misused
    (read-only mutation, writer/index divergence, unmapped lookup)."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted model was called before ``fit``."""


class GraphConstructionError(ReproError):
    """Address-graph construction failed (empty history, bad slice...)."""


class AutogradError(ReproError):
    """An invalid operation was attempted on the autograd tape."""
