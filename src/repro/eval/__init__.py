"""Evaluation: metrics, training curves, and paper-style table rendering."""

from repro.eval.curves import CurvePoint, TrainingCurve
from repro.eval.metrics import (
    ClassMetrics,
    MetricsReport,
    accuracy,
    classification_report,
    confusion_matrix,
    precision_recall_f1,
)
from repro.eval.report import format_curve_table, format_table, render_ascii_chart

__all__ = [
    "CurvePoint",
    "TrainingCurve",
    "ClassMetrics",
    "MetricsReport",
    "accuracy",
    "classification_report",
    "confusion_matrix",
    "precision_recall_f1",
    "format_curve_table",
    "format_table",
    "render_ascii_chart",
]
