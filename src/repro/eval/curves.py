"""Training-curve tracking for Figures 5 and 6 (F1 vs epoch / runtime)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ValidationError

__all__ = ["CurvePoint", "TrainingCurve"]


@dataclass(frozen=True)
class CurvePoint:
    """One evaluation sample during training."""

    epoch: int
    runtime_seconds: float
    f1: float


@dataclass
class TrainingCurve:
    """Ordered F1 samples over a training run, keyed by a model name."""

    model_name: str
    points: List[CurvePoint] = field(default_factory=list)

    def add(self, epoch: int, runtime_seconds: float, f1: float) -> None:
        """Append one evaluation sample (epochs must be non-decreasing)."""
        if self.points and epoch < self.points[-1].epoch:
            raise ValidationError(
                f"epochs must be non-decreasing, got {epoch} after "
                f"{self.points[-1].epoch}"
            )
        self.points.append(
            CurvePoint(epoch=epoch, runtime_seconds=runtime_seconds, f1=f1)
        )

    def epochs(self) -> List[int]:
        """Epoch indices of the samples."""
        return [p.epoch for p in self.points]

    def runtimes(self) -> List[float]:
        """Cumulative runtimes of the samples."""
        return [p.runtime_seconds for p in self.points]

    def f1_scores(self) -> List[float]:
        """F1 at each sample."""
        return [p.f1 for p in self.points]

    def best_f1(self) -> float:
        """Best F1 achieved over the run."""
        if not self.points:
            return 0.0
        return max(p.f1 for p in self.points)

    def final_f1(self) -> float:
        """F1 at the last sample."""
        if not self.points:
            return 0.0
        return self.points[-1].f1

    def f1_at_time(self, budget_seconds: float) -> float:
        """Best F1 achieved within a wall-clock budget (Fig. 5/6 right)."""
        eligible = [p.f1 for p in self.points if p.runtime_seconds <= budget_seconds]
        return max(eligible) if eligible else 0.0

    def f1_at_epoch(self, epoch: int) -> Optional[float]:
        """F1 of the latest sample at or before ``epoch``."""
        eligible = [p for p in self.points if p.epoch <= epoch]
        return eligible[-1].f1 if eligible else None

    def rows(self) -> List[Tuple[int, float, float]]:
        """``(epoch, runtime, f1)`` tuples."""
        return [(p.epoch, p.runtime_seconds, p.f1) for p in self.points]
