"""Classification metrics (paper §IV-A-b: precision, recall, F1-score).

Per-class precision/recall/F1 plus the support-weighted averages the
paper reports as "Weighted Avg".  Zero-division conventions follow the
common tooling default: a class with no predicted (or true) examples
scores 0 for the undefined metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "confusion_matrix",
    "accuracy",
    "precision_recall_f1",
    "ClassMetrics",
    "MetricsReport",
    "classification_report",
]


def _validate_pair(y_true, y_pred) -> tuple:
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.ndim != 1 or y_pred.ndim != 1:
        raise ValidationError("labels must be 1-D arrays")
    if y_true.shape != y_pred.shape:
        raise ValidationError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValidationError("labels must be non-empty")
    return y_true, y_pred


def confusion_matrix(
    y_true, y_pred, num_classes: Optional[int] = None
) -> np.ndarray:
    """Counts ``C[i, j]`` = examples of true class i predicted as j."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    if num_classes is None:
        num_classes = int(max(y_true.max(), y_pred.max())) + 1
    if y_true.min() < 0 or y_pred.min() < 0:
        raise ValidationError("labels must be non-negative")
    if max(y_true.max(), y_pred.max()) >= num_classes:
        raise ValidationError("labels exceed num_classes")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def accuracy(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


@dataclass(frozen=True)
class ClassMetrics:
    """Precision/recall/F1/support for one class."""

    precision: float
    recall: float
    f1: float
    support: int


@dataclass(frozen=True)
class MetricsReport:
    """Per-class metrics plus support-weighted averages."""

    per_class: Dict[int, ClassMetrics]
    weighted_precision: float
    weighted_recall: float
    weighted_f1: float
    accuracy: float

    def row(self, label: int) -> ClassMetrics:
        """Metrics of one class."""
        return self.per_class[label]


def precision_recall_f1(
    y_true, y_pred, num_classes: Optional[int] = None
) -> MetricsReport:
    """Per-class and weighted precision/recall/F1 (paper Eq. 23–25)."""
    matrix = confusion_matrix(y_true, y_pred, num_classes)
    n_classes = matrix.shape[0]
    true_positive = np.diag(matrix).astype(np.float64)
    predicted = matrix.sum(axis=0).astype(np.float64)
    actual = matrix.sum(axis=1).astype(np.float64)

    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, true_positive / predicted, 0.0)
        recall = np.where(actual > 0, true_positive / actual, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2.0 * precision * recall / denom, 0.0)

    per_class = {
        label: ClassMetrics(
            precision=float(precision[label]),
            recall=float(recall[label]),
            f1=float(f1[label]),
            support=int(actual[label]),
        )
        for label in range(n_classes)
    }
    total = float(actual.sum())
    weights = actual / total
    return MetricsReport(
        per_class=per_class,
        weighted_precision=float(np.sum(precision * weights)),
        weighted_recall=float(np.sum(recall * weights)),
        weighted_f1=float(np.sum(f1 * weights)),
        accuracy=float(true_positive.sum() / total),
    )


def classification_report(
    y_true,
    y_pred,
    class_names: Optional[Sequence[str]] = None,
    digits: int = 4,
) -> str:
    """A paper-style text table: one row per class plus Weighted Avg."""
    report = precision_recall_f1(
        y_true, y_pred, num_classes=len(class_names) if class_names else None
    )
    labels = sorted(report.per_class)
    if class_names is None:
        class_names = [f"class_{label}" for label in labels]
    width = max(len(name) for name in list(class_names) + ["Weighted Avg"]) + 2
    header = (
        f"{'':<{width}}{'Precision':>11}{'Recall':>11}{'F1-score':>11}{'Support':>9}"
    )
    lines = [header]
    for label in labels:
        row = report.per_class[label]
        lines.append(
            f"{class_names[label]:<{width}}"
            f"{row.precision:>11.{digits}f}{row.recall:>11.{digits}f}"
            f"{row.f1:>11.{digits}f}{row.support:>9d}"
        )
    total = sum(report.per_class[label].support for label in labels)
    lines.append(
        f"{'Weighted Avg':<{width}}"
        f"{report.weighted_precision:>11.{digits}f}"
        f"{report.weighted_recall:>11.{digits}f}"
        f"{report.weighted_f1:>11.{digits}f}{total:>9d}"
    )
    return "\n".join(lines)
