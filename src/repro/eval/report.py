"""Plain-text table rendering for benchmark output.

The benchmark harness prints tables in the same row/column layout the
paper uses, so paper-vs-measured comparison is a visual diff.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_curve_table", "render_ascii_chart"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
    float_digits: int = 4,
) -> str:
    """Align ``rows`` under ``headers``; floats rendered to fixed digits."""
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append(
            [
                f"{cell:.{float_digits}f}" if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_curve_table(curves, budgets: Sequence[float]) -> str:
    """F1-at-time-budget comparison across several TrainingCurves."""
    headers = ["Model"] + [f"F1@{budget:.0f}s" for budget in budgets] + ["Best F1"]
    rows = []
    for curve in curves:
        rows.append(
            [curve.model_name]
            + [curve.f1_at_time(budget) for budget in budgets]
            + [curve.best_f1()]
        )
    return format_table(headers, rows)


def render_ascii_chart(
    curves,
    width: int = 60,
    height: int = 12,
    by_runtime: bool = False,
) -> str:
    """A text rendering of F1 training curves (Figures 5/6 in a terminal).

    Each curve gets a marker character; the x axis is the epoch index
    (or cumulative runtime when ``by_runtime``), the y axis is F1 scaled
    to the observed range.  Curves with no points are skipped.
    """
    markers = "*o+x#@%&"
    plotted = [curve for curve in curves if curve.points]
    if not plotted:
        return "(no curve data)"
    xs_of = (
        (lambda c: c.runtimes()) if by_runtime else (lambda c: [float(e) for e in c.epochs()])
    )
    x_max = max(max(xs_of(curve)) for curve in plotted)
    x_min = min(min(xs_of(curve)) for curve in plotted)
    y_values = [p.f1 for curve in plotted for p in curve.points]
    y_min, y_max = min(y_values), max(y_values)
    if y_max - y_min < 1e-9:
        y_max = y_min + 1e-9
    if x_max - x_min < 1e-9:
        x_max = x_min + 1e-9

    grid = [[" "] * width for _ in range(height)]
    for index, curve in enumerate(plotted):
        marker = markers[index % len(markers)]
        for x, y in zip(xs_of(curve), curve.f1_scores()):
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = [
        f"F1 {y_max:.3f} ┤" + "".join(grid[0]),
    ]
    for row in grid[1:-1]:
        lines.append(" " * 9 + "│" + "".join(row))
    lines.append(f"F1 {y_min:.3f} ┤" + "".join(grid[-1]))
    axis_label = "runtime (s)" if by_runtime else "epoch"
    lines.append(" " * 10 + "└" + "─" * (width - 1))
    lines.append(
        " " * 10 + f"{x_min:.0f}".ljust(width - 8) + f"{x_max:.0f} {axis_label}"
    )
    legend = "  ".join(
        f"{markers[i % len(markers)]}={curve.model_name}"
        for i, curve in enumerate(plotted)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)
