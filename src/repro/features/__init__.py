"""Feature extraction: SFE statistics and the Lee et al. 80 features.

Graph flattening for classical models lives in
:mod:`repro.graphs.flatten` (it consumes constructed address graphs).
"""

from repro.features.sfe import (
    SFE_DIM,
    SFE_FEATURE_NAMES,
    sfe_matrix,
    sfe_matrix_segments,
    sfe_vector,
    signed_log1p,
)
from repro.features.address_features import (
    LEE_FEATURE_DIM,
    extract_address_features,
    extract_feature_matrix,
)

__all__ = [
    "SFE_DIM",
    "SFE_FEATURE_NAMES",
    "sfe_matrix",
    "sfe_matrix_segments",
    "sfe_vector",
    "signed_log1p",
    "LEE_FEATURE_DIM",
    "extract_address_features",
    "extract_feature_matrix",
]
