"""The Lee et al. 80-feature transaction-history summary.

The Table IV baseline "Lee et al. with Random Forest / ANN" classifies
addresses from 80 hand-crafted features extracted from the raw transaction
history (counts, value statistics per flow direction, inter-transaction
intervals, and structural aggregates).  The published paper enumerates the
feature families rather than an exact list; this module reconstructs an
80-dimensional summary from those families:

========================  ====  =======================================
Group                     Dims  Contents
========================  ====  =======================================
Basic counts               8    tx totals, direction counts and ratios,
                                coinbase receipts, lifetime
Received-value SFE        15    statistics of incoming amounts
Spent-value SFE           15    statistics of outgoing amounts
Net-flow SFE              15    statistics of per-tx net flows
Interval SFE              15    statistics of inter-transaction gaps
Structure                 12    fan-in/fan-out shape, counterparties,
                                fees, rates
========================  ====  =======================================
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.chain.explorer import ChainIndex
from repro.features.sfe import SFE_DIM, sfe_vector, signed_log1p

__all__ = [
    "LEE_FEATURE_DIM",
    "extract_address_features",
    "extract_feature_matrix",
]

_BASIC_DIMS = 8
_STRUCTURE_DIMS = 12
LEE_FEATURE_DIM = _BASIC_DIMS + 4 * SFE_DIM + _STRUCTURE_DIMS  # == 80

_SECONDS_PER_DAY = 86_400.0


def extract_address_features(
    index: ChainIndex, address: str, raw: bool = False
) -> np.ndarray:
    """The 80-dimensional Lee et al. feature vector for ``address``.

    By default value- and time-scaled dimensions are compressed with
    :func:`~repro.features.sfe.signed_log1p` so tree *and* neural models
    can consume the same vector.  ``raw=True`` keeps satoshi magnitudes —
    the original Lee et al. pipeline, under which scale-sensitive models
    (their ANN) underperform scale-invariant ones (their random forest),
    reproducing the paper's Table IV gap.
    """
    records = index.records_for(address)
    transactions = index.transactions_of(address)

    received: List[float] = []
    spent: List[float] = []
    net_flows: List[float] = []
    n_in = n_out = n_self = n_coinbase = 0
    for record, tx in zip(records, transactions):
        net_flows.append(float(record.net_value))
        if record.net_value > 0:
            n_in += 1
            received.append(float(record.net_value))
        elif record.net_value < 0:
            n_out += 1
            spent.append(float(-record.net_value))
        else:
            n_self += 1
        if tx.is_coinbase:
            n_coinbase += 1

    n_tx = len(records)
    timestamps = np.array([r.timestamp for r in records], dtype=np.float64)
    lifetime = float(timestamps[-1] - timestamps[0]) if n_tx > 1 else 0.0
    intervals = np.diff(timestamps) if n_tx > 1 else np.zeros(0)

    basic = np.array(
        [
            n_tx,
            n_in,
            n_out,
            n_self,
            n_coinbase,
            n_in / n_tx if n_tx else 0.0,
            n_out / n_tx if n_tx else 0.0,
            lifetime,
        ],
        dtype=np.float64,
    )

    structure = _structure_features(transactions, address, lifetime)

    vector = np.concatenate(
        [
            basic,
            sfe_vector(received),
            sfe_vector(spent),
            sfe_vector(net_flows),
            sfe_vector(intervals),
            structure,
        ]
    )
    if raw:
        return vector
    return signed_log1p(vector)


def _structure_features(
    transactions: Sequence, address: str, lifetime: float
) -> np.ndarray:
    """12 structural aggregates over the address's transactions."""
    if not transactions:
        return np.zeros(_STRUCTURE_DIMS, dtype=np.float64)

    input_counts = []
    output_counts = []
    fees = []
    counterparties = set()
    fanout_txs = 0
    fanin_txs = 0
    sender_txs = 0
    for tx in transactions:
        input_counts.append(len(tx.inputs))
        output_counts.append(len(tx.outputs))
        counterparties.update(tx.addresses())
        is_sender = any(inp.address == address for inp in tx.inputs)
        if is_sender:
            sender_txs += 1
            fees.append(float(tx.fee))
            if len(tx.outputs) > 5:
                fanout_txs += 1
        if any(out.address == address for out in tx.outputs) and len(tx.inputs) > 5:
            fanin_txs += 1
    counterparties.discard(address)

    n_tx = len(transactions)
    lifetime_days = max(lifetime / _SECONDS_PER_DAY, 1e-9)
    return np.array(
        [
            float(np.mean(input_counts)),
            float(np.max(input_counts)),
            float(np.mean(output_counts)),
            float(np.max(output_counts)),
            float(len(counterparties)),
            len(counterparties) / n_tx,
            float(np.sum(fees)) if fees else 0.0,
            float(np.mean(fees)) if fees else 0.0,
            sender_txs / n_tx,
            fanout_txs / max(sender_txs, 1),
            fanin_txs / n_tx,
            n_tx / lifetime_days,
        ],
        dtype=np.float64,
    )


def extract_feature_matrix(
    index: ChainIndex, addresses: Sequence[str], raw: bool = False
) -> np.ndarray:
    """Stack :func:`extract_address_features` over ``addresses``."""
    if not addresses:
        return np.zeros((0, LEE_FEATURE_DIM), dtype=np.float64)
    return np.stack(
        [extract_address_features(index, a, raw=raw) for a in addresses]
    )
