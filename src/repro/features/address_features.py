"""The Lee et al. 80-feature transaction-history summary.

The Table IV baseline "Lee et al. with Random Forest / ANN" classifies
addresses from 80 hand-crafted features extracted from the raw transaction
history (counts, value statistics per flow direction, inter-transaction
intervals, and structural aggregates).  The published paper enumerates the
feature families rather than an exact list; this module reconstructs an
80-dimensional summary from those families:

========================  ====  =======================================
Group                     Dims  Contents
========================  ====  =======================================
Basic counts               8    tx totals, direction counts and ratios,
                                coinbase receipts, lifetime
Received-value SFE        15    statistics of incoming amounts
Spent-value SFE           15    statistics of outgoing amounts
Net-flow SFE              15    statistics of per-tx net flows
Interval SFE              15    statistics of inter-transaction gaps
Structure                 12    fan-in/fan-out shape, counterparties,
                                fees, rates
========================  ====  =======================================

Extraction is columnar: each address's involvement records are pulled
once into ndarray columns (net flows, timestamps) and every per-record
Python branch is a vectorized mask.  Per-transaction shape columns
(input/output counts, fee, participant sets) are computed once per
transaction and memoised, so :func:`extract_feature_matrix` shares them
across the many addresses that co-occur in the same transactions instead
of re-walking each transaction's inputs and outputs per address.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.chain.explorer import ChainIndex
from repro.features.sfe import SFE_DIM, sfe_vector, signed_log1p

__all__ = [
    "LEE_FEATURE_DIM",
    "extract_address_features",
    "extract_feature_matrix",
]

_BASIC_DIMS = 8
_STRUCTURE_DIMS = 12
LEE_FEATURE_DIM = _BASIC_DIMS + 4 * SFE_DIM + _STRUCTURE_DIMS  # == 80

_SECONDS_PER_DAY = 86_400.0


class _TxColumns:
    """Per-transaction shape columns, address-independent and cacheable."""

    __slots__ = (
        "num_inputs",
        "num_outputs",
        "fee",
        "is_coinbase",
        "input_addresses",
        "output_addresses",
        "addresses",
    )

    def __init__(self, tx) -> None:
        self.num_inputs = len(tx.inputs)
        self.num_outputs = len(tx.outputs)
        self.fee = float(tx.fee)
        self.is_coinbase = tx.is_coinbase
        self.input_addresses = frozenset(inp.address for inp in tx.inputs)
        self.output_addresses = frozenset(out.address for out in tx.outputs)
        self.addresses = self.input_addresses | self.output_addresses


def _tx_columns(
    transactions: Sequence, cache: Optional[Dict[str, _TxColumns]]
) -> List[_TxColumns]:
    if cache is None:
        return [_TxColumns(tx) for tx in transactions]
    columns = []
    for tx in transactions:
        col = cache.get(tx.txid)
        if col is None:
            col = cache[tx.txid] = _TxColumns(tx)
        columns.append(col)
    return columns


def _extract(
    index: ChainIndex,
    address: str,
    raw: bool,
    cache: Optional[Dict[str, _TxColumns]],
) -> np.ndarray:
    records = index.records_for(address)
    columns = _tx_columns(index.transactions_of(address), cache)

    n_tx = len(records)
    net = np.fromiter(
        (r.net_value for r in records), dtype=np.float64, count=n_tx
    )
    timestamps = np.fromiter(
        (r.timestamp for r in records), dtype=np.float64, count=n_tx
    )

    inflow = net > 0
    outflow = net < 0
    n_in = int(inflow.sum())
    n_out = int(outflow.sum())
    n_coinbase = sum(1 for c in columns if c.is_coinbase)
    lifetime = float(timestamps[-1] - timestamps[0]) if n_tx > 1 else 0.0
    intervals = np.diff(timestamps) if n_tx > 1 else np.zeros(0)

    basic = np.array(
        [
            n_tx,
            n_in,
            n_out,
            n_tx - n_in - n_out,
            n_coinbase,
            n_in / n_tx if n_tx else 0.0,
            n_out / n_tx if n_tx else 0.0,
            lifetime,
        ],
        dtype=np.float64,
    )

    structure = _structure_features(columns, address, lifetime)

    vector = np.concatenate(
        [
            basic,
            sfe_vector(net[inflow]),
            sfe_vector(-net[outflow]),
            sfe_vector(net),
            sfe_vector(intervals),
            structure,
        ]
    )
    if raw:
        return vector
    return signed_log1p(vector)


def extract_address_features(
    index: ChainIndex, address: str, raw: bool = False
) -> np.ndarray:
    """The 80-dimensional Lee et al. feature vector for ``address``.

    By default value- and time-scaled dimensions are compressed with
    :func:`~repro.features.sfe.signed_log1p` so tree *and* neural models
    can consume the same vector.  ``raw=True`` keeps satoshi magnitudes —
    the original Lee et al. pipeline, under which scale-sensitive models
    (their ANN) underperform scale-invariant ones (their random forest),
    reproducing the paper's Table IV gap.
    """
    return _extract(index, address, raw, cache=None)


def _structure_features(
    columns: Sequence[_TxColumns], address: str, lifetime: float
) -> np.ndarray:
    """12 structural aggregates over the address's transactions."""
    if not columns:
        return np.zeros(_STRUCTURE_DIMS, dtype=np.float64)

    n_tx = len(columns)
    input_counts = np.fromiter(
        (c.num_inputs for c in columns), dtype=np.float64, count=n_tx
    )
    output_counts = np.fromiter(
        (c.num_outputs for c in columns), dtype=np.float64, count=n_tx
    )
    fees = np.fromiter((c.fee for c in columns), dtype=np.float64, count=n_tx)
    is_sender = np.fromiter(
        (address in c.input_addresses for c in columns), dtype=bool, count=n_tx
    )
    is_receiver = np.fromiter(
        (address in c.output_addresses for c in columns),
        dtype=bool,
        count=n_tx,
    )
    counterparties = set().union(*(c.addresses for c in columns))
    counterparties.discard(address)

    sender_txs = int(is_sender.sum())
    sender_fees = fees[is_sender]
    fanout_txs = int((is_sender & (output_counts > 5)).sum())
    fanin_txs = int((is_receiver & (input_counts > 5)).sum())
    lifetime_days = max(lifetime / _SECONDS_PER_DAY, 1e-9)
    return np.array(
        [
            float(np.mean(input_counts)),
            float(np.max(input_counts)),
            float(np.mean(output_counts)),
            float(np.max(output_counts)),
            float(len(counterparties)),
            len(counterparties) / n_tx,
            float(np.sum(sender_fees)) if sender_txs else 0.0,
            float(np.mean(sender_fees)) if sender_txs else 0.0,
            sender_txs / n_tx,
            fanout_txs / max(sender_txs, 1),
            fanin_txs / n_tx,
            n_tx / lifetime_days,
        ],
        dtype=np.float64,
    )


def extract_feature_matrix(
    index: ChainIndex, addresses: Sequence[str], raw: bool = False
) -> np.ndarray:
    """Stack :func:`extract_address_features` over ``addresses``.

    The fast path for dataset assembly: per-transaction shape columns
    are computed once and shared across every queried address touching
    that transaction, so the per-address cost is one pass over its own
    record arrays rather than a re-walk of each transaction's inputs and
    outputs.  Rows are bit-identical to per-address
    :func:`extract_address_features` calls.
    """
    if not addresses:
        return np.zeros((0, LEE_FEATURE_DIM), dtype=np.float64)
    cache: Dict[str, _TxColumns] = {}
    return np.stack([_extract(index, a, raw, cache) for a in addresses])
