"""Statistical Feature Extraction (SFE) — paper §III-A, Eq. (1)–(2).

SFE summarises a bag of transferred amounts into a fixed 15-dimensional
statistics vector.  The paper's list:

- max, min, sum, mean, and number of the input;
- range, mid-range, percentile, variance, and standard deviation;
- mean absolute deviation and coefficient of variation;
- kurtosis, skewness, and tilt.

"Percentile" is taken as the median (50th percentile); "tilt" — a
non-standard term — is implemented as ``mean − median``, the numerator of
Pearson's second skewness coefficient, i.e. how far the heavy tail drags
the mean off the bulk of the distribution.

All statistics are population (not sample) moments and are defined for
every input size: an empty input maps to the zero vector, a singleton has
zero dispersion and zero-defined shape statistics.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = ["SFE_DIM", "SFE_FEATURE_NAMES", "sfe_vector", "signed_log1p"]

SFE_FEATURE_NAMES: Sequence[str] = (
    "max",
    "min",
    "sum",
    "mean",
    "count",
    "range",
    "midrange",
    "median",
    "variance",
    "std",
    "mad",
    "cv",
    "kurtosis",
    "skewness",
    "tilt",
)

SFE_DIM = len(SFE_FEATURE_NAMES)


def sfe_vector(values: Iterable[float]) -> np.ndarray:
    """The 15-dimensional SFE statistics of ``values``.

    Parameters
    ----------
    values:
        Transferred amounts (any real numbers; satoshis in practice).

    Returns
    -------
    numpy.ndarray
        Float64 vector ordered as :data:`SFE_FEATURE_NAMES`.
    """
    array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                       dtype=np.float64)
    if array.ndim != 1:
        array = array.ravel()
    if array.size == 0:
        return np.zeros(SFE_DIM, dtype=np.float64)

    maximum = float(array.max())
    minimum = float(array.min())
    total = float(array.sum())
    mean = float(array.mean())
    count = float(array.size)
    value_range = maximum - minimum
    midrange = (maximum + minimum) / 2.0
    median = float(np.median(array))
    variance = float(array.var())
    std = float(np.sqrt(variance))
    mad = float(np.abs(array - mean).mean())
    cv = std / abs(mean) if mean != 0.0 else 0.0
    # Constant inputs can leave a ~1e-17 residual std from rounding;
    # shape statistics on that residual are pure noise, so a relative
    # degeneracy threshold zeroes them out.
    magnitude = max(abs(maximum), abs(minimum), 1e-300)
    if std > 1e-12 * magnitude:
        z = (array - mean) / std
        skewness = float(np.mean(z**3))
        kurtosis = float(np.mean(z**4) - 3.0)  # excess kurtosis
    else:
        skewness = 0.0
        kurtosis = 0.0
    tilt = mean - median

    return np.array(
        [
            maximum,
            minimum,
            total,
            mean,
            count,
            value_range,
            midrange,
            median,
            variance,
            std,
            mad,
            cv,
            kurtosis,
            skewness,
            tilt,
        ],
        dtype=np.float64,
    )


def signed_log1p(array: np.ndarray) -> np.ndarray:
    """Signed log compression: ``sign(x) * log1p(|x|)``.

    Satoshi-scale statistics span ~10 orders of magnitude; this monotone
    transform bounds them for neural-network consumption while preserving
    sign and ordering.  Applied element-wise; returns a new array.
    """
    array = np.asarray(array, dtype=np.float64)
    return np.sign(array) * np.log1p(np.abs(array))
