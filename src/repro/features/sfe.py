"""Statistical Feature Extraction (SFE) — paper §III-A, Eq. (1)–(2).

SFE summarises a bag of transferred amounts into a fixed 15-dimensional
statistics vector.  The paper's list:

- max, min, sum, mean, and number of the input;
- range, mid-range, percentile, variance, and standard deviation;
- mean absolute deviation and coefficient of variation;
- kurtosis, skewness, and tilt.

"Percentile" is taken as the median (50th percentile); "tilt" — a
non-standard term — is implemented as ``mean − median``, the numerator of
Pearson's second skewness coefficient, i.e. how far the heavy tail drags
the mean off the bulk of the distribution.

All statistics are population (not sample) moments and are defined for
every input size: an empty input maps to the zero vector, a singleton has
zero dispersion and zero-defined shape statistics.

:func:`sfe_vector` summarises one bag; :func:`sfe_matrix` summarises many
bags at once in a single segmented ndarray pass (one sort plus a handful
of ``ufunc.reduceat`` reductions over the concatenated bags) — the hot
path for assembling per-node feature matrices, where a slice graph
carries one value bag per node.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = [
    "SFE_DIM",
    "SFE_FEATURE_NAMES",
    "sfe_vector",
    "sfe_matrix",
    "sfe_matrix_segments",
    "signed_log1p",
]

SFE_FEATURE_NAMES: Sequence[str] = (
    "max",
    "min",
    "sum",
    "mean",
    "count",
    "range",
    "midrange",
    "median",
    "variance",
    "std",
    "mad",
    "cv",
    "kurtosis",
    "skewness",
    "tilt",
)

SFE_DIM = len(SFE_FEATURE_NAMES)


def sfe_vector(values: Iterable[float]) -> np.ndarray:
    """The 15-dimensional SFE statistics of ``values``.

    Parameters
    ----------
    values:
        Transferred amounts (any real numbers; satoshis in practice).

    Returns
    -------
    numpy.ndarray
        Float64 vector ordered as :data:`SFE_FEATURE_NAMES`.
    """
    array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                       dtype=np.float64)
    if array.ndim != 1:
        array = array.ravel()
    if array.size == 0:
        return np.zeros(SFE_DIM, dtype=np.float64)

    maximum = float(array.max())
    minimum = float(array.min())
    total = float(array.sum())
    mean = float(array.mean())
    count = float(array.size)
    value_range = maximum - minimum
    midrange = (maximum + minimum) / 2.0
    median = float(np.median(array))
    variance = float(array.var())
    std = float(np.sqrt(variance))
    mad = float(np.abs(array - mean).mean())
    cv = std / abs(mean) if mean != 0.0 else 0.0
    # Constant inputs can leave a ~1e-17 residual std from rounding;
    # shape statistics on that residual are pure noise, so a relative
    # degeneracy threshold zeroes them out.
    magnitude = max(abs(maximum), abs(minimum), 1e-300)
    if std > 1e-12 * magnitude:
        z = (array - mean) / std
        skewness = float(np.mean(z**3))
        kurtosis = float(np.mean(z**4) - 3.0)  # excess kurtosis
    else:
        skewness = 0.0
        kurtosis = 0.0
    tilt = mean - median

    return np.array(
        [
            maximum,
            minimum,
            total,
            mean,
            count,
            value_range,
            midrange,
            median,
            variance,
            std,
            mad,
            cv,
            kurtosis,
            skewness,
            tilt,
        ],
        dtype=np.float64,
    )


def sfe_matrix(bags: Sequence[Iterable[float]]) -> np.ndarray:
    """SFE statistics of many value bags at once: shape ``(len(bags), 15)``.

    Row ``i`` equals ``sfe_vector(bags[i])`` up to floating-point
    summation order (segmented ``reduceat`` reductions accumulate
    sequentially where :func:`numpy.sum` is pairwise; the test suite
    bounds the drift at 1e-9 relative).  Empty bags map to zero rows.
    Work is one ``O(N log N)`` sort of the concatenated bags plus a
    fixed number of ``O(N)`` segmented reductions, replacing a Python
    loop of per-bag :func:`sfe_vector` calls.
    """
    k = len(bags)
    if k == 0:
        return np.zeros((0, SFE_DIM), dtype=np.float64)
    arrays = [
        np.asarray(
            bag if isinstance(bag, np.ndarray) else list(bag),
            dtype=np.float64,
        ).ravel()
        for bag in bags
    ]
    lengths = np.fromiter((a.size for a in arrays), dtype=np.int64, count=k)
    indptr = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    if indptr[-1] == 0:
        return np.zeros((k, SFE_DIM), dtype=np.float64)
    flat = np.concatenate([a for a in arrays if a.size])
    return sfe_matrix_segments(flat, indptr)


def sfe_matrix_segments(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """SFE statistics of CSR-style segmented value bags — zero-copy.

    ``values`` holds ``k`` concatenated bags and ``indptr`` (length
    ``k + 1``) their boundaries: bag ``i`` is
    ``values[indptr[i]:indptr[i + 1]]``.  This is the native bag layout
    of :class:`~repro.graphs.arrays.ArrayGraph`, so per-node feature
    assembly runs straight over the stored arrays without materialising
    per-bag lists.  Numerically identical to :func:`sfe_matrix` on the
    equivalent list of bags (empty bags map to zero rows).
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    indptr = np.asarray(indptr, dtype=np.int64)
    k = indptr.shape[0] - 1
    lengths = np.diff(indptr)
    nonempty = np.flatnonzero(lengths)
    out = np.zeros((k, SFE_DIM), dtype=np.float64)
    if nonempty.size == 0:
        return out

    flat = values
    seg_lengths = lengths[nonempty]
    starts = indptr[nonempty]
    segment_ids = np.repeat(np.arange(nonempty.size), seg_lengths)

    maximum = np.maximum.reduceat(flat, starts)
    minimum = np.minimum.reduceat(flat, starts)
    total = np.add.reduceat(flat, starts)
    count = seg_lengths.astype(np.float64)
    mean = total / count

    # Median via one segmented sort: bags are contiguous in ``flat``, so
    # a lexsort keyed by (segment, value) orders each bag in place.
    ordered = flat[np.lexsort((flat, segment_ids))]
    low = ordered[starts + (seg_lengths - 1) // 2]
    high = ordered[starts + seg_lengths // 2]
    median = 0.5 * (low + high)

    deviation = flat - mean[segment_ids]
    variance = np.add.reduceat(deviation * deviation, starts) / count
    std = np.sqrt(variance)
    mad = np.add.reduceat(np.abs(deviation), starts) / count
    cv = np.where(mean != 0.0, std / np.where(mean != 0.0, np.abs(mean), 1.0), 0.0)

    # Same degeneracy threshold as sfe_vector: shape statistics of a
    # numerically-constant bag are rounding noise and are zeroed.
    magnitude = np.maximum(np.maximum(np.abs(maximum), np.abs(minimum)), 1e-300)
    shaped = std > 1e-12 * magnitude
    safe_std = np.where(shaped, std, 1.0)
    z = deviation / safe_std[segment_ids]
    z2 = z * z
    skewness = np.where(
        shaped, np.add.reduceat(z2 * z, starts) / count, 0.0
    )
    kurtosis = np.where(
        shaped, np.add.reduceat(z2 * z2, starts) / count - 3.0, 0.0
    )

    out[nonempty] = np.column_stack(
        [
            maximum,
            minimum,
            total,
            mean,
            count,
            maximum - minimum,
            (maximum + minimum) / 2.0,
            median,
            variance,
            std,
            mad,
            cv,
            kurtosis,
            skewness,
            mean - median,
        ]
    )
    return out


def signed_log1p(array: np.ndarray) -> np.ndarray:
    """Signed log compression: ``sign(x) * log1p(|x|)``.

    Satoshi-scale statistics span ~10 orders of magnitude; this monotone
    transform bounds them for neural-network consumption while preserving
    sign and ordering.  Applied element-wise; returns a new array.
    """
    array = np.asarray(array, dtype=np.float64)
    return np.sign(array) * np.log1p(np.abs(array))
