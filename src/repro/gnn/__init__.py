"""Graph neural networks: GFN (the paper's model), GCN and DiffPool.

All three share the :class:`~repro.gnn.base.GraphClassifier` interface
(batch preparation → logits / embeddings) and the
:func:`~repro.gnn.training.fit_graph_classifier` training loop.
"""

from repro.gnn.base import GraphClassifier
from repro.gnn.data import EncodedGraph, GraphBatch, encode_graph, encode_sequences
from repro.gnn.diffpool import DiffPool
from repro.gnn.gcn import GCN
from repro.gnn.gfn import GFN, augment_features
from repro.gnn import plans  # noqa: F401  (registers inference-plan lowerings)
from repro.gnn.readout import mean_readout, sum_readout
from repro.gnn.training import (
    GraphTrainingConfig,
    class_weight_vector,
    fit_graph_classifier,
)

__all__ = [
    "GraphClassifier",
    "EncodedGraph",
    "GraphBatch",
    "encode_graph",
    "encode_sequences",
    "DiffPool",
    "GCN",
    "GFN",
    "augment_features",
    "mean_readout",
    "sum_readout",
    "GraphTrainingConfig",
    "class_weight_vector",
    "fit_graph_classifier",
]
