"""Shared interface for graph-level classifiers (GFN / GCN / DiffPool)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.gnn.data import EncodedGraph
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad

__all__ = ["GraphClassifier"]


class GraphClassifier(Module):
    """Base class: batch preparation + logits/embedding heads.

    Subclasses implement :meth:`prepare_batch` (numpy-side feature
    assembly, cacheable per graph) and :meth:`forward`/:meth:`embed`
    (autograd-side computation).
    """

    num_classes: int
    embedding_dim: int

    def prepare_batch(self, graphs: Sequence[EncodedGraph]):
        """Assemble a model-specific numpy payload for a batch."""
        raise NotImplementedError

    def forward(self, payload) -> Tensor:
        """Class logits of shape ``(num_graphs, num_classes)``."""
        raise NotImplementedError

    def embed(self, payload) -> Tensor:
        """Pre-classifier graph embeddings ``(num_graphs, embedding_dim)``."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Convenience inference helpers
    # ------------------------------------------------------------------ #

    def predict(
        self, graphs: Sequence[EncodedGraph], batch_size: int = 64
    ) -> np.ndarray:
        """Predicted class per graph."""
        self.eval()
        outputs: List[np.ndarray] = []
        with no_grad():
            for start in range(0, len(graphs), batch_size):
                payload = self.prepare_batch(graphs[start : start + batch_size])
                logits = self.forward(payload)
                outputs.append(np.argmax(logits.data, axis=1))
        return np.concatenate(outputs) if outputs else np.zeros(0, dtype=np.int64)

    def embed_graphs(
        self, graphs: Sequence[EncodedGraph], batch_size: int = 64
    ) -> np.ndarray:
        """Embeddings for every graph, row-aligned with the input order."""
        self.eval()
        outputs: List[np.ndarray] = []
        with no_grad():
            for start in range(0, len(graphs), batch_size):
                payload = self.prepare_batch(graphs[start : start + batch_size])
                outputs.append(self.embed(payload).data)
        if not outputs:
            return np.zeros((0, self.embedding_dim))
        return np.concatenate(outputs, axis=0)
