"""Shared interface for graph-level classifiers (GFN / GCN / DiffPool)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.gnn.data import EncodedGraph
from repro.nn.inference import plan_call
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad

__all__ = ["GraphClassifier"]


class GraphClassifier(Module):
    """Base class: batch preparation + logits/embedding heads.

    Subclasses implement :meth:`prepare_batch` (numpy-side feature
    assembly, cacheable per graph) and :meth:`forward`/:meth:`embed`
    (autograd-side computation).
    """

    num_classes: int
    embedding_dim: int

    def prepare_batch(self, graphs: Sequence[EncodedGraph]):
        """Assemble a model-specific numpy payload for a batch."""
        raise NotImplementedError

    def forward(self, payload) -> Tensor:
        """Class logits of shape ``(num_graphs, num_classes)``."""
        raise NotImplementedError

    def embed(self, payload) -> Tensor:
        """Pre-classifier graph embeddings ``(num_graphs, embedding_dim)``."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Convenience inference helpers
    # ------------------------------------------------------------------ #

    def predict(
        self, graphs: Sequence[EncodedGraph], batch_size: int = 64
    ) -> np.ndarray:
        """Predicted class per graph.

        Batches run through a compiled forward plan when the model has a
        registered lowering (bit-identical to the tape), falling back to
        the ordinary tape forward otherwise.
        """
        self.eval()
        outputs: List[np.ndarray] = []
        with no_grad():
            for start in range(0, len(graphs), batch_size):
                batch = graphs[start : start + batch_size]
                # Batch-level lowerings assemble inputs straight into
                # engine staging buffers, skipping prepare_batch's
                # per-call allocation; payload-level plans and the tape
                # remain as (bit-identical) fallbacks.
                logits = plan_call(self, "forward_batch", batch)
                if logits is None:
                    payload = self.prepare_batch(batch)
                    logits = plan_call(self, "forward", payload)
                    if logits is None:
                        logits = self.forward(payload).data
                outputs.append(np.argmax(logits, axis=1))
        return np.concatenate(outputs) if outputs else np.zeros(0, dtype=np.int64)

    def embed_graphs(
        self, graphs: Sequence[EncodedGraph], batch_size: int = 64
    ) -> np.ndarray:
        """Embeddings for every graph, row-aligned with the input order.

        Like :meth:`predict`, prefers the tapeless plan path (the serving
        hot path runs through here once per cache-missing batch).
        """
        self.eval()
        outputs: List[np.ndarray] = []
        with no_grad():
            for start in range(0, len(graphs), batch_size):
                batch = graphs[start : start + batch_size]
                embedded = plan_call(self, "embed_batch", batch)
                if embedded is None:
                    payload = self.prepare_batch(batch)
                    embedded = plan_call(self, "embed", payload)
                    if embedded is None:
                        embedded = self.embed(payload).data
                outputs.append(embedded)
        if not outputs:
            return np.zeros((0, self.embedding_dim))
        return np.concatenate(outputs, axis=0)
