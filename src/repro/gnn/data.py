"""Graph encoding and block-diagonal batching for GNN training.

An :class:`EncodedGraph` freezes an address graph into numeric form:
final node features plus the renormalised adjacency Ã (Eq. 12).  A
:class:`GraphBatch` stacks several encoded graphs into one disconnected
super-graph (block-diagonal Ã, concatenated features, and a segment-id
vector mapping nodes back to graphs for readout).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.graphs.arrays import ArrayGraph
from repro.graphs.matrices import normalized_adjacency
from repro.graphs.model import AddressGraph

__all__ = ["EncodedGraph", "GraphBatch", "encode_graph", "encode_sequences"]

#: Both graph flavours encode identically (same ``feature_matrix`` /
#: ``adjacency_matrix`` contract); the pipeline natively yields
#: :class:`~repro.graphs.arrays.ArrayGraph`.
AnyGraph = Union[AddressGraph, ArrayGraph]


@dataclass
class EncodedGraph:
    """A numeric snapshot of one address-slice graph.

    ``cache`` holds model-specific precomputations (e.g. GFN's propagated
    feature matrix) keyed by a model-chosen string.
    """

    features: np.ndarray
    adjacency: sp.csr_matrix
    label: int
    address: str
    slice_index: int
    cache: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the graph."""
        return self.features.shape[0]

    @property
    def feature_dim(self) -> int:
        """Per-node feature width."""
        return self.features.shape[1]

    @property
    def nbytes(self) -> int:
        """Bytes held by the feature/adjacency tensors *and* any
        model-specific precomputations in ``cache`` (e.g. GFN's
        propagated feature matrix, which often dominates a warm entry).
        Recomputed on access, so it stays accurate after models add to
        ``cache`` post-construction."""
        adjacency = self.adjacency
        return int(
            self.features.nbytes
            + adjacency.data.nbytes
            + adjacency.indices.nbytes
            + adjacency.indptr.nbytes
            + sum(array.nbytes for array in self.cache.values())
        )


def encode_graph(graph: AnyGraph, label: int = -1) -> EncodedGraph:
    """Freeze a slice graph (either flavour) for training/inference.

    On :class:`~repro.graphs.arrays.ArrayGraph` input the feature matrix
    is assembled straight from the stored bag/centrality columns — no
    per-node objects are touched anywhere on the encode path.
    """
    if graph.num_nodes == 0:
        raise ValidationError(
            f"cannot encode empty graph for {graph.center_address[:12]}"
        )
    return EncodedGraph(
        features=graph.feature_matrix(),
        adjacency=normalized_adjacency(graph),
        label=int(label),
        address=graph.center_address,
        slice_index=graph.slice_index,
    )


def encode_sequences(
    graphs_by_address: Dict[str, List[AnyGraph]],
    labels_by_address: Dict[str, int],
) -> Dict[str, List[EncodedGraph]]:
    """Encode every slice graph of every address, preserving slice order."""
    encoded: Dict[str, List[EncodedGraph]] = {}
    for address, graphs in graphs_by_address.items():
        label = labels_by_address.get(address, -1)
        encoded[address] = [
            encode_graph(graph, label=label)
            for graph in sorted(graphs, key=lambda g: g.slice_index)
        ]
    return encoded


class GraphBatch:
    """Several encoded graphs stacked into one block-diagonal system."""

    def __init__(self, graphs: Sequence[EncodedGraph]):
        if not graphs:
            raise ValidationError("GraphBatch needs at least one graph")
        dims = {g.feature_dim for g in graphs}
        if len(dims) != 1:
            raise ValidationError(f"inconsistent feature dims in batch: {dims}")
        self.graphs = list(graphs)
        self.features = np.concatenate([g.features for g in graphs], axis=0)
        self.adjacency = sp.block_diag(
            [g.adjacency for g in graphs], format="csr"
        )
        self.segments = np.concatenate(
            [
                np.full(g.num_nodes, index, dtype=np.int64)
                for index, g in enumerate(graphs)
            ]
        )
        self.labels = np.array([g.label for g in graphs], dtype=np.int64)

    @property
    def num_graphs(self) -> int:
        """Number of graphs in the batch."""
        return len(self.graphs)

    @property
    def num_nodes(self) -> int:
        """Total node count across the batch."""
        return self.features.shape[0]
