"""DiffPool baseline (Ying et al.; paper Table II and Figure 5).

One differentiable pooling level: an embedding GCN produces node states
``Z = ReLU(Ã X W_e)``, an assignment GCN produces soft cluster
assignments ``S = softmax(Ã X W_a)``, the graph is coarsened to
``X' = SᵀZ`` over a fixed number of clusters, a second embedding layer
runs on the coarsened graph with ``A' = SᵀÃS``, and SUM readout over
clusters yields the graph embedding.

Because ``A'`` is dense and graph-specific, graphs are processed per-item
(dense small matrices) rather than block-diagonally — matching the extra
runtime cost DiffPool shows in the paper's Figure 5.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.gnn.base import GraphClassifier
from repro.gnn.data import EncodedGraph
from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = ["DiffPool"]


class DiffPool(GraphClassifier):
    """Single-level DiffPool graph classifier."""

    def __init__(
        self,
        input_dim: int,
        num_classes: int,
        hidden_dim: int = 64,
        num_clusters: int = 8,
        rng: "int | np.random.Generator | None" = None,
    ):
        super().__init__()
        generator = as_generator(rng)
        self.input_dim = input_dim
        self.num_classes = num_classes
        self.hidden_dim = hidden_dim
        self.embedding_dim = hidden_dim
        self.num_clusters = num_clusters
        self.embed_layer = Linear(input_dim, hidden_dim, rng=generator)
        self.assign_layer = Linear(input_dim, num_clusters, rng=generator)
        self.coarse_layer = Linear(hidden_dim, hidden_dim, rng=generator)
        self.classifier = Linear(hidden_dim, num_classes, rng=generator)

    def prepare_batch(self, graphs: Sequence[EncodedGraph]) -> Dict:
        """Dense per-graph features and adjacencies."""
        items = [
            {
                "features": g.features,
                "adjacency": np.asarray(g.adjacency.todense()),
            }
            for g in graphs
        ]
        return {
            "items": items,
            "num_graphs": len(graphs),
            "labels": np.array([g.label for g in graphs], dtype=np.int64),
        }

    def _embed_one(self, features: np.ndarray, adjacency: np.ndarray) -> Tensor:
        x = Tensor(features)
        a = Tensor(adjacency)
        propagated = F.matmul(a, x)
        z = F.relu(self.embed_layer(propagated))  # (n, h)
        s = F.softmax(self.assign_layer(propagated), axis=1)  # (n, c)
        pooled_x = F.matmul(F.transpose(s), z)  # (c, h)
        pooled_a = F.matmul(F.matmul(F.transpose(s), a), s)  # (c, c)
        coarse = F.relu(self.coarse_layer(F.matmul(pooled_a, pooled_x)))
        return F.sum(coarse, axis=0, keepdims=True)  # (1, h)

    def embed(self, payload: Dict) -> Tensor:
        rows: List[Tensor] = [
            self._embed_one(item["features"], item["adjacency"])
            for item in payload["items"]
        ]
        return F.concatenate(rows, axis=0)

    def forward(self, payload: Dict) -> Tensor:
        return self.classifier(self.embed(payload))
