"""Graph Convolutional Network baseline (Kipf & Welling; paper Table II).

Two renormalised-adjacency convolutions with ReLU, SUM readout, linear
classifier.  Unlike GFN, every layer multiplies by Ã *inside* the
training loop, which is what makes GCN slower per epoch in Figure 5.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np
import scipy.sparse as sp

from repro.gnn.base import GraphClassifier
from repro.gnn.data import EncodedGraph
from repro.gnn.readout import sum_readout
from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = ["GCN"]


class GCN(GraphClassifier):
    """Two-layer GCN graph classifier with SUM readout."""

    def __init__(
        self,
        input_dim: int,
        num_classes: int,
        hidden_dim: int = 64,
        rng: "int | np.random.Generator | None" = None,
    ):
        super().__init__()
        generator = as_generator(rng)
        self.input_dim = input_dim
        self.num_classes = num_classes
        self.hidden_dim = hidden_dim
        self.embedding_dim = hidden_dim
        self.conv1 = Linear(input_dim, hidden_dim, rng=generator)
        self.conv2 = Linear(hidden_dim, hidden_dim, rng=generator)
        self.classifier = Linear(hidden_dim, num_classes, rng=generator)

    def prepare_batch(self, graphs: Sequence[EncodedGraph]) -> Dict:
        """Block-diagonal Ã plus concatenated raw features."""
        features = np.concatenate([g.features for g in graphs], axis=0)
        adjacency = sp.block_diag([g.adjacency for g in graphs], format="csr")
        segments = np.concatenate(
            [np.full(g.num_nodes, i, dtype=np.int64) for i, g in enumerate(graphs)]
        )
        return {
            "features": features,
            "adjacency": adjacency,
            "segments": segments,
            "num_graphs": len(graphs),
            "labels": np.array([g.label for g in graphs], dtype=np.int64),
        }

    def embed(self, payload: Dict) -> Tensor:
        adjacency = payload["adjacency"]
        x = Tensor(payload["features"])
        hidden = F.relu(F.spmm(adjacency, self.conv1(x)))
        hidden = F.relu(F.spmm(adjacency, self.conv2(hidden)))
        return sum_readout(hidden, payload["segments"], payload["num_graphs"])

    def forward(self, payload: Dict) -> Tensor:
        return self.classifier(self.embed(payload))
