"""Graph Feature Network — the paper's graph representation model (§III-B).

GFN (Chen, Bian & Sun, 2019) replaces stacked graph convolutions with a
*feature-propagation* preprocessing step followed by a plain node MLP:

- **Graph feature augmentation** (Eq. 13):
  ``X_G = [d, X, ÃX, Ã²X, …, ÃᵏX]`` — degrees plus k powers of the
  renormalised adjacency applied to the raw node features.  This is
  computed once per graph (no gradients flow through Ã), which is the
  source of GFN's training-speed advantage in the paper's Figure 5.
- **Node representation learning** (Eq. 14): an MLP on the augmented
  features.
- **Graph readout** (Eq. 15): SUM pooling, then a linear classifier.

The pre-classifier graph embedding is what the address-classification
stage consumes.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.gnn.base import GraphClassifier
from repro.gnn.data import EncodedGraph
from repro.gnn.readout import sum_readout
from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = ["GFN", "augment_features"]


def augment_features(graph: EncodedGraph, k: int) -> np.ndarray:
    """Eq. 13: ``[d, X, ÃX, …, ÃᵏX]`` for one encoded graph (cached)."""
    cache_key = f"gfn_k{k}"
    cached = graph.cache.get(cache_key)
    if cached is not None:
        return cached
    degrees = np.asarray(graph.adjacency.sum(axis=1)).reshape(-1, 1)
    blocks = [degrees, graph.features]
    propagated = graph.features
    for _ in range(k):
        propagated = np.asarray(graph.adjacency @ propagated)
        blocks.append(propagated)
    augmented = np.concatenate(blocks, axis=1)
    graph.cache[cache_key] = augmented
    return augmented


class GFN(GraphClassifier):
    """Graph Feature Network classifier.

    Parameters
    ----------
    input_dim:
        Raw node-feature width (``NODE_FEATURE_DIM``).
    num_classes:
        Output classes.
    hidden_dim:
        Width of the node MLP and of the graph embedding.
    k:
        Propagation depth of the feature augmentation (Eq. 13).
    """

    def __init__(
        self,
        input_dim: int,
        num_classes: int,
        hidden_dim: int = 64,
        k: int = 2,
        rng: "int | np.random.Generator | None" = None,
    ):
        super().__init__()
        if k < 0:
            raise ValidationError(f"k must be >= 0, got {k}")
        generator = as_generator(rng)
        self.input_dim = input_dim
        self.num_classes = num_classes
        self.hidden_dim = hidden_dim
        self.embedding_dim = hidden_dim
        self.k = k
        augmented_dim = 1 + input_dim * (k + 1)
        self.node_layer1 = Linear(augmented_dim, hidden_dim, rng=generator)
        self.node_layer2 = Linear(hidden_dim, hidden_dim, rng=generator)
        self.classifier = Linear(hidden_dim, num_classes, rng=generator)

    # ------------------------------------------------------------------ #
    # Batch assembly (numpy side)
    # ------------------------------------------------------------------ #

    def prepare_batch(self, graphs: Sequence[EncodedGraph]) -> Dict:
        """Concatenate augmented features + segment ids for readout."""
        features = np.concatenate(
            [augment_features(g, self.k) for g in graphs], axis=0
        )
        segments = np.concatenate(
            [np.full(g.num_nodes, i, dtype=np.int64) for i, g in enumerate(graphs)]
        )
        return {
            "features": features,
            "segments": segments,
            "num_graphs": len(graphs),
            "labels": np.array([g.label for g in graphs], dtype=np.int64),
        }

    # ------------------------------------------------------------------ #
    # Differentiable computation
    # ------------------------------------------------------------------ #

    def embed(self, payload: Dict) -> Tensor:
        x = Tensor(payload["features"])
        hidden = F.relu(self.node_layer1(x))
        hidden = F.relu(self.node_layer2(hidden))
        return sum_readout(hidden, payload["segments"], payload["num_graphs"])

    def forward(self, payload: Dict) -> Tensor:
        return self.classifier(self.embed(payload))
