"""Plan lowerings for the graph classifiers (GFN / GCN / DiffPool).

Importing this module registers ``embed`` and ``forward`` lowerings with
the :mod:`repro.nn.inference` engine; :meth:`GraphClassifier.predict`
and :meth:`GraphClassifier.embed_graphs` then route batches through
compiled plans automatically (with tape fallback).  All lowerings take
the model's ``prepare_batch`` payload, so the numpy-side feature
assembly and per-graph caches are shared between the two paths.

Per-call variability is split the engine's way: array values (features,
segment ids) stream through arena input buffers, the GCN's block-
diagonal CSR adjacency rides in an :class:`ObjectSlot`, and batch
geometry (graph count, node counts) is part of the plan signature.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.data import EncodedGraph
from repro.gnn.diffpool import DiffPool
from repro.gnn.gcn import GCN
from repro.gnn.gfn import GFN, augment_features
from repro.nn.inference.engine import register_lowering, staging_input
from repro.nn.inference.kernels import (
    k_copy,
    k_matmul,
    k_relu,
    k_segment_sum,
    k_softmax,
    k_spmm,
    k_sum,
)
from repro.nn.inference.lowerings import emit

__all__ = []


def _relu_(b, buffer):
    mask = b.alloc(buffer.shape, np.bool_)
    return b.step(k_relu, buffer, buffer, mask)


def _prepare_segment_payload(module, args):
    """GFN/GCN payloads: features + segment ids (+ CSR for GCN)."""
    if len(args) != 1 or not isinstance(args[0], dict):
        return None
    payload = args[0]
    try:
        features = np.asarray(payload["features"], dtype=np.float64)
        segments = np.asarray(payload["segments"], dtype=np.int64)
        num_graphs = int(payload["num_graphs"])
    except (KeyError, TypeError, ValueError):
        return None
    arrays = [features, segments]
    objects = []
    if isinstance(module, GCN):
        adjacency = payload.get("adjacency")
        if adjacency is None:
            return None
        objects.append(adjacency)
    return arrays, objects, ("graphs", num_graphs)


def _emit_gfn_embed(module, b, features, segments, num_graphs):
    hidden = _relu_(b, emit(module.node_layer1, b, features))
    hidden = _relu_(b, emit(module.node_layer2, b, hidden))
    out = b.alloc((num_graphs, module.hidden_dim))
    b.step(k_segment_sum, out, hidden, segments)
    return out


@register_lowering(GFN, "embed", prepare=_prepare_segment_payload)
def _build_gfn_embed(module, b, views, objects, extras):
    return _emit_gfn_embed(module, b, views[0], views[1], extras[1])


def _prepare_gfn_graphs(module, args):
    """GFN batches staged in place, skipping the per-call batch alloc.

    Instead of ``prepare_batch``'s fresh ``np.concatenate`` (a multi-MB
    allocation per call) the cached per-graph augmented features are
    concatenated directly into engine staging buffers, which the
    compiled plan adopts as its input buffers — the steady-state hot
    path then performs no feature allocation and no input copy at all.
    Values are bit-identical to ``prepare_batch``: concatenation is a
    pure copy and the segment ids are the same integers.
    """
    if len(args) != 1:
        return None
    graphs = args[0]
    if not isinstance(graphs, (list, tuple)) or not graphs:
        return None
    if not all(isinstance(g, EncodedGraph) for g in graphs):
        return None
    blocks = [augment_features(g, module.k) for g in graphs]
    width = 1 + module.input_dim * (module.k + 1)
    if any(b.ndim != 2 or b.shape[1] != width for b in blocks):
        return None
    total = sum(b.shape[0] for b in blocks)
    features = staging_input(module, "features", (total, width))
    np.concatenate(blocks, axis=0, out=features)
    segments = staging_input(module, "segments", (total,), np.int64)
    position = 0
    for index, block in enumerate(blocks):
        count = block.shape[0]
        segments[position : position + count] = index
        position += count
    return [features, segments], [], ("graphs", len(graphs))


@register_lowering(GFN, "embed_batch", prepare=_prepare_gfn_graphs)
def _build_gfn_embed_batch(module, b, views, objects, extras):
    return _emit_gfn_embed(module, b, views[0], views[1], extras[1])


@register_lowering(GFN, "forward_batch", prepare=_prepare_gfn_graphs)
def _build_gfn_forward_batch(module, b, views, objects, extras):
    embedding = _emit_gfn_embed(module, b, views[0], views[1], extras[1])
    return emit(module.classifier, b, embedding)


@register_lowering(GFN, "forward", prepare=_prepare_segment_payload)
def _build_gfn_forward(module, b, views, objects, extras):
    embedding = _emit_gfn_embed(module, b, views[0], views[1], extras[1])
    return emit(module.classifier, b, embedding)


def _emit_gcn_embed(module, b, features, segments, adjacency, num_graphs):
    nodes = features.shape[0]
    conv = emit(module.conv1, b, features)
    propagated = b.alloc((nodes, module.hidden_dim))
    b.step(k_spmm, propagated, adjacency, conv)
    _relu_(b, propagated)
    conv = emit(module.conv2, b, propagated)
    propagated = b.alloc((nodes, module.hidden_dim))
    b.step(k_spmm, propagated, adjacency, conv)
    _relu_(b, propagated)
    out = b.alloc((num_graphs, module.hidden_dim))
    b.step(k_segment_sum, out, propagated, segments)
    return out


@register_lowering(GCN, "embed", prepare=_prepare_segment_payload)
def _build_gcn_embed(module, b, views, objects, extras):
    return _emit_gcn_embed(
        module, b, views[0], views[1], objects[0], extras[1]
    )


@register_lowering(GCN, "forward", prepare=_prepare_segment_payload)
def _build_gcn_forward(module, b, views, objects, extras):
    embedding = _emit_gcn_embed(
        module, b, views[0], views[1], objects[0], extras[1]
    )
    return emit(module.classifier, b, embedding)


def _prepare_diffpool_payload(module, args):
    """DiffPool payloads: dense per-item feature/adjacency pairs."""
    if len(args) != 1 or not isinstance(args[0], dict):
        return None
    payload = args[0]
    items = payload.get("items")
    if items is None:
        return None
    arrays = []
    for item in items:
        arrays.append(np.asarray(item["features"], dtype=np.float64))
        arrays.append(np.asarray(item["adjacency"], dtype=np.float64))
    return arrays, [], ("items", len(items))


def _emit_diffpool_embed(module, b, views, num_items):
    H, C = module.hidden_dim, module.num_clusters
    out = b.alloc((num_items, H))
    for index in range(num_items):
        x = views[2 * index]
        a = views[2 * index + 1]
        n = x.shape[0]
        propagated = b.alloc((n, module.input_dim))
        b.step(k_matmul, propagated, a, x)
        z = _relu_(b, emit(module.embed_layer, b, propagated))
        s = emit(module.assign_layer, b, propagated)
        max_buf = b.alloc((n, 1))
        sum_buf = b.alloc((n, 1))
        b.step(k_softmax, s, s, 1, max_buf, sum_buf)
        pooled_x = b.alloc((C, H))
        b.step(k_matmul, pooled_x, s.T, z)
        pooled_partial = b.alloc((C, n))
        b.step(k_matmul, pooled_partial, s.T, a)
        pooled_a = b.alloc((C, C))
        b.step(k_matmul, pooled_a, pooled_partial, s)
        coarse_in = b.alloc((C, H))
        b.step(k_matmul, coarse_in, pooled_a, pooled_x)
        coarse = _relu_(b, emit(module.coarse_layer, b, coarse_in))
        row = b.alloc((1, H))
        b.step(k_sum, row, coarse, 0, True)
        b.step(k_copy, out[index : index + 1, :], row)
    return out


@register_lowering(DiffPool, "embed", prepare=_prepare_diffpool_payload)
def _build_diffpool_embed(module, b, views, objects, extras):
    return _emit_diffpool_embed(module, b, views, extras[1])


@register_lowering(DiffPool, "forward", prepare=_prepare_diffpool_payload)
def _build_diffpool_forward(module, b, views, objects, extras):
    embedding = _emit_diffpool_embed(module, b, views, extras[1])
    return emit(module.classifier, b, embedding)
