"""Graph readout functions (paper Eq. 15: SUM pooling over node states)."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor

__all__ = ["sum_readout", "mean_readout"]


def sum_readout(x: Tensor, segments: np.ndarray, num_graphs: int) -> Tensor:
    """SUM-pool node states into per-graph embeddings (the paper's choice)."""
    return F.segment_sum(x, segments, num_graphs)


def mean_readout(x: Tensor, segments: np.ndarray, num_graphs: int) -> Tensor:
    """Mean-pool node states into per-graph embeddings."""
    sums = F.segment_sum(x, segments, num_graphs)
    counts = np.bincount(segments, minlength=num_graphs).astype(np.float64)
    counts = np.maximum(counts, 1.0)[:, np.newaxis]
    return F.divide(sums, Tensor(counts))
