"""Shared training loop for graph-level classifiers.

Used by the Table II model comparison, the Figure 5 convergence curves,
and the core BAClassifier's graph-representation stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.eval.curves import TrainingCurve
from repro.eval.metrics import precision_recall_f1
from repro.gnn.base import GraphClassifier
from repro.gnn.data import EncodedGraph
from repro.nn.loss import cross_entropy
from repro.nn.optim import Adam, clip_grad_norm
from repro.utils.rng import as_generator
from repro.utils.timer import Stopwatch

__all__ = ["GraphTrainingConfig", "class_weight_vector", "fit_graph_classifier"]


@dataclass(frozen=True)
class GraphTrainingConfig:
    """Hyper-parameters of the graph-classifier training loop."""

    epochs: int = 20
    batch_size: int = 32
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    seed: int = 0
    class_weighted: bool = True
    grad_clip: "float | None" = 5.0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValidationError(f"epochs must be > 0, got {self.epochs}")
        if self.batch_size <= 0:
            raise ValidationError(f"batch_size must be > 0, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ValidationError(
                f"learning_rate must be > 0, got {self.learning_rate}"
            )
        if self.grad_clip is not None and self.grad_clip <= 0:
            raise ValidationError(
                f"grad_clip must be > 0 or None, got {self.grad_clip}"
            )


def class_weight_vector(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Inverse-frequency class weights, normalised to mean 1.

    Balances the gradient under the heavy class skew of the address
    dataset (Exchange ≫ Mining in Table I).
    """
    labels = np.asarray(labels, dtype=np.int64)
    counts = np.bincount(labels, minlength=num_classes).astype(np.float64)
    present = counts > 0
    weights = np.zeros(num_classes, dtype=np.float64)
    weights[present] = 1.0 / counts[present]
    mean_weight = weights[present].mean() if present.any() else 1.0
    return weights / mean_weight


def fit_graph_classifier(
    model: GraphClassifier,
    train_graphs: Sequence[EncodedGraph],
    config: Optional[GraphTrainingConfig] = None,
    eval_graphs: Optional[Sequence[EncodedGraph]] = None,
    curve_name: str = "",
) -> TrainingCurve:
    """Train ``model`` on labelled graphs; optionally track an F1 curve.

    When ``eval_graphs`` is given, the model is evaluated after every
    epoch and the returned curve carries ``(epoch, cumulative runtime,
    weighted F1)`` samples — the raw material of Figure 5.
    """
    config = config or GraphTrainingConfig()
    if not train_graphs:
        raise ValidationError("fit_graph_classifier needs training graphs")
    labels = np.array([g.label for g in train_graphs], dtype=np.int64)
    if labels.min() < 0:
        raise ValidationError("all training graphs must carry labels")

    weights = (
        class_weight_vector(labels, model.num_classes)
        if config.class_weighted
        else None
    )
    optimizer = Adam(
        model.parameters(),
        lr=config.learning_rate,
        weight_decay=config.weight_decay,
    )
    rng = as_generator(config.seed)
    curve = TrainingCurve(model_name=curve_name or type(model).__name__)
    watch = Stopwatch()
    train_seconds = 0.0
    indices = np.arange(len(train_graphs))

    for epoch in range(1, config.epochs + 1):
        # Figure 5 plots F1 against *training* time; the stopwatch is
        # restarted each epoch so per-epoch evaluation below never leaks
        # into the reported runtime axis.
        watch.reset()
        model.train()
        rng.shuffle(indices)
        for start in range(0, len(indices), config.batch_size):
            batch_idx = indices[start : start + config.batch_size]
            batch = [train_graphs[i] for i in batch_idx]
            payload = model.prepare_batch(batch)
            logits = model.forward(payload)
            loss = cross_entropy(logits, payload["labels"], class_weights=weights)
            optimizer.zero_grad()
            loss.backward()
            if config.grad_clip is not None:
                clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
        train_seconds += watch.elapsed()
        if eval_graphs:
            predictions = model.predict(eval_graphs)
            truth = np.array([g.label for g in eval_graphs], dtype=np.int64)
            report = precision_recall_f1(
                truth, predictions, num_classes=model.num_classes
            )
            curve.add(epoch=epoch, runtime_seconds=train_seconds, f1=report.weighted_f1)
    return curve
