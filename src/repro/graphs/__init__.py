"""Address graph construction: extraction, compression, augmentation.

Implements the paper's first component (§III-A): transactions of an
address become chronological slice graphs; node compression (Eq. 1–7)
bounds their size; centrality augmentation (Eq. 8–11) enriches node
features; :class:`GraphConstructionPipeline` chains the stages with the
per-stage timing of Table V.  Stage 4 runs batched by default: all
slice graphs of a pipeline call share one block-diagonal centrality
sweep (:func:`augment_graphs` /
:mod:`repro.graphs.batched_centrality`), output-identical to the
per-graph kernels but with their scipy/Python overhead amortised
across the batch.

Two graph representations coexist:

- :class:`ArrayGraph` — the columnar (ndarray-backed) substrate the
  pipeline natively produces and transforms: node kind/ref/merge
  columns, CSR-style segmented value bags, and flat edge
  src/dst/value/timestamp columns (see :mod:`repro.graphs.arrays` for
  the exact layout).  Everything hot — extraction, both compression
  passes, augmentation, feature assembly, GNN encoding — stays in
  array land end to end.
- :class:`AddressGraph` — the per-node/per-edge object model, kept for
  inspection, the reference kernels, and any consumer that prefers
  objects.  Convert freely with ``AddressGraph.from_arrays(graph)`` /
  ``graph.to_arrays()`` (equivalently ``ArrayGraph.to_address_graph`` /
  ``.from_address_graph``); the conversions preserve every structural
  column exactly — the one exception is ``edge_times``, which the
  object model does not carry (it reads back as 0.0 after a round
  trip) — and the two flavours share the read API that downstream code
  uses (``feature_matrix``, ``adjacency_matrix``, ``edge_arrays``,
  ``center_node_id``...).
"""

from repro.graphs.arrays import ArrayGraph, KIND_CODES
from repro.graphs.augmentation import augment_graph, augment_graphs
from repro.graphs.batched_centrality import (
    batched_centrality_matrices,
    plan_packs,
    centrality_matrix_block_diagonal,
    pack_block_diagonal,
)
from repro.graphs.centrality import (
    betweenness_centrality,
    centrality_matrix,
    centrality_matrix_csr,
    closeness_centrality,
    degree_centrality,
    pagerank_centrality,
)
from repro.graphs.compression import (
    compress_multi_transaction_addresses,
    compress_single_transaction_addresses,
    similarity_matrices,
)
from repro.graphs.extraction import (
    build_arrays_from_index,
    build_original_arrays,
    build_original_graph,
    extract_array_graphs,
    extract_graphs,
    slice_transactions,
)
from repro.graphs.flatten import (
    FLAT_FEATURE_DIM,
    flatten_dataset,
    flatten_graph,
    flatten_graphs,
)
from repro.graphs.matrices import (
    normalized_adjacency,
    normalized_adjacency_from_matrix,
)
from repro.graphs.model import (
    NODE_FEATURE_DIM,
    NODE_KIND_ORDER,
    AddressGraph,
    GraphEdge,
    GraphNode,
    NodeKind,
)
from repro.graphs.pipeline import (
    STAGE_NAMES,
    GraphConstructionPipeline,
    GraphPipelineConfig,
)

__all__ = [
    "ArrayGraph",
    "KIND_CODES",
    "augment_graph",
    "augment_graphs",
    "batched_centrality_matrices",
    "centrality_matrix_block_diagonal",
    "pack_block_diagonal",
    "plan_packs",
    "betweenness_centrality",
    "centrality_matrix",
    "centrality_matrix_csr",
    "closeness_centrality",
    "degree_centrality",
    "pagerank_centrality",
    "compress_multi_transaction_addresses",
    "compress_single_transaction_addresses",
    "similarity_matrices",
    "build_arrays_from_index",
    "build_original_arrays",
    "build_original_graph",
    "extract_array_graphs",
    "extract_graphs",
    "slice_transactions",
    "FLAT_FEATURE_DIM",
    "flatten_dataset",
    "flatten_graph",
    "flatten_graphs",
    "normalized_adjacency",
    "normalized_adjacency_from_matrix",
    "NODE_FEATURE_DIM",
    "NODE_KIND_ORDER",
    "AddressGraph",
    "GraphEdge",
    "GraphNode",
    "NodeKind",
    "STAGE_NAMES",
    "GraphConstructionPipeline",
    "GraphPipelineConfig",
]
