"""Address graph construction: extraction, compression, augmentation.

Implements the paper's first component (§III-A): transactions of an
address become chronological slice graphs; node compression (Eq. 1–7)
bounds their size; centrality augmentation (Eq. 8–11) enriches node
features; :class:`GraphConstructionPipeline` chains the stages with the
per-stage timing of Table V.
"""

from repro.graphs.augmentation import augment_graph
from repro.graphs.centrality import (
    betweenness_centrality,
    centrality_matrix,
    centrality_matrix_csr,
    closeness_centrality,
    degree_centrality,
    pagerank_centrality,
)
from repro.graphs.compression import (
    compress_multi_transaction_addresses,
    compress_single_transaction_addresses,
    similarity_matrices,
)
from repro.graphs.extraction import (
    build_original_graph,
    extract_graphs,
    slice_transactions,
)
from repro.graphs.flatten import (
    FLAT_FEATURE_DIM,
    flatten_dataset,
    flatten_graph,
    flatten_graphs,
)
from repro.graphs.matrices import (
    normalized_adjacency,
    normalized_adjacency_from_matrix,
)
from repro.graphs.model import (
    NODE_FEATURE_DIM,
    NODE_KIND_ORDER,
    AddressGraph,
    GraphEdge,
    GraphNode,
    NodeKind,
)
from repro.graphs.pipeline import (
    STAGE_NAMES,
    GraphConstructionPipeline,
    GraphPipelineConfig,
)

__all__ = [
    "augment_graph",
    "betweenness_centrality",
    "centrality_matrix",
    "centrality_matrix_csr",
    "closeness_centrality",
    "degree_centrality",
    "pagerank_centrality",
    "compress_multi_transaction_addresses",
    "compress_single_transaction_addresses",
    "similarity_matrices",
    "build_original_graph",
    "extract_graphs",
    "slice_transactions",
    "FLAT_FEATURE_DIM",
    "flatten_dataset",
    "flatten_graph",
    "flatten_graphs",
    "normalized_adjacency",
    "normalized_adjacency_from_matrix",
    "NODE_FEATURE_DIM",
    "NODE_KIND_ORDER",
    "AddressGraph",
    "GraphEdge",
    "GraphNode",
    "NodeKind",
    "STAGE_NAMES",
    "GraphConstructionPipeline",
    "GraphPipelineConfig",
]
