"""``ArrayGraph`` — the columnar (ndarray-backed) slice-graph substrate.

The object model (:class:`~repro.graphs.model.AddressGraph` holding one
:class:`~repro.graphs.model.GraphNode` / ``GraphEdge`` per node/edge) is
convenient for inspection but dominates the cost of the per-address
serving path: building, compressing, and re-building tens of thousands
of small Python objects per query (paper Table V: graph construction
dominates end-to-end latency).  ``ArrayGraph`` keeps the *same graph* in
a handful of flat arrays so every pipeline stage can stay in array land
from Stage-1 extraction through GNN encoding.

Layout
------

Node columns (all length ``num_nodes``):

``kind_codes``
    ``int64`` index into :data:`~repro.graphs.model.NODE_KIND_ORDER`
    (0=address, 1=tx, 2=s_hyper, 3=m_hyper).
``refs``
    ``object`` array of reference strings (address, txid, or hyper-node
    tag) — object dtype so compression can gather survivors with one
    fancy-indexing pass.
``merged_counts``
    ``int64`` — how many original nodes each node absorbed (1 for
    unmerged nodes).
``bag_values`` / ``bag_indptr``
    CSR-style segmented value bags: node ``i``'s transferred-amount bag
    (the input to SFE, Eq. 1–2) is
    ``bag_values[bag_indptr[i]:bag_indptr[i + 1]]``.
``centrality``
    ``None`` before Stage 4; afterwards the ``(num_nodes, 4)`` matrix of
    degree/closeness/betweenness/PageRank centralities (Eq. 8–11).

Edge columns (all length ``num_edges``, directed; input-side edges run
address → tx, output-side edges tx → address):

``edge_src`` / ``edge_dst``
    ``int64`` node ids.
``edge_values``
    ``float64`` transferred satoshis.  Compression aggregates parallel
    edges by summing values (Eq. 7's edge union).
``edge_times``
    ``float64`` timestamp of the transaction that produced each edge
    (0.0 for graphs converted from objects, which carry no edge times);
    an aggregated edge keeps its first-seen member's timestamp.  No
    current feature consumes this column — it exists for the
    time-window workloads the chain-scale datasets need (temporal edge
    features, per-window slicing) so those can land without another
    Stage-1 rewrite.

Conversion API
--------------

``ArrayGraph.from_address_graph`` / ``ArrayGraph.to_address_graph``
round-trip exactly on every structural column (kinds, refs, merge
counts, value bags, edges, centrality) — only ``edge_times`` is lost,
because the object model has no edge-timestamp field (it reads back as
0.0).  ``AddressGraph.from_arrays`` / ``AddressGraph.to_arrays`` are
the mirror-image wrappers — so reference kernels, baselines, and
examples that want per-node objects keep working on pipeline output at
the cost of one conversion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.features.sfe import sfe_matrix_segments, signed_log1p
from repro.graphs.model import (
    _CENTRALITY_DIMS,
    NODE_FEATURE_DIM,
    NODE_KIND_ORDER,
    AddressGraph,
    GraphEdge,
    GraphNode,
)

__all__ = ["ArrayGraph", "KIND_CODES"]


def _segment_ranges(lengths: np.ndarray, total: int) -> np.ndarray:
    """``[0..l0), [0..l1), ...`` concatenated — the ragged-range helper
    behind every segmented gather/scatter on this substrate."""
    starts = np.cumsum(lengths) - lengths
    return np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)


#: ``{kind string: int code}`` — the column encoding of node kinds.
KIND_CODES: Dict[str, int] = {
    kind: code for code, kind in enumerate(NODE_KIND_ORDER)
}


class ArrayGraph:
    """One transaction-slice graph of an address, stored columnar.

    See the module docstring for the exact array layout.  Instances are
    cheap to construct (no per-node/per-edge objects) and are what the
    :class:`~repro.graphs.pipeline.GraphConstructionPipeline` natively
    produces and transforms.
    """

    __slots__ = (
        "center_address",
        "slice_index",
        "time_range",
        "kind_codes",
        "refs",
        "merged_counts",
        "bag_values",
        "bag_indptr",
        "edge_src",
        "edge_dst",
        "edge_values",
        "edge_times",
        "centrality",
        "_center_id",
    )

    def __init__(
        self,
        center_address: str,
        slice_index: int,
        time_range: Tuple[float, float],
        kind_codes: np.ndarray,
        refs: np.ndarray,
        merged_counts: np.ndarray,
        bag_values: np.ndarray,
        bag_indptr: np.ndarray,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_values: np.ndarray,
        edge_times: np.ndarray,
        centrality: Optional[np.ndarray] = None,
        center_id: Optional[int] = None,
    ):
        n = kind_codes.shape[0]
        if not (refs.shape[0] == merged_counts.shape[0] == n):
            raise ValidationError(
                f"inconsistent node columns: kinds={n}, refs={refs.shape[0]}, "
                f"merged={merged_counts.shape[0]}"
            )
        if bag_indptr.shape[0] != n + 1:
            raise ValidationError(
                f"bag_indptr must have {n + 1} entries, got {bag_indptr.shape[0]}"
            )
        if bag_indptr[0] != 0 or bag_indptr[-1] != bag_values.shape[0]:
            raise ValidationError(
                f"bag_indptr must span [0, {bag_values.shape[0]}], got "
                f"[{bag_indptr[0]}, {bag_indptr[-1]}]"
            )
        if n and np.any(np.diff(bag_indptr) < 0):
            raise ValidationError("bag_indptr must be non-decreasing")
        e = edge_src.shape[0]
        if not (edge_dst.shape[0] == edge_values.shape[0] == edge_times.shape[0] == e):
            raise ValidationError("inconsistent edge columns")
        self.center_address = center_address
        self.slice_index = slice_index
        self.time_range = time_range
        self.kind_codes = kind_codes
        self.refs = refs
        self.merged_counts = merged_counts
        self.bag_values = bag_values
        self.bag_indptr = bag_indptr
        self.edge_src = edge_src
        self.edge_dst = edge_dst
        self.edge_values = edge_values
        self.edge_times = edge_times
        self.centrality = centrality
        self._center_id = center_id

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self.kind_codes.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self.edge_src.shape[0]

    @property
    def nbytes(self) -> int:
        """Total bytes held by the node/edge columns (cache accounting)."""
        total = (
            self.kind_codes.nbytes
            + self.refs.nbytes
            + self.merged_counts.nbytes
            + self.bag_values.nbytes
            + self.bag_indptr.nbytes
            + self.edge_src.nbytes
            + self.edge_dst.nbytes
            + self.edge_values.nbytes
            + self.edge_times.nbytes
        )
        if self.centrality is not None:
            total += self.centrality.nbytes
        return int(total)

    def center_node_id(self) -> Optional[int]:
        """Node id of the centre address (if present)."""
        return self._center_id

    def nodes_of_kind(self, kind: str) -> np.ndarray:
        """Node ids of the given kind (ascending)."""
        return np.flatnonzero(self.kind_codes == KIND_CODES[kind])

    def node_values(self, node_id: int) -> np.ndarray:
        """The value bag of one node (a zero-copy view)."""
        return self.bag_values[
            self.bag_indptr[node_id] : self.bag_indptr[node_id + 1]
        ]

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(src, dst)`` ndarray columns of the directed edge list."""
        return self.edge_src, self.edge_dst

    def total_edge_value(self) -> float:
        """Sum of transferred amounts over all edges (conservation checks)."""
        return float(self.edge_values.sum())

    def adjacency_matrix(self) -> sp.csr_matrix:
        """Symmetric unweighted adjacency as a CSR sparse matrix."""
        n = self.num_nodes
        if self.num_edges == 0:
            return sp.csr_matrix((n, n), dtype=np.float64)
        rows = np.concatenate([self.edge_src, self.edge_dst])
        cols = np.concatenate([self.edge_dst, self.edge_src])
        data = np.ones(rows.size, dtype=np.float64)
        matrix = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
        matrix.data[:] = 1.0  # collapse parallel edges
        return matrix

    def adjacency_lists(self) -> List[List[int]]:
        """Undirected adjacency lists (deduplicated neighbours)."""
        matrix = self.adjacency_matrix()
        indices, indptr = matrix.indices, matrix.indptr
        return [
            sorted(indices[indptr[i] : indptr[i + 1]].tolist())
            for i in range(self.num_nodes)
        ]

    def degrees(self) -> np.ndarray:
        """Undirected degree (distinct neighbours) per node."""
        return np.diff(self.adjacency_matrix().indptr).astype(np.float64)

    def feature_matrix(self, raw: bool = False) -> np.ndarray:
        """Final node-feature matrix, shape ``(num_nodes, NODE_FEATURE_DIM)``.

        One segmented SFE pass directly over the stored bag arrays (no
        per-node bag materialisation) plus columnar centrality / kind /
        centre-flag assembly; identical to
        :meth:`AddressGraph.feature_matrix` on the converted graph.
        ``raw=True`` keeps SFE statistics at satoshi magnitude.
        """
        n = self.num_nodes
        if n == 0:
            return np.zeros((0, NODE_FEATURE_DIM), dtype=np.float64)
        stats = sfe_matrix_segments(self.bag_values, self.bag_indptr)
        if not raw:
            stats = signed_log1p(stats)
        if self.centrality is not None:
            centrality = self.centrality
        else:
            centrality = np.zeros((n, _CENTRALITY_DIMS), dtype=np.float64)
        kind_onehot = np.zeros((n, len(NODE_KIND_ORDER)), dtype=np.float64)
        kind_onehot[np.arange(n), self.kind_codes] = 1.0
        center_flag = np.zeros((n, 1), dtype=np.float64)
        if self._center_id is not None:
            center_flag[self._center_id, 0] = 1.0
        return np.hstack([stats, centrality, kind_onehot, center_flag])

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #

    @classmethod
    def from_address_graph(cls, graph: AddressGraph) -> "ArrayGraph":
        """Columnar copy of an object-model graph (lossless)."""
        n = graph.num_nodes
        e = graph.num_edges
        kind_codes = np.fromiter(
            (KIND_CODES[node.kind] for node in graph.nodes),
            dtype=np.int64,
            count=n,
        )
        refs = np.empty(n, dtype=object)
        for i, node in enumerate(graph.nodes):
            refs[i] = node.ref
        merged_counts = np.fromiter(
            (node.merged_count for node in graph.nodes),
            dtype=np.int64,
            count=n,
        )
        bag_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            [len(node.values) for node in graph.nodes], out=bag_indptr[1:]
        )
        bag_values = np.array(
            [v for node in graph.nodes for v in node.values], dtype=np.float64
        )
        edge_src = np.fromiter(
            (edge.src for edge in graph.edges), dtype=np.int64, count=e
        )
        edge_dst = np.fromiter(
            (edge.dst for edge in graph.edges), dtype=np.int64, count=e
        )
        edge_values = np.fromiter(
            (edge.value for edge in graph.edges), dtype=np.float64, count=e
        )
        centrality: Optional[np.ndarray] = None
        if any(node.centrality is not None for node in graph.nodes):
            centrality = np.zeros((n, _CENTRALITY_DIMS), dtype=np.float64)
            for node in graph.nodes:
                if node.centrality is not None:
                    centrality[node.node_id] = node.centrality
        return cls(
            center_address=graph.center_address,
            slice_index=graph.slice_index,
            time_range=graph.time_range,
            kind_codes=kind_codes,
            refs=refs,
            merged_counts=merged_counts,
            bag_values=bag_values,
            bag_indptr=bag_indptr,
            edge_src=edge_src,
            edge_dst=edge_dst,
            edge_values=edge_values,
            edge_times=np.zeros(e, dtype=np.float64),
            centrality=centrality,
            center_id=graph.center_node_id(),
        )

    def to_address_graph(self) -> AddressGraph:
        """Object-model copy of this graph (lossless except edge times)."""
        out = AddressGraph(
            center_address=self.center_address,
            slice_index=self.slice_index,
            time_range=self.time_range,
        )
        indptr = self.bag_indptr
        for i in range(self.num_nodes):
            kind = NODE_KIND_ORDER[self.kind_codes[i]]
            node = GraphNode(
                node_id=i,
                kind=kind,
                ref=self.refs[i],
                values=self.bag_values[indptr[i] : indptr[i + 1]].tolist(),
                merged_count=int(self.merged_counts[i]),
                centrality=(
                    self.centrality[i] if self.centrality is not None else None
                ),
            )
            out.nodes.append(node)
            out._node_by_ref[(kind, node.ref)] = i
        out.edges = [
            GraphEdge(src=int(s), dst=int(d), value=float(v))
            for s, d, v in zip(self.edge_src, self.edge_dst, self.edge_values)
        ]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArrayGraph(center={self.center_address[:10]}…, "
            f"slice={self.slice_index}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
