"""Stage 4 — graph structure augmentation (paper §III-A-3).

Attaches the four network centralities (degree, closeness, betweenness,
PageRank) to every node of a compressed address graph, so node features
carry "not only the semantic information of address transactions but also
the augmented graph structural characteristics".

The centralities run directly on the graph's CSR adjacency
(:func:`repro.graphs.centrality.centrality_matrix_csr`).  On the
columnar :class:`~repro.graphs.arrays.ArrayGraph` substrate the whole
``(num_nodes, 4)`` matrix is attached zero-copy as the graph's
``centrality`` column; object-model graphs receive one row view per
node.
"""

from __future__ import annotations

from typing import Union

from repro.graphs.arrays import ArrayGraph
from repro.graphs.centrality import centrality_matrix_csr
from repro.graphs.model import AddressGraph

__all__ = ["augment_graph"]


def augment_graph(
    graph: "Union[AddressGraph, ArrayGraph]",
) -> "Union[AddressGraph, ArrayGraph]":
    """Compute and attach centrality features in place; returns the graph."""
    if graph.num_nodes == 0:
        return graph
    matrix = centrality_matrix_csr(graph.adjacency_matrix())
    if isinstance(graph, ArrayGraph):
        graph.centrality = matrix
        return graph
    for node in graph.nodes:
        node.centrality = matrix[node.node_id]
    return graph
