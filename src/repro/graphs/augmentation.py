"""Stage 4 — graph structure augmentation (paper §III-A-3).

Attaches the four network centralities (degree, closeness, betweenness,
PageRank) to every node of a compressed address graph, so node features
carry "not only the semantic information of address transactions but also
the augmented graph structural characteristics".

Two entry points cover the two serving regimes:

- :func:`augment_graph` runs the centralities on one graph's CSR
  adjacency (:func:`repro.graphs.centrality.centrality_matrix_csr`).
- :func:`augment_graphs` — the pipeline's default Stage-4 path — packs a
  whole batch of slice graphs into block-diagonal CSR chunks and runs
  each kernel once per chunk
  (:mod:`repro.graphs.batched_centrality`), amortising per-graph
  scipy/Python overhead across the batch.  Results are identical: a
  batch of one is bit-for-bit the per-graph path, mixed batches are
  pinned to 1e-9 parity.

On the columnar :class:`~repro.graphs.arrays.ArrayGraph` substrate the
whole ``(num_nodes, 4)`` float64 matrix is attached as the graph's
``centrality`` column; object-model graphs receive one row view per
node.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.arrays import ArrayGraph
from repro.graphs.batched_centrality import (
    DEFAULT_MAX_BATCH_NODES,
    centrality_matrix_block_diagonal,
    plan_packs,
)
from repro.graphs.centrality import centrality_matrix_csr
from repro.graphs.model import AddressGraph

__all__ = ["augment_graph", "augment_graphs"]

AnyGraph = Union[AddressGraph, ArrayGraph]


def augment_graph(graph: AnyGraph) -> AnyGraph:
    """Compute and attach centrality features in place; returns the graph.

    Attaches the ``(num_nodes, 4)`` float64 centrality matrix (column
    order degree, closeness, betweenness, PageRank — Eq. 8–11) as the
    ``centrality`` column of an :class:`ArrayGraph`, or as per-node row
    views on an object-model :class:`AddressGraph`.  An empty graph is
    returned unchanged (its ``centrality`` stays ``None``).
    """
    if graph.num_nodes == 0:
        return graph
    matrix = centrality_matrix_csr(graph.adjacency_matrix())
    _attach(graph, matrix)
    return graph


def augment_graphs(
    graphs: Sequence[AnyGraph],
    max_batch_nodes: "int | None" = DEFAULT_MAX_BATCH_NODES,
) -> List[AnyGraph]:
    """Stage 4 over a whole batch in block-diagonal sweeps (in place).

    The batched sibling of :func:`augment_graph` and the pipeline's
    default Stage-4 path (``GraphPipelineConfig.batch_stage4``): edge
    columns of up to ``max_batch_nodes`` nodes' worth of graphs are
    concatenated with per-graph node offsets into one block-diagonal
    CSR, the closeness/Brandes/PageRank kernels run once per chunk, and
    each graph receives its own ``(n_g, 4)`` slice of the stacked
    result (a fresh array, not a view into the pack).  Accepts both
    graph flavours, in any mix; empty graphs are left unchanged exactly
    like :func:`augment_graph`.  Returns the input graphs as a list, in
    order, mutated in place.

    ``max_batch_nodes`` bounds the ``64 × N_batch`` dense scratch of
    the batched BFS (``None`` packs everything into one chunk); it is a
    performance knob only — chunking never changes results.
    """
    graphs = list(graphs)
    candidates = [graph for graph in graphs if graph.num_nodes > 0]
    if not candidates:
        return graphs
    sizes = [graph.num_nodes for graph in candidates]
    # Skew-aware packing: similar-sized graphs share packs so one giant
    # graph no longer serializes a chunk of small ones (see plan_packs).
    for pack in plan_packs(sizes, max_batch_nodes):
        chunk = [candidates[i] for i in pack]
        packed, offsets = _packed_adjacency(chunk)
        stacked = centrality_matrix_block_diagonal(packed, offsets)
        for graph, lo, hi in zip(chunk, offsets[:-1], offsets[1:]):
            _attach(graph, stacked[int(lo) : int(hi)].copy())
    return graphs


def _packed_adjacency(
    graphs: Sequence[AnyGraph],
) -> "tuple[sp.csr_matrix, np.ndarray]":
    """Block-diagonal symmetric adjacency straight from edge columns.

    One COO→CSR conversion for the whole chunk instead of one per
    graph; each diagonal block is structurally identical to the graph's
    own ``adjacency_matrix()`` (deduplicated, all-ones data).
    """
    offsets = np.zeros(len(graphs) + 1, dtype=np.int64)
    np.cumsum([graph.num_nodes for graph in graphs], out=offsets[1:])
    total = int(offsets[-1])
    src_parts: List[np.ndarray] = []
    dst_parts: List[np.ndarray] = []
    for graph, offset in zip(graphs, offsets[:-1]):
        if graph.num_edges == 0:
            continue
        src, dst = graph.edge_arrays()
        src_parts.append(src + offset)
        dst_parts.append(dst + offset)
    if not src_parts:
        return sp.csr_matrix((total, total), dtype=np.float64), offsets
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    rows = np.concatenate([src, dst])
    cols = np.concatenate([dst, src])
    data = np.ones(rows.size, dtype=np.float64)
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(total, total))
    matrix.data[:] = 1.0  # collapse parallel edges
    return matrix, offsets


def _attach(graph: AnyGraph, matrix: np.ndarray) -> None:
    """Attach a computed centrality matrix to either graph flavour."""
    if isinstance(graph, ArrayGraph):
        graph.centrality = matrix
        return
    for node in graph.nodes:
        node.centrality = matrix[node.node_id]
