"""Cross-graph block-diagonal centrality batching (Stage 4 at batch scale).

Stage-4 augmentation dominates pipeline construction time (~74% after
the PR-3 ArrayGraph rewrite), and its cost profile is the
many-tiny-graphs regime: each slice graph runs its *own* small
frontier-batched BFS, Brandes sweep, and PageRank power iteration, so
per-call scipy/Python overhead — CSR builds, transposes, per-level loop
iterations, per-iteration mat-vecs — is paid once per graph.  This
module packs a whole batch of slice graphs into **one** block-diagonal
CSR adjacency (node ids offset per graph, edge columns concatenated) and
runs every kernel once over the packed matrix, then scatters the
per-graph ``(n_g, 4)`` centrality matrices back via the node offsets.

Why this is exact
-----------------

The packed graphs are disconnected components, so BFS frontiers, Brandes
dependencies, and PageRank mass never cross block boundaries.  The
batched kernels exploit that in two ways:

- **Row sharing.**  The forward/backward sweeps of
  :mod:`repro.graphs.centrality` take seed ``(row, node)`` pairs, so one
  64-row frontier block carries *source index r of every graph* instead
  of 64 sources of one graph: row-block ``start`` seeds node
  ``offset_g + start + r`` for every graph with more than ``start + r``
  nodes.  A sweep then costs ``O(nnz_total)`` per BFS level for the
  whole batch, and the number of row blocks is ``ceil(max_g n_g / 64)``
  instead of ``ceil(Σ n_g / 64)``.
- **Per-graph semantics via segment ops.**  Degree/closeness/betweenness
  normalisation and PageRank teleport, dangling mass, and convergence
  are all *per-graph* quantities (they divide by each graph's own ``n``)
  — computed with segment reductions over the node offsets, so results
  match running :func:`~repro.graphs.centrality.centrality_matrix_csr`
  per graph.  PageRank freezes each graph's segment at its own first
  iteration under tolerance, mirroring the per-graph early return, and
  once frozen segments hold the majority of pack nodes the power
  iteration compacts its working matrix to the still-active blocks —
  exact, because disconnected blocks never exchange mass (see
  :func:`_pagerank_block_diagonal`).

Every floating-point operation a node participates in has the same
operands in the same order as the per-graph path (sums over extra
frontier rows only ever add exact ``0.0``), so a batch of size one is
bit-for-bit identical to :func:`centrality_matrix_csr`, and mixed
batches are pinned to 1e-9 parity against both the per-graph CSR path
and the pure-Python :mod:`repro.graphs.reference` oracles in
``tests/test_batched_centrality.py``.

Scratch memory is ``O(64 × N_batch)`` per sweep, so callers bound the
pack size: :func:`batched_centrality_matrices` (and Stage 4's
``augment_graphs``) splits oversized batches into chunks of at most
``max_batch_nodes`` nodes.

Packing is **skew-aware**: seed rows are per-source-index, so the
number of frontier row blocks a pack pays for is ``ceil(max_g n_g /
64)`` — one graph much larger than its packmates serializes the whole
chunk through its own tail rows while every smaller graph sits idle.
:func:`plan_packs` therefore size-sorts graphs (descending, stable)
before the greedy node-budget chunking, so similar-sized graphs share
packs and each chunk's ``max_g n_g`` hugs its average.  Sorting changes
*which* graphs share a pack, never any result: per-graph outputs are
independent of packmates (disconnected blocks), which
``tests/test_batched_centrality.py`` pins with order-invariance tests.
Results are always scattered back in input order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.graphs.centrality import (
    BFS_BLOCK,
    _backward_sweep,
    _forward_sweep,
)

__all__ = [
    "DEFAULT_MAX_BATCH_NODES",
    "pack_block_diagonal",
    "plan_packs",
    "centrality_matrix_block_diagonal",
    "batched_centrality_matrices",
]

#: Node budget per packed batch: bounds the dense ``64 × N_batch``
#: frontier/σ/δ scratch arrays of one sweep at a few megabytes while
#: leaving hundreds of paper-scale slice graphs per pack.
DEFAULT_MAX_BATCH_NODES = 8192


def pack_block_diagonal(
    matrices: Sequence[sp.csr_matrix],
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Stack square CSR adjacencies into one block-diagonal CSR.

    Returns ``(packed, offsets)`` where ``packed`` is the
    ``(N, N)`` block-diagonal matrix (``N = Σ n_g``) and ``offsets`` is
    the ``int64`` array of ``len(matrices) + 1`` node offsets: graph
    ``g`` owns packed rows ``offsets[g]:offsets[g + 1]``.  Rows are
    copied verbatim (indices shifted by the block offset, no re-sort),
    so each diagonal block is structurally identical to its input —
    including empty ``0 × 0`` blocks, which occupy zero rows.
    """
    sizes = []
    for matrix in matrices:
        rows, cols = matrix.shape
        if rows != cols:
            raise ValidationError(
                f"adjacency matrices must be square, got {rows}x{cols}"
            )
        sizes.append(rows)
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    total = int(offsets[-1])
    if not matrices or total == 0:
        return sp.csr_matrix((total, total), dtype=np.float64), offsets
    indptr = np.zeros(total + 1, dtype=np.int64)
    nnz_offset = 0
    indices_parts: List[np.ndarray] = []
    data_parts: List[np.ndarray] = []
    for matrix, offset in zip(matrices, offsets[:-1]):
        n = matrix.shape[0]
        if n == 0:
            continue
        indptr[offset + 1 : offset + n + 1] = matrix.indptr[1:] + nnz_offset
        indices_parts.append(matrix.indices.astype(np.int64) + offset)
        data_parts.append(matrix.data.astype(np.float64, copy=False))
        nnz_offset += matrix.indptr[-1]
    indices = (
        np.concatenate(indices_parts)
        if indices_parts
        else np.zeros(0, dtype=np.int64)
    )
    data = (
        np.concatenate(data_parts)
        if data_parts
        else np.zeros(0, dtype=np.float64)
    )
    return sp.csr_matrix((data, indices, indptr), shape=(total, total)), offsets


def _chunk_by_nodes(
    sizes: Sequence[int], max_batch_nodes: Optional[int]
) -> List[Tuple[int, int]]:
    """Greedy contiguous ``[start, end)`` chunks under the node budget.

    Every chunk holds at least one graph, so a single graph larger than
    the budget still runs (in its own pack).
    """
    if not sizes:
        return []
    if max_batch_nodes is None:
        return [(0, len(sizes))]
    if max_batch_nodes <= 0:
        raise ValidationError(
            f"max_batch_nodes must be > 0 or None, got {max_batch_nodes}"
        )
    chunks: List[Tuple[int, int]] = []
    start = 0
    nodes = 0
    for i, size in enumerate(sizes):
        if i > start and nodes + size > max_batch_nodes:
            chunks.append((start, i))
            start = i
            nodes = 0
        nodes += size
    chunks.append((start, len(sizes)))
    return chunks


def plan_packs(
    sizes: Sequence[int],
    max_batch_nodes: Optional[int] = DEFAULT_MAX_BATCH_NODES,
    size_sort: bool = True,
) -> List[np.ndarray]:
    """Partition graphs into block-diagonal packs under the node budget.

    Returns a list of ``int64`` index arrays into the caller's graph
    sequence — each array is one pack.  With ``size_sort=True`` (the
    default, and what Stage 4 uses) graphs are ordered by descending
    node count (stable for ties) before the greedy budget chunking, so
    one giant graph packs with its peers instead of serializing a
    chunk of small graphs through its tail frontier rows.
    ``size_sort=False`` preserves input-order packing (the pre-skew
    behaviour, kept for the invariance tests).  Purely a performance
    plan: every pack layout yields identical per-graph results.
    """
    sizes_array = np.asarray(list(sizes), dtype=np.int64)
    if sizes_array.size == 0:
        return []
    if size_sort:
        order = np.argsort(-sizes_array, kind="stable")
    else:
        order = np.arange(sizes_array.size, dtype=np.int64)
    chunks = _chunk_by_nodes(
        sizes_array[order].tolist(), max_batch_nodes
    )
    return [order[start:end] for start, end in chunks]


def centrality_matrix_block_diagonal(
    matrix: sp.csr_matrix, offsets: np.ndarray
) -> np.ndarray:
    """All four centralities of a block-diagonal adjacency, per-graph.

    ``matrix`` is the packed ``(N, N)`` CSR from
    :func:`pack_block_diagonal`; ``offsets`` (``int64``, length
    ``num_graphs + 1``) delimits the diagonal blocks.  Returns the
    ``(N, 4)`` float64 matrix whose rows ``offsets[g]:offsets[g + 1]``
    equal ``centrality_matrix_csr(block_g)`` — column order degree,
    closeness, betweenness, PageRank (Eq. 8–11), every normalisation
    taken against the owning graph's own node count.

    This single function *is* the batched Stage-4 sweep; callers that
    want the per-graph matrices scattered back should use
    :func:`batched_centrality_matrices` (which also bounds scratch
    memory by chunking).
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    n_total = matrix.shape[0]
    if offsets.size == 0 or offsets[0] != 0 or offsets[-1] != n_total:
        raise ValidationError(
            f"offsets must span [0, {n_total}], got "
            f"{offsets[:1]}..{offsets[-1:]}"
        )
    sizes = np.diff(offsets)
    if sizes.size and sizes.min() < 0:
        raise ValidationError("offsets must be non-decreasing")
    if n_total == 0:
        return np.zeros((0, 4), dtype=np.float64)

    num_graphs = sizes.size
    graph_of_node = np.repeat(np.arange(num_graphs), sizes)
    out_degree = np.diff(matrix.indptr).astype(np.float64)
    transpose = matrix.transpose().tocsr()

    # Degree (Eq. 8): per-graph n − 1 normalisation, zero for n <= 1.
    degree = np.zeros(n_total, dtype=np.float64)
    multi = sizes[graph_of_node] > 1
    degree[multi] = out_degree[multi] / (
        (sizes - 1).astype(np.float64)[graph_of_node][multi]
    )

    # Segment bookkeeping for the non-empty graphs (reduceat needs
    # strictly increasing starts, which empty blocks would break).
    nonempty = sizes > 0
    seg_starts = offsets[:-1][nonempty]
    seg_column = np.cumsum(nonempty) - 1  # graph id -> reduceat column

    # Closeness + betweenness (Eq. 9–10): shared forward sweeps over
    # row blocks of source-index-within-graph, one source per graph per
    # row.
    closeness = np.zeros(n_total, dtype=np.float64)
    betweenness = np.zeros(n_total, dtype=np.float64)
    max_n = int(sizes.max())
    for start in range(0, max_n, BFS_BLOCK):
        block_rows = min(BFS_BLOCK, max_n - start)
        counts = np.clip(sizes - start, 0, block_rows)
        active = np.flatnonzero(counts)
        active_counts = counts[active]
        # Seed pairs: row r holds source offset_g + start + r of every
        # graph g with counts_g > r.
        seed_rows = (
            np.arange(int(active_counts.sum()), dtype=np.int64)
            - np.repeat(
                np.cumsum(active_counts) - active_counts, active_counts
            )
        )
        seed_cols = (
            np.repeat(offsets[:-1][active] + start, active_counts) + seed_rows
        )
        sigma, dist, visited, levels = _forward_sweep(
            transpose, seed_rows, seed_cols, block_rows, n_total
        )
        reach = np.add.reduceat(
            visited.astype(np.int64), seg_starts, axis=1
        )
        totals = np.add.reduceat(np.maximum(dist, 0), seg_starts, axis=1)
        seed_seg = seg_column[np.repeat(active, active_counts)]
        source_reach = reach[seed_rows, seed_seg]
        source_totals = totals[seed_rows, seed_seg].astype(np.float64)
        valid = (source_reach > 1) & (source_totals > 0.0)
        closeness[seed_cols[valid]] = (
            source_reach[valid] - 1
        ) / source_totals[valid]
        betweenness += _backward_sweep(
            matrix, sigma, levels, seed_rows, seed_cols
        )
    betweenness /= 2.0  # each undirected pair counted twice
    scale = np.ones(num_graphs, dtype=np.float64)
    big = sizes > 2
    scale[big] = 2.0 / ((sizes[big] - 1) * (sizes[big] - 2))
    betweenness *= scale[graph_of_node]

    pagerank = _pagerank_block_diagonal(
        transpose,
        out_degree,
        sizes,
        graph_of_node,
        seg_starts,
        alpha=0.85,
        max_iterations=200,
        tolerance=1e-10,
    )
    return np.column_stack([degree, closeness, betweenness, pagerank])


def _extract_active_blocks(
    matrix: sp.csr_matrix, keep: np.ndarray
) -> sp.csr_matrix:
    """Rows *and* columns of a block-diagonal CSR cut down to kept blocks.

    ``keep`` flags the nodes of surviving blocks.  Because blocks are
    disconnected, every stored entry of a kept row points at a kept
    node, so the extraction drops no entries of kept rows and copies
    each row's entries in stored order — a mat-vec on the shrunk matrix
    adds the same numbers in the same order as the full-pack one.
    """
    rows = np.flatnonzero(keep)
    counts = np.diff(matrix.indptr)[rows]
    indptr = np.zeros(rows.size + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    gather = np.arange(int(indptr[-1]), dtype=np.int64) + np.repeat(
        matrix.indptr[rows] - indptr[:-1], counts
    )
    column_map = np.cumsum(keep, dtype=np.int64) - 1
    return sp.csr_matrix(
        (matrix.data[gather], column_map[matrix.indices[gather]], indptr),
        shape=(rows.size, rows.size),
    )


def _pagerank_block_diagonal(
    transpose: sp.csr_matrix,
    out_degree: np.ndarray,
    sizes: np.ndarray,
    graph_of_node: np.ndarray,
    seg_starts: np.ndarray,
    alpha: float,
    max_iterations: int,
    tolerance: float,
) -> np.ndarray:
    """Per-graph power-iteration PageRank over the packed matrix.

    Teleport (``(1 − α)/n_g``), dangling-mass redistribution
    (``α · Σ_dangling rank / n_g``), and the L1 convergence test are all
    per-graph segment quantities; a graph's segment freezes at its own
    first iteration under ``tolerance``, exactly like the per-graph
    early return of the unbatched kernel.

    The iteration runs over a *working pack* that starts as the full
    matrix and shrinks: once frozen graphs hold the majority of working
    nodes, their (final) ranks are scattered back and the pack — matrix
    plus every per-node/per-graph array — is compacted to the active
    blocks via :func:`_extract_active_blocks`.  On convergence-skewed
    packs this stops the slowest graph from dragging everyone else's
    rows through the mat-vec.  The shrink is exact, not approximate:
    blocks are disconnected, frozen segments are never read by active
    ones, and the surviving rows keep their stored entry order, so
    every iterate of every graph is bit-identical to the full-pack loop
    (``tests/test_batched_centrality.py`` pins this against the
    unbatched kernel and the pure-Python oracle).
    """
    num_graphs = sizes.size
    dangling = out_degree == 0.0
    inverse_out = np.where(
        dangling, 0.0, 1.0 / np.where(dangling, 1.0, out_degree)
    )
    nonempty = sizes > 0
    inv_n = np.zeros(num_graphs, dtype=np.float64)
    inv_n[nonempty] = 1.0 / sizes[nonempty]
    rank = inv_n[graph_of_node]
    base = np.zeros(num_graphs, dtype=np.float64)
    base[nonempty] = (1.0 - alpha) / sizes[nonempty]

    # Working-pack state, one entry per still-working node/graph.
    w_matrix = transpose
    w_nodes = np.arange(out_degree.size, dtype=np.int64)  # row -> node
    w_rank = rank.copy()
    w_inverse_out = inverse_out
    w_base = base[graph_of_node]
    w_dangling = dangling
    w_sizes = sizes[nonempty].astype(np.int64)
    w_active = np.ones(w_sizes.size, dtype=bool)
    w_graph_of = np.repeat(np.arange(w_sizes.size), w_sizes)
    w_starts = np.zeros(w_sizes.size, dtype=np.int64)
    np.cumsum(w_sizes[:-1], out=w_starts[1:])
    w_dang_idx = np.flatnonzero(w_dangling)

    for _ in range(max_iterations):
        if not w_active.any():
            break
        if w_dang_idx.size:
            mass = np.bincount(
                w_graph_of[w_dang_idx],
                weights=w_rank[w_dang_idx],
                minlength=w_sizes.size,
            )
            mass = alpha * mass / w_sizes
        else:
            mass = np.zeros(w_sizes.size, dtype=np.float64)
        new_rank = (
            w_base
            + mass[w_graph_of]
            + alpha * (w_matrix @ (w_rank * w_inverse_out))
        )
        residuals = np.add.reduceat(np.abs(new_rank - w_rank), w_starts)
        update_nodes = np.repeat(w_active, w_sizes)
        w_rank = np.where(update_nodes, new_rank, w_rank)
        w_active &= ~(residuals < tolerance)
        keep = np.repeat(w_active, w_sizes)
        if (
            w_active.any()
            and not w_active.all()
            and int(keep.sum()) * 2 <= keep.size
        ):
            # Frozen blocks are the majority of working rows: scatter
            # their final ranks back and shrink the pack to the rest.
            rank[w_nodes] = w_rank
            w_matrix = _extract_active_blocks(w_matrix, keep)
            w_nodes = w_nodes[keep]
            w_rank = w_rank[keep]
            w_inverse_out = w_inverse_out[keep]
            w_base = w_base[keep]
            w_dangling = w_dangling[keep]
            w_sizes = w_sizes[w_active]
            w_active = np.ones(w_sizes.size, dtype=bool)
            w_graph_of = np.repeat(np.arange(w_sizes.size), w_sizes)
            w_starts = np.zeros(w_sizes.size, dtype=np.int64)
            np.cumsum(w_sizes[:-1], out=w_starts[1:])
            w_dang_idx = np.flatnonzero(w_dangling)
    rank[w_nodes] = w_rank
    return rank


def batched_centrality_matrices(
    matrices: Sequence[sp.csr_matrix],
    max_batch_nodes: Optional[int] = DEFAULT_MAX_BATCH_NODES,
    size_sort: bool = True,
) -> List[np.ndarray]:
    """Per-graph ``(n_g, 4)`` centrality matrices via block-diagonal packs.

    The batched equivalent of calling
    :func:`~repro.graphs.centrality.centrality_matrix_csr` on each
    adjacency: graphs are packed into block-diagonal chunks of at most
    ``max_batch_nodes`` total nodes (``None`` packs everything into
    one; packing is size-sorted skew-aware by default — see
    :func:`plan_packs`), each chunk runs one
    :func:`centrality_matrix_block_diagonal` sweep, and the results are
    scattered back in input order.  Each returned matrix owns its
    memory (no views into the pack), is float64, and column order is
    degree, closeness, betweenness, PageRank.  A ``0 × 0`` adjacency
    yields a ``(0, 4)`` matrix.
    """
    sizes = [int(matrix.shape[0]) for matrix in matrices]
    results: List[np.ndarray] = [None] * len(sizes)  # type: ignore[list-item]
    for pack in plan_packs(sizes, max_batch_nodes, size_sort=size_sort):
        packed, offsets = pack_block_diagonal(
            [matrices[i] for i in pack]
        )
        stacked = centrality_matrix_block_diagonal(packed, offsets)
        for local, graph_index in enumerate(pack):
            lo, hi = int(offsets[local]), int(offsets[local + 1])
            results[int(graph_index)] = stacked[lo:hi].copy()
    return results
