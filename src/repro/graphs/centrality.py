"""Network centrality measures, from scratch (paper §III-A-3, Eq. 8–11).

All four measures operate on an undirected, unweighted graph given as
adjacency lists.  They are validated against networkx in the test suite
(networkx is a test-only dependency).

- **Degree centrality** (Eq. 8): here normalised by ``n − 1`` so the
  feature is scale-free across graphs of different sizes.
- **Closeness centrality** (Eq. 9): ``(r − 1) / Σ d`` over the ``r``
  nodes reachable from ``v`` (the paper's formula restricted to the
  node's component; isolated nodes score 0).
- **Betweenness centrality** (Eq. 10): Brandes' algorithm, with the
  standard undirected normalisation ``2 / ((n − 1)(n − 2))``.
- **PageRank centrality** (Eq. 11): power iteration with uniform
  dangling-mass redistribution.
"""

from __future__ import annotations

from collections import deque
from typing import List, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "degree_centrality",
    "closeness_centrality",
    "betweenness_centrality",
    "pagerank_centrality",
    "centrality_matrix",
]

Adjacency = Sequence[Sequence[int]]


def _validate(adjacency: Adjacency) -> int:
    n = len(adjacency)
    for node, neighbors in enumerate(adjacency):
        for neighbor in neighbors:
            if not 0 <= neighbor < n:
                raise ValidationError(
                    f"adjacency[{node}] references unknown node {neighbor}"
                )
    return n


def degree_centrality(adjacency: Adjacency) -> np.ndarray:
    """Degree divided by ``n − 1`` (1.0 = connected to everyone)."""
    n = _validate(adjacency)
    if n <= 1:
        return np.zeros(n, dtype=np.float64)
    degrees = np.array([len(nbrs) for nbrs in adjacency], dtype=np.float64)
    return degrees / (n - 1)


def _bfs_distances(adjacency: Adjacency, source: int) -> np.ndarray:
    n = len(adjacency)
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if dist[neighbor] < 0:
                dist[neighbor] = dist[node] + 1
                queue.append(neighbor)
    return dist


def closeness_centrality(adjacency: Adjacency) -> np.ndarray:
    """Per-component closeness ``(r − 1) / Σ d`` (Eq. 9)."""
    n = _validate(adjacency)
    scores = np.zeros(n, dtype=np.float64)
    for node in range(n):
        dist = _bfs_distances(adjacency, node)
        reachable = dist >= 0
        r = int(reachable.sum())
        if r <= 1:
            continue
        total = float(dist[reachable].sum())
        if total > 0:
            scores[node] = (r - 1) / total
    return scores


def betweenness_centrality(
    adjacency: Adjacency, normalized: bool = True
) -> np.ndarray:
    """Shortest-path betweenness via Brandes' accumulation (Eq. 10)."""
    n = _validate(adjacency)
    scores = np.zeros(n, dtype=np.float64)
    for source in range(n):
        stack: List[int] = []
        predecessors: List[List[int]] = [[] for _ in range(n)]
        sigma = np.zeros(n, dtype=np.float64)
        sigma[source] = 1.0
        dist = np.full(n, -1, dtype=np.int64)
        dist[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            stack.append(node)
            for neighbor in adjacency[node]:
                if dist[neighbor] < 0:
                    dist[neighbor] = dist[node] + 1
                    queue.append(neighbor)
                if dist[neighbor] == dist[node] + 1:
                    sigma[neighbor] += sigma[node]
                    predecessors[neighbor].append(node)
        delta = np.zeros(n, dtype=np.float64)
        while stack:
            node = stack.pop()
            for pred in predecessors[node]:
                delta[pred] += sigma[pred] / sigma[node] * (1.0 + delta[node])
            if node != source:
                scores[node] += delta[node]
    scores /= 2.0  # each undirected pair counted twice
    if normalized and n > 2:
        scores *= 2.0 / ((n - 1) * (n - 2))
    return scores


def pagerank_centrality(
    adjacency: Adjacency,
    alpha: float = 0.85,
    max_iterations: int = 200,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Power-iteration PageRank with dangling redistribution (Eq. 11)."""
    n = _validate(adjacency)
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    if not 0.0 < alpha < 1.0:
        raise ValidationError(f"alpha must be in (0, 1), got {alpha}")
    out_degree = np.array([len(nbrs) for nbrs in adjacency], dtype=np.float64)
    dangling = out_degree == 0
    rank = np.full(n, 1.0 / n, dtype=np.float64)
    for _ in range(max_iterations):
        new_rank = np.full(n, (1.0 - alpha) / n, dtype=np.float64)
        dangling_mass = alpha * float(rank[dangling].sum()) / n
        new_rank += dangling_mass
        for node, neighbors in enumerate(adjacency):
            if not neighbors:
                continue
            share = alpha * rank[node] / out_degree[node]
            for neighbor in neighbors:
                new_rank[neighbor] += share
        if float(np.abs(new_rank - rank).sum()) < tolerance:
            rank = new_rank
            break
        rank = new_rank
    return rank


def centrality_matrix(adjacency: Adjacency) -> np.ndarray:
    """All four centralities stacked: shape ``(n, 4)``.

    Column order: degree, closeness, betweenness, PageRank — the layout
    consumed by :mod:`repro.graphs.augmentation`.
    """
    return np.column_stack(
        [
            degree_centrality(adjacency),
            closeness_centrality(adjacency),
            betweenness_centrality(adjacency),
            pagerank_centrality(adjacency),
        ]
    )
