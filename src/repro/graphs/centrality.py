"""Network centrality measures on a sparse CSR substrate (Eq. 8–11).

All four measures accept the same undirected, unweighted adjacency-list
API as before — the lists are converted once to a ``scipy.sparse`` CSR
matrix and every per-node Python loop is replaced by batched sparse
linear algebra.  They are validated against networkx *and* against the
original per-node implementations (:mod:`repro.graphs.reference`) in the
test suite.

**Batched-BFS formulation.**  Instead of one BFS per source, sources are
processed in blocks of ``B`` (:data:`BFS_BLOCK`).  A block carries a
dense frontier matrix ``F ∈ {0,1}^{B×n}``; one BFS level for all ``B``
sources is a single sparse mat-mat product ``F′ = (F · A) ∧ ¬V`` (``V``
the visited mask), so a block finishes in ``diameter`` sparse products
of cost ``O(B·E)`` each instead of ``B·(V+E)`` interpreted Python steps.
Per-source distances fall out as the level at which each node joins
``V``, and Brandes' path counts ride along in the same product by
propagating ``σ`` instead of booleans.  Total work is ``O(E·n·diam/B)``
sparse-product FLOPs with ``O(B·n)`` scratch memory — more FLOPs than
the serial formulation, but they run inside BLAS-grade kernels, which on
the paper's slice graphs (tens to low thousands of nodes, diameter ≈ 4)
is an order-of-magnitude wall-clock win (tracked by
``benchmarks/bench_pipeline_throughput.py``).

- **Degree centrality** (Eq. 8): neighbour counts off the CSR index
  pointer, normalised by ``n − 1``.
- **Closeness centrality** (Eq. 9): ``(r − 1) / Σ d`` over the ``r``
  nodes reachable from ``v``, distances from the batched BFS.
- **Betweenness centrality** (Eq. 10): Brandes' algorithm with the
  path-counting sweep (``σ_{L+1} = (σ ⊙ F_L) · A`` masked to the new
  frontier) and the dependency back-propagation (``δ_{L−1} += σ_{L−1} ⊙
  ((1+δ_L)/σ_L · Aᵀ)``) batched over source blocks.
- **PageRank centrality** (Eq. 11): power iteration as a CSR mat-vec
  with uniform dangling-mass redistribution — ``O(E)`` per iteration.

The adjacency lists may be directed (asymmetric); forward propagation
uses ``Aᵀ`` and Brandes' back-propagation uses ``A``, which coincide on
the undirected graphs the pipeline builds.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError

__all__ = [
    "BFS_BLOCK",
    "degree_centrality",
    "closeness_centrality",
    "betweenness_centrality",
    "pagerank_centrality",
    "centrality_matrix",
    "centrality_matrix_csr",
]

Adjacency = Sequence[Sequence[int]]

#: Sources per batched-BFS block: bounds the dense frontier/σ/δ scratch
#: arrays at ``BFS_BLOCK × n`` float64 while keeping the sparse products
#: wide enough to amortise per-level overhead.
BFS_BLOCK = 64


def _adjacency_arrays(adjacency: Adjacency) -> Tuple[np.ndarray, np.ndarray]:
    """Validated ``(indptr, indices)`` CSR arrays of the adjacency lists.

    Duplicate neighbour entries are preserved — they weight σ, PageRank
    shares, and degree exactly as the original per-edge loops did.
    """
    n = len(adjacency)
    lengths = np.fromiter(
        (len(neighbors) for neighbors in adjacency), dtype=np.int64, count=n
    )
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    if indptr[-1]:
        indices = np.concatenate(
            [
                np.asarray(neighbors, dtype=np.int64)
                for neighbors in adjacency
                if len(neighbors)
            ]
        )
    else:
        indices = np.zeros(0, dtype=np.int64)
    if indices.size and not (
        0 <= int(indices.min()) and int(indices.max()) < n
    ):
        bad = int(np.flatnonzero((indices < 0) | (indices >= n))[0])
        node = int(np.searchsorted(indptr, bad, side="right")) - 1
        raise ValidationError(
            f"adjacency[{node}] references unknown node {int(indices[bad])}"
        )
    return indptr, indices


def _csr_from_lists(adjacency: Adjacency) -> sp.csr_matrix:
    indptr, indices = _adjacency_arrays(adjacency)
    data = np.ones(indices.size, dtype=np.float64)
    return sp.csr_matrix(
        (data, indices, indptr), shape=(len(adjacency), len(adjacency))
    )


def degree_centrality(adjacency: Adjacency) -> np.ndarray:
    """Degree divided by ``n − 1`` (1.0 = connected to everyone)."""
    indptr, _ = _adjacency_arrays(adjacency)
    n = len(adjacency)
    if n <= 1:
        return np.zeros(n, dtype=np.float64)
    return np.diff(indptr).astype(np.float64) / (n - 1)


def _source_blocks(n: int) -> "range":
    return range(0, n, BFS_BLOCK)


Level = Tuple[np.ndarray, np.ndarray]


def _forward_sweep(
    transpose: sp.csr_matrix,
    seed_rows: np.ndarray,
    seed_cols: np.ndarray,
    num_rows: int,
    n: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Level]]:
    """Level-synchronous BFS + path counting for one source block.

    Sources are given as ``(seed_rows, seed_cols)`` index pairs into the
    ``num_rows × n`` work arrays.  The per-graph kernels seed one source
    per row (``seed_rows = arange(b)``); the block-diagonal batched
    kernel (:mod:`repro.graphs.batched_centrality`) seeds one source
    *per graph* per row, which is sound because BFS regions of the
    block-diagonal graphs never overlap.

    Returns ``(sigma, dist, visited, levels)`` where ``sigma``/``dist``/
    ``visited`` have a row per source row and ``levels[L]`` holds the
    ``(source row, node)`` index pairs at BFS depth ``L``.  Each level
    costs one sparse mat-mat product; every (source, node) pair appears
    in exactly one level, so the level lists total ``O(B·n)`` memory —
    the same bound as the dense work arrays.
    """
    b = num_rows
    sigma = np.zeros((b, n), dtype=np.float64)
    sigma[seed_rows, seed_cols] = 1.0
    visited = np.zeros((b, n), dtype=bool)
    visited[seed_rows, seed_cols] = True
    dist = np.full((b, n), -1, dtype=np.int64)
    dist[seed_rows, seed_cols] = 0
    levels: List[Level] = [(seed_rows, seed_cols)]
    frontier = np.zeros((b, n), dtype=np.float64)
    level = 0
    while True:
        level += 1
        frontier[:] = 0.0
        last_rows, last_cols = levels[-1]
        frontier[last_rows, last_cols] = sigma[last_rows, last_cols]
        counts = (transpose @ frontier.T).T
        newly = (counts > 0.0) & ~visited
        new_rows, new_cols = np.nonzero(newly)
        if new_rows.size == 0:
            return sigma, dist, visited, levels
        sigma[new_rows, new_cols] = counts[new_rows, new_cols]
        dist[new_rows, new_cols] = level
        visited[new_rows, new_cols] = True
        levels.append((new_rows, new_cols))


def _backward_sweep(
    matrix: sp.csr_matrix,
    sigma: np.ndarray,
    levels: List[Level],
    seed_rows: np.ndarray,
    seed_cols: np.ndarray,
) -> np.ndarray:
    """Brandes' dependency accumulation for one source block.

    A node at level L−1 receives ``σ_u · Σ_{v ∈ Γ(u) ∩ level L}
    (1 + δ_v)/σ_v``; same-level and back edges are masked out, which is
    exactly Brandes' shortest-path-DAG restriction.  Returns the summed
    per-node dependency of the block (source self-dependencies, seeded
    at the ``(seed_rows, seed_cols)`` pairs of the forward sweep,
    zeroed).
    """
    delta = np.zeros_like(sigma)
    coefficient = np.zeros_like(sigma)
    for level in range(len(levels) - 1, 0, -1):
        rows, cols = levels[level]
        coefficient[:] = 0.0
        coefficient[rows, cols] = (1.0 + delta[rows, cols]) / sigma[rows, cols]
        contribution = (matrix @ coefficient.T).T
        prev_rows, prev_cols = levels[level - 1]
        delta[prev_rows, prev_cols] += (
            sigma[prev_rows, prev_cols] * contribution[prev_rows, prev_cols]
        )
    delta[seed_rows, seed_cols] = 0.0
    return delta.sum(axis=0)


def _closeness_from_sweep(
    dist: np.ndarray, visited: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-source ``(valid mask, closeness)`` from batched BFS output."""
    reachable = visited.sum(axis=1)
    # dist is 0 at the source and -1 off-component, so clipping at 0
    # sums exactly the distances of reachable nodes.
    totals = np.maximum(dist, 0).sum(axis=1).astype(np.float64)
    valid = (reachable > 1) & (totals > 0.0)
    scores = np.zeros(dist.shape[0], dtype=np.float64)
    scores[valid] = (reachable[valid] - 1) / totals[valid]
    return valid, scores


def closeness_centrality(adjacency: Adjacency) -> np.ndarray:
    """Per-component closeness ``(r − 1) / Σ d`` (Eq. 9)."""
    matrix = _csr_from_lists(adjacency)
    transpose = matrix.transpose().tocsr()
    n = matrix.shape[0]
    scores = np.zeros(n, dtype=np.float64)
    for start in _source_blocks(n):
        sources = np.arange(start, min(start + BFS_BLOCK, n))
        rows = np.arange(sources.size)
        _, dist, visited, _ = _forward_sweep(
            transpose, rows, sources, sources.size, n
        )
        valid, block_scores = _closeness_from_sweep(dist, visited)
        scores[sources[valid]] = block_scores[valid]
    return scores


def betweenness_centrality(
    adjacency: Adjacency, normalized: bool = True
) -> np.ndarray:
    """Shortest-path betweenness via source-blocked Brandes (Eq. 10)."""
    matrix = _csr_from_lists(adjacency)
    transpose = matrix.transpose().tocsr()
    n = matrix.shape[0]
    scores = np.zeros(n, dtype=np.float64)
    for start in _source_blocks(n):
        sources = np.arange(start, min(start + BFS_BLOCK, n))
        rows = np.arange(sources.size)
        sigma, _, _, levels = _forward_sweep(
            transpose, rows, sources, sources.size, n
        )
        scores += _backward_sweep(matrix, sigma, levels, rows, sources)
    scores /= 2.0  # each undirected pair counted twice
    if normalized and n > 2:
        scores *= 2.0 / ((n - 1) * (n - 2))
    return scores


def pagerank_centrality(
    adjacency: Adjacency,
    alpha: float = 0.85,
    max_iterations: int = 200,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Power-iteration PageRank as CSR mat-vecs (Eq. 11)."""
    matrix = _csr_from_lists(adjacency)
    if matrix.shape[0] == 0:
        return np.zeros(0, dtype=np.float64)
    if not 0.0 < alpha < 1.0:
        raise ValidationError(f"alpha must be in (0, 1), got {alpha}")
    return _pagerank_power_iteration(
        matrix.transpose().tocsr(),
        np.diff(matrix.indptr).astype(np.float64),
        alpha,
        max_iterations,
        tolerance,
    )


def _pagerank_power_iteration(
    transpose: sp.csr_matrix,
    out_degree: np.ndarray,
    alpha: float,
    max_iterations: int,
    tolerance: float,
) -> np.ndarray:
    n = out_degree.size
    dangling = out_degree == 0.0
    inverse_out = np.where(dangling, 0.0, 1.0 / np.where(dangling, 1.0, out_degree))
    rank = np.full(n, 1.0 / n, dtype=np.float64)
    base = (1.0 - alpha) / n
    for _ in range(max_iterations):
        dangling_mass = alpha * float(rank[dangling].sum()) / n
        new_rank = (
            base + dangling_mass + alpha * (transpose @ (rank * inverse_out))
        )
        if float(np.abs(new_rank - rank).sum()) < tolerance:
            return new_rank
        rank = new_rank
    return rank


def centrality_matrix(adjacency: Adjacency) -> np.ndarray:
    """All four centralities stacked: shape ``(n, 4)``.

    Column order: degree, closeness, betweenness, PageRank — the layout
    consumed by :mod:`repro.graphs.augmentation`.  The CSR conversion
    and the batched BFS sweeps are done once and shared by all four
    measures.
    """
    matrix = _csr_from_lists(adjacency)
    return centrality_matrix_csr(
        matrix, out_degree=np.diff(matrix.indptr).astype(np.float64)
    )


def centrality_matrix_csr(
    matrix: sp.csr_matrix, out_degree: "np.ndarray | None" = None
) -> np.ndarray:
    """:func:`centrality_matrix` for an adjacency already in CSR form.

    The fast path for :func:`repro.graphs.augmentation.augment_graph`,
    which builds the CSR directly from edge arrays and skips the
    adjacency-list round trip.  One forward sweep per source block feeds
    both closeness and betweenness.  ``out_degree`` defaults to the CSR
    row lengths (distinct-neighbour counts for a deduplicated matrix).
    """
    n = matrix.shape[0]
    if n == 0:
        return np.zeros((0, 4), dtype=np.float64)
    if out_degree is None:
        out_degree = np.diff(matrix.indptr).astype(np.float64)
    transpose = matrix.transpose().tocsr()

    degree = (
        out_degree / (n - 1) if n > 1 else np.zeros(n, dtype=np.float64)
    )

    closeness = np.zeros(n, dtype=np.float64)
    betweenness = np.zeros(n, dtype=np.float64)
    for start in _source_blocks(n):
        sources = np.arange(start, min(start + BFS_BLOCK, n))
        rows = np.arange(sources.size)
        sigma, dist, visited, levels = _forward_sweep(
            transpose, rows, sources, sources.size, n
        )
        valid, block_scores = _closeness_from_sweep(dist, visited)
        closeness[sources[valid]] = block_scores[valid]
        betweenness += _backward_sweep(matrix, sigma, levels, rows, sources)
    betweenness /= 2.0
    if n > 2:
        betweenness *= 2.0 / ((n - 1) * (n - 2))

    pagerank = _pagerank_power_iteration(
        transpose, out_degree, alpha=0.85, max_iterations=200, tolerance=1e-10
    )
    return np.column_stack([degree, closeness, betweenness, pagerank])
