"""Stages 2–3 — graph node compression (paper §III-A-2, Eq. 1–7).

Two passes bound the size of the original address graphs while preserving
the transfer statistics of merged nodes through SFE:

- **Single-transaction address compression** (Fig. 3): all non-centre
  address nodes touching exactly one transaction are merged, per
  transaction and per side (input/output), into a *single-transaction
  hyper node* whose value bag is the union of its members' (Eq. 2).
- **Multi-transaction address compression** (Fig. 4): address nodes
  touching two or more transactions are compared via the co-occurrence
  similarity ``M = A·Aᵀ·D⁻¹`` (Eq. 3–4); groups whose thresholded
  similarity row ``Q = ReLU(M − Ψ)`` (Eq. 5) has more than σ non-zeros
  are merged into *multi-transaction hyper nodes* (Eq. 6–7).

The centre address node is never merged — it is the classification
subject.  Transaction nodes are never merged.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.graphs.model import AddressGraph, GraphEdge, GraphNode, NodeKind

__all__ = [
    "compress_single_transaction_addresses",
    "compress_multi_transaction_addresses",
    "similarity_matrices",
]


def _distinct_neighbors(graph: AddressGraph) -> List[Set[int]]:
    neighbors: List[Set[int]] = [set() for _ in range(graph.num_nodes)]
    for edge in graph.edges:
        neighbors[edge.src].add(edge.dst)
        neighbors[edge.dst].add(edge.src)
    return neighbors


def _rebuild_with_merges(
    graph: AddressGraph,
    merge_groups: List[Tuple[str, str, List[int]]],
) -> AddressGraph:
    """Rebuild ``graph`` with each ``(kind, ref, member_ids)`` group merged.

    Member edges to the rest of the graph are aggregated per
    ``(other node, direction)`` with summed values; member value bags are
    concatenated (the input to SFE at feature-assembly time).
    """
    member_to_group: Dict[int, int] = {}
    for group_index, (_, _, members) in enumerate(merge_groups):
        for member in members:
            member_to_group[member] = group_index

    new_nodes: List[GraphNode] = []
    old_to_new: Dict[int, int] = {}
    for node in graph.nodes:
        if node.node_id in member_to_group:
            continue
        new_id = len(new_nodes)
        old_to_new[node.node_id] = new_id
        new_nodes.append(
            GraphNode(
                node_id=new_id,
                kind=node.kind,
                ref=node.ref,
                values=list(node.values),
                merged_count=node.merged_count,
                centrality=node.centrality,
            )
        )
    group_new_ids: List[int] = []
    for kind, ref, members in merge_groups:
        new_id = len(new_nodes)
        group_new_ids.append(new_id)
        bag: List[float] = []
        merged_count = 0
        for member in members:
            bag.extend(graph.nodes[member].values)
            merged_count += graph.nodes[member].merged_count
        new_nodes.append(
            GraphNode(
                node_id=new_id,
                kind=kind,
                ref=ref,
                values=bag,
                merged_count=merged_count,
            )
        )

    def resolve(old_id: int) -> int:
        group = member_to_group.get(old_id)
        if group is not None:
            return group_new_ids[group]
        return old_to_new[old_id]

    aggregated: Dict[Tuple[int, int], float] = {}
    order: List[Tuple[int, int]] = []
    for edge in graph.edges:
        key = (resolve(edge.src), resolve(edge.dst))
        if key not in aggregated:
            aggregated[key] = 0.0
            order.append(key)
        aggregated[key] += edge.value

    new_edges = [
        GraphEdge(src=src, dst=dst, value=aggregated[(src, dst)])
        for src, dst in order
    ]
    return graph.rebuild(new_nodes, new_edges)


# --------------------------------------------------------------------- #
# Stage 2 — single-transaction address compression
# --------------------------------------------------------------------- #


def compress_single_transaction_addresses(graph: AddressGraph) -> AddressGraph:
    """Merge degree-1 address nodes per transaction and side (Fig. 3).

    After this pass a transaction node links to at most one
    single-transaction hyper node on its input side and one on its output
    side (plus any remaining multi-transaction or centre address nodes).
    Address nodes appearing on *both* sides of their single transaction
    (self-change) are left unmerged — they carry a distinct signature.
    """
    neighbors = _distinct_neighbors(graph)
    center_id = graph.center_node_id()

    in_side: Dict[int, Set[int]] = {}
    out_side: Dict[int, Set[int]] = {}
    for edge in graph.edges:
        src_node = graph.nodes[edge.src]
        dst_node = graph.nodes[edge.dst]
        if src_node.kind == NodeKind.ADDRESS and dst_node.kind == NodeKind.TRANSACTION:
            in_side.setdefault(edge.dst, set()).add(edge.src)
        elif src_node.kind == NodeKind.TRANSACTION and dst_node.kind == NodeKind.ADDRESS:
            out_side.setdefault(edge.src, set()).add(edge.dst)

    merge_groups: List[Tuple[str, str, List[int]]] = []
    for tx_id, side_map, tag in (
        *((tx, in_side, "in") for tx in in_side),
        *((tx, out_side, "out") for tx in out_side),
    ):
        members = []
        other = out_side if tag == "in" else in_side
        for addr_id in sorted(side_map[tx_id]):
            node = graph.nodes[addr_id]
            if addr_id == center_id or node.kind != NodeKind.ADDRESS:
                continue
            if len(neighbors[addr_id]) != 1:
                continue  # multi-transaction address
            if addr_id in other.get(tx_id, ()):  # appears on both sides
                continue
            members.append(addr_id)
        if len(members) >= 2:
            tx_ref = graph.nodes[tx_id].ref
            merge_groups.append(
                (NodeKind.SINGLE_HYPER, f"s:{tx_ref}:{tag}", members)
            )

    if not merge_groups:
        return graph
    return _rebuild_with_merges(graph, merge_groups)


# --------------------------------------------------------------------- #
# Stage 3 — multi-transaction address compression
# --------------------------------------------------------------------- #


def similarity_matrices(
    graph: AddressGraph,
) -> Tuple[List[int], List[int], np.ndarray, np.ndarray]:
    """The incidence and similarity matrices of Eq. (3)–(4).

    Returns ``(multi_ids, tx_ids, S, M)`` where ``multi_ids`` are the
    candidate multi-transaction address node ids (degree ≥ 2 address
    nodes, centre excluded), ``S = A·Aᵀ`` counts shared transactions and
    ``M = S·D⁻¹`` is the column-normalised similarity (``m_ij = s_ij /
    s_jj`` — the fraction of j's transactions shared with i, exactly the
    paper's worked example ``m31 = s31 / s11 = 0.7``).
    """
    neighbors = _distinct_neighbors(graph)
    center_id = graph.center_node_id()
    tx_ids = [n.node_id for n in graph.nodes if n.kind == NodeKind.TRANSACTION]
    tx_index = {tx: i for i, tx in enumerate(tx_ids)}
    multi_ids = [
        node.node_id
        for node in graph.nodes
        if node.kind == NodeKind.ADDRESS
        and node.node_id != center_id
        and len(neighbors[node.node_id]) >= 2
    ]
    n, d = len(multi_ids), len(tx_ids)
    incidence = np.zeros((n, d), dtype=np.float64)
    for row, addr_id in enumerate(multi_ids):
        for neighbor in neighbors[addr_id]:
            col = tx_index.get(neighbor)
            if col is not None:
                incidence[row, col] = 1.0
    shared = incidence @ incidence.T
    diagonal = np.diag(shared).copy()
    safe = np.where(diagonal > 0, diagonal, 1.0)
    similarity = shared / safe[np.newaxis, :]
    return multi_ids, tx_ids, shared, similarity


def compress_multi_transaction_addresses(
    graph: AddressGraph,
    psi: float = 0.6,
    sigma: int = 2,
) -> AddressGraph:
    """Merge co-occurring multi-transaction address nodes (Eq. 3–7).

    ``Q = ReLU(M − Ψ)`` thresholds the similarity; a node whose row has
    more than ``sigma`` non-zeros is merged with its similar set.  Groups
    are formed greedily from the densest rows; each node joins at most
    one hyper node.
    """
    if not 0.0 < psi <= 1.0:
        raise ValidationError(f"psi must be in (0, 1], got {psi}")
    if sigma < 1:
        raise ValidationError(f"sigma must be >= 1, got {sigma}")

    multi_ids, _, _, similarity = similarity_matrices(graph)
    if len(multi_ids) < 2:
        return graph

    thresholded = np.maximum(0.0, similarity - psi)  # Eq. (5)
    nonzero_counts = (thresholded > 0.0).sum(axis=1)

    merged: Set[int] = set()
    merge_groups: List[Tuple[str, str, List[int]]] = []
    for row in np.argsort(-nonzero_counts):
        row = int(row)
        if nonzero_counts[row] <= sigma or row in merged:
            continue
        similar_rows = [
            int(col)
            for col in np.flatnonzero(thresholded[row] > 0.0)
            if int(col) not in merged
        ]
        if len(similar_rows) < 2:
            continue
        merged.update(similar_rows)
        members = [multi_ids[col] for col in similar_rows]
        anchor_ref = graph.nodes[multi_ids[row]].ref
        merge_groups.append((NodeKind.MULTI_HYPER, f"m:{anchor_ref}", members))

    if not merge_groups:
        return graph
    return _rebuild_with_merges(graph, merge_groups)
