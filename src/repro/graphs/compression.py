"""Stages 2–3 — graph node compression (paper §III-A-2, Eq. 1–7).

Two passes bound the size of the original address graphs while preserving
the transfer statistics of merged nodes through SFE:

- **Single-transaction address compression** (Fig. 3): all non-centre
  address nodes touching exactly one transaction are merged, per
  transaction and per side (input/output), into a *single-transaction
  hyper node* whose value bag is the union of its members' (Eq. 2).
- **Multi-transaction address compression** (Fig. 4): address nodes
  touching two or more transactions are compared via the co-occurrence
  similarity ``M = A·Aᵀ·D⁻¹`` (Eq. 3–4); groups whose thresholded
  similarity row ``Q = ReLU(M − Ψ)`` (Eq. 5) has more than σ non-zeros
  are merged into *multi-transaction hyper nodes* (Eq. 6–7).

The centre address node is never merged — it is the classification
subject.  Transaction nodes are never merged.

**Vectorized formulation.**  Both passes and the shared rebuild step run
on ndarray edge columns instead of per-edge/per-member Python sets:
distinct degrees come from unique undirected node pairs, per-(tx, side)
candidate grouping from sorted integer pair keys, and the merge itself
is an array union-find — every old node id resolves through a single
``resolve`` lookup array (members point at their hyper node, survivors
at their re-densified id), so edge remapping is one fancy-indexing pass
and parallel-edge aggregation one ``bincount`` over first-seen-ordered
keys.  Output graphs are element-for-element identical to the original
set-based machinery (asserted against :mod:`repro.graphs.reference` in
the test suite).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.graphs.model import AddressGraph, GraphEdge, GraphNode, NodeKind

__all__ = [
    "compress_single_transaction_addresses",
    "compress_multi_transaction_addresses",
    "similarity_matrices",
]


def _edge_columns(
    graph: AddressGraph,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(src, dst, value)`` ndarray columns of the edge list."""
    src, dst = graph.edge_arrays()
    value = np.fromiter(
        (e.value for e in graph.edges), dtype=np.float64, count=graph.num_edges
    )
    return src, dst, value


def _unique_pairs(
    src: np.ndarray, dst: np.ndarray, num_nodes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct undirected ``(lo, hi)`` node pairs touched by any edge."""
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    keys = np.unique(lo * num_nodes + hi)
    return keys // num_nodes, keys % num_nodes


def _distinct_degrees(
    src: np.ndarray, dst: np.ndarray, num_nodes: int
) -> np.ndarray:
    """Distinct-neighbour count per node (self loops counted once)."""
    lo, hi = _unique_pairs(src, dst, num_nodes)
    endpoints = np.concatenate([lo, hi[hi != lo]])
    return np.bincount(endpoints, minlength=num_nodes)


def _kind_flags(graph: AddressGraph) -> Tuple[np.ndarray, np.ndarray]:
    """``(is_address, is_transaction)`` boolean masks over node ids."""
    is_address = np.fromiter(
        (node.kind == NodeKind.ADDRESS for node in graph.nodes),
        dtype=bool,
        count=graph.num_nodes,
    )
    is_transaction = np.fromiter(
        (node.kind == NodeKind.TRANSACTION for node in graph.nodes),
        dtype=bool,
        count=graph.num_nodes,
    )
    return is_address, is_transaction


def _rebuild_with_merges(
    graph: AddressGraph,
    merge_groups: List[Tuple[str, str, List[int]]],
    src: np.ndarray,
    dst: np.ndarray,
    value: np.ndarray,
) -> AddressGraph:
    """Rebuild ``graph`` with each ``(kind, ref, member_ids)`` group merged.

    Member edges to the rest of the graph are aggregated per
    ``(other node, direction)`` with summed values; member value bags are
    concatenated (the input to SFE at feature-assembly time).  The merge
    is resolved through flat lookup arrays (a one-level union-find whose
    path compression is precomputed): survivors map to densely
    re-assigned ids, members to their group's hyper-node id.
    """
    n = graph.num_nodes
    group_of = np.full(n, -1, dtype=np.int64)
    for group_index, (_, _, members) in enumerate(merge_groups):
        group_of[members] = group_index

    keep = group_of < 0
    num_kept = int(keep.sum())
    old_to_new = np.cumsum(keep) - 1  # densified ids for survivors
    resolve = np.where(keep, old_to_new, num_kept + group_of)

    new_nodes: List[GraphNode] = []
    for node in graph.nodes:
        if not keep[node.node_id]:
            continue
        new_nodes.append(
            GraphNode(
                node_id=len(new_nodes),
                kind=node.kind,
                ref=node.ref,
                values=list(node.values),
                merged_count=node.merged_count,
                centrality=node.centrality,
            )
        )
    for kind, ref, members in merge_groups:
        bag: List[float] = []
        merged_count = 0
        for member in members:
            bag.extend(graph.nodes[member].values)
            merged_count += graph.nodes[member].merged_count
        new_nodes.append(
            GraphNode(
                node_id=len(new_nodes),
                kind=kind,
                ref=ref,
                values=bag,
                merged_count=merged_count,
            )
        )

    num_new = num_kept + len(merge_groups)
    new_src = resolve[src]
    new_dst = resolve[dst]
    keys = new_src * num_new + new_dst
    # np.unique with return_index sorts stably, so ``first`` marks each
    # key's first occurrence; ordering by it reproduces the first-seen
    # edge order of the pre-vectorization dict accumulation, and
    # bincount accumulates parallel-edge values in the same edge order.
    unique_keys, first, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    sums = np.bincount(inverse, weights=value)
    order = np.argsort(first, kind="stable")
    new_edges = [
        GraphEdge(
            src=int(key // num_new), dst=int(key % num_new), value=float(total)
        )
        for key, total in zip(unique_keys[order], sums[order])
    ]
    return graph.rebuild(new_nodes, new_edges)


# --------------------------------------------------------------------- #
# Stage 2 — single-transaction address compression
# --------------------------------------------------------------------- #


def _side_groups(
    tx: np.ndarray,
    addr: np.ndarray,
    candidate: np.ndarray,
    num_nodes: int,
) -> List[Tuple[int, np.ndarray]]:
    """``(tx_id, member addr ids)`` per transaction for one side.

    ``tx``/``addr`` are the per-edge columns of that side in edge order;
    transactions are returned in first-edge order and members sorted
    ascending — the ordering of the original dict/set accumulation.
    """
    if tx.size == 0:
        return []
    tx_order, first = np.unique(tx, return_index=True)
    ordered_txs = tx_order[np.argsort(first, kind="stable")]
    eligible = candidate[addr]
    keys = np.unique(tx[eligible] * num_nodes + addr[eligible])
    group_txs = keys // num_nodes
    members = keys % num_nodes
    # ``keys`` is sorted, so members lie contiguously per transaction.
    unique_txs, starts = np.unique(group_txs, return_index=True)
    by_tx = dict(zip(map(int, unique_txs), np.split(members, starts[1:])))
    return [(int(t), by_tx[int(t)]) for t in ordered_txs if int(t) in by_tx]


def compress_single_transaction_addresses(graph: AddressGraph) -> AddressGraph:
    """Merge degree-1 address nodes per transaction and side (Fig. 3).

    After this pass a transaction node links to at most one
    single-transaction hyper node on its input side and one on its output
    side (plus any remaining multi-transaction or centre address nodes).
    Address nodes appearing on *both* sides of their single transaction
    (self-change) are left unmerged — they carry a distinct signature.
    """
    if not graph.edges:
        return graph
    n = graph.num_nodes
    src, dst, value = _edge_columns(graph)
    is_address, is_transaction = _kind_flags(graph)
    degrees = _distinct_degrees(src, dst, n)
    center_id = graph.center_node_id()

    in_mask = is_address[src] & is_transaction[dst]  # address → tx
    out_mask = is_transaction[src] & is_address[dst]  # tx → address

    # Addresses appearing on both sides of a transaction (self-change)
    # are excluded; membership is tested on (tx, addr) pair keys.
    in_keys = np.unique(dst[in_mask] * n + src[in_mask])
    out_keys = np.unique(src[out_mask] * n + dst[out_mask])
    both_keys = np.intersect1d(in_keys, out_keys, assume_unique=True)

    candidate = is_address & (degrees == 1)
    if center_id is not None:
        candidate[center_id] = False

    merge_groups: List[Tuple[str, str, List[int]]] = []
    for (tx_col, addr_col, tag) in (
        (dst[in_mask], src[in_mask], "in"),
        (src[out_mask], dst[out_mask], "out"),
    ):
        for tx_id, members in _side_groups(tx_col, addr_col, candidate, n):
            pair_keys = tx_id * n + members
            members = members[
                ~np.isin(pair_keys, both_keys, assume_unique=True)
            ]
            if members.size >= 2:
                tx_ref = graph.nodes[tx_id].ref
                merge_groups.append(
                    (NodeKind.SINGLE_HYPER, f"s:{tx_ref}:{tag}", list(members))
                )

    if not merge_groups:
        return graph
    return _rebuild_with_merges(graph, merge_groups, src, dst, value)


# --------------------------------------------------------------------- #
# Stage 3 — multi-transaction address compression
# --------------------------------------------------------------------- #


def similarity_matrices(
    graph: AddressGraph,
) -> Tuple[List[int], List[int], np.ndarray, np.ndarray]:
    """The incidence and similarity matrices of Eq. (3)–(4).

    Returns ``(multi_ids, tx_ids, S, M)`` where ``multi_ids`` are the
    candidate multi-transaction address node ids (degree ≥ 2 address
    nodes, centre excluded), ``S = A·Aᵀ`` counts shared transactions and
    ``M = S·D⁻¹`` is the column-normalised similarity (``m_ij = s_ij /
    s_jj`` — the fraction of j's transactions shared with i, exactly the
    paper's worked example ``m31 = s31 / s11 = 0.7``).
    """
    n = graph.num_nodes
    src, dst, _ = _edge_columns(graph)
    is_address, is_transaction = _kind_flags(graph)
    degrees = _distinct_degrees(src, dst, n)
    center_id = graph.center_node_id()

    multi_mask = is_address & (degrees >= 2)
    if center_id is not None:
        multi_mask[center_id] = False
    multi_ids = np.flatnonzero(multi_mask)
    tx_ids = np.flatnonzero(is_transaction)

    row_of = np.full(n, -1, dtype=np.int64)
    row_of[multi_ids] = np.arange(multi_ids.size)
    col_of = np.full(n, -1, dtype=np.int64)
    col_of[tx_ids] = np.arange(tx_ids.size)

    incidence = np.zeros((multi_ids.size, tx_ids.size), dtype=np.float64)
    if src.size:
        lo, hi = _unique_pairs(src, dst, n)
        for a, b in ((lo, hi), (hi, lo)):
            hit = (row_of[a] >= 0) & (col_of[b] >= 0)
            incidence[row_of[a[hit]], col_of[b[hit]]] = 1.0

    shared = incidence @ incidence.T
    diagonal = np.diag(shared).copy()
    safe = np.where(diagonal > 0, diagonal, 1.0)
    similarity = shared / safe[np.newaxis, :]
    return list(map(int, multi_ids)), list(map(int, tx_ids)), shared, similarity


def compress_multi_transaction_addresses(
    graph: AddressGraph,
    psi: float = 0.6,
    sigma: int = 2,
) -> AddressGraph:
    """Merge co-occurring multi-transaction address nodes (Eq. 3–7).

    ``Q = ReLU(M − Ψ)`` thresholds the similarity; a node whose row has
    more than ``sigma`` non-zeros is merged with its similar set.  Groups
    are formed greedily from the densest rows; each node joins at most
    one hyper node.
    """
    if not 0.0 < psi <= 1.0:
        raise ValidationError(f"psi must be in (0, 1], got {psi}")
    if sigma < 1:
        raise ValidationError(f"sigma must be >= 1, got {sigma}")

    multi_ids, _, _, similarity = similarity_matrices(graph)
    if len(multi_ids) < 2:
        return graph

    thresholded = np.maximum(0.0, similarity - psi)  # Eq. (5)
    positive = thresholded > 0.0
    nonzero_counts = positive.sum(axis=1)

    merged = np.zeros(len(multi_ids), dtype=bool)
    merge_groups: List[Tuple[str, str, List[int]]] = []
    for row in np.argsort(-nonzero_counts):
        row = int(row)
        if nonzero_counts[row] <= sigma or merged[row]:
            continue
        similar_rows = np.flatnonzero(positive[row] & ~merged)
        if similar_rows.size < 2:
            continue
        merged[similar_rows] = True
        members = [multi_ids[int(col)] for col in similar_rows]
        anchor_ref = graph.nodes[multi_ids[row]].ref
        merge_groups.append((NodeKind.MULTI_HYPER, f"m:{anchor_ref}", members))

    if not merge_groups:
        return graph
    src, dst, value = _edge_columns(graph)
    return _rebuild_with_merges(graph, merge_groups, src, dst, value)
