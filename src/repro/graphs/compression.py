"""Stages 2–3 — graph node compression (paper §III-A-2, Eq. 1–7).

Two passes bound the size of the original address graphs while preserving
the transfer statistics of merged nodes through SFE:

- **Single-transaction address compression** (Fig. 3): all non-centre
  address nodes touching exactly one transaction are merged, per
  transaction and per side (input/output), into a *single-transaction
  hyper node* whose value bag is the union of its members' (Eq. 2).
- **Multi-transaction address compression** (Fig. 4): address nodes
  touching two or more transactions are compared via the co-occurrence
  similarity ``M = A·Aᵀ·D⁻¹`` (Eq. 3–4); groups whose thresholded
  similarity row ``Q = ReLU(M − Ψ)`` (Eq. 5) has more than σ non-zeros
  are merged into *multi-transaction hyper nodes* (Eq. 6–7).

The centre address node is never merged — it is the classification
subject.  Transaction nodes are never merged.

**Array-native formulation.**  Both passes operate on the columnar
:class:`~repro.graphs.arrays.ArrayGraph` substrate end to end: distinct
degrees come from unique undirected node pairs, per-(tx, side) candidate
grouping from sorted integer pair keys, and the merge itself is an array
union-find — every old node id resolves through a single ``resolve``
lookup array (members point at their hyper node, survivors at their
re-densified id), so node columns and value bags are re-gathered with
fancy indexing, edge remapping is one indexing pass, and parallel-edge
aggregation one ``bincount`` over first-seen-ordered keys.  No per-node
or per-edge Python objects are created anywhere in the rebuild.

:class:`~repro.graphs.model.AddressGraph` inputs are accepted for
compatibility (reference oracles, examples): they are converted to
arrays, compressed, and converted back — element-for-element identical
to the historic object-set machinery (asserted against
:mod:`repro.graphs.reference` in the test suite).
"""

from __future__ import annotations

from typing import List, Tuple, Union

import numpy as np

from repro.errors import ValidationError
from repro.graphs.arrays import KIND_CODES, ArrayGraph, _segment_ranges
from repro.graphs.model import AddressGraph, NodeKind

__all__ = [
    "compress_single_transaction_addresses",
    "compress_multi_transaction_addresses",
    "similarity_matrices",
]

_ADDRESS_CODE = KIND_CODES[NodeKind.ADDRESS]
_TRANSACTION_CODE = KIND_CODES[NodeKind.TRANSACTION]
_SINGLE_HYPER_CODE = KIND_CODES[NodeKind.SINGLE_HYPER]
_MULTI_HYPER_CODE = KIND_CODES[NodeKind.MULTI_HYPER]

AnyGraph = Union[AddressGraph, ArrayGraph]

#: ``(hyper kind code, hyper ref, member node ids ascending)``.
_MergeGroup = Tuple[int, str, np.ndarray]


def _as_arrays(graph: AnyGraph) -> Tuple[ArrayGraph, bool]:
    """``(columnar view, was_object_model)`` for either graph flavour."""
    if isinstance(graph, ArrayGraph):
        return graph, False
    return ArrayGraph.from_address_graph(graph), True


def _unique_pairs(
    src: np.ndarray, dst: np.ndarray, num_nodes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct undirected ``(lo, hi)`` node pairs touched by any edge."""
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    keys = np.unique(lo * num_nodes + hi)
    return keys // num_nodes, keys % num_nodes


def _distinct_degrees(
    src: np.ndarray, dst: np.ndarray, num_nodes: int
) -> np.ndarray:
    """Distinct-neighbour count per node (self loops counted once)."""
    lo, hi = _unique_pairs(src, dst, num_nodes)
    endpoints = np.concatenate([lo, hi[hi != lo]])
    return np.bincount(endpoints, minlength=num_nodes)


def _rebuild_with_merges(
    graph: ArrayGraph, merge_groups: List[_MergeGroup]
) -> ArrayGraph:
    """Rebuild ``graph`` with each ``(kind, ref, member_ids)`` group merged.

    Member edges to the rest of the graph are aggregated per
    ``(other node, direction)`` with summed values; member value bags are
    concatenated (the input to SFE at feature-assembly time).  The merge
    is resolved through flat lookup arrays (a one-level union-find whose
    path compression is precomputed): survivors map to densely
    re-assigned ids, members to their group's hyper-node id.  Node
    columns, bags, and edges are all re-gathered with array kernels.
    """
    n = graph.num_nodes
    group_of = np.full(n, -1, dtype=np.int64)
    for group_index, (_, _, members) in enumerate(merge_groups):
        group_of[members] = group_index

    keep = group_of < 0
    keep_ids = np.flatnonzero(keep)
    num_kept = keep_ids.size
    old_to_new = np.cumsum(keep) - 1  # densified ids for survivors
    resolve = np.where(keep, old_to_new, num_kept + group_of)
    num_new = num_kept + len(merge_groups)

    # --- node columns -------------------------------------------------- #
    member_ids = np.concatenate([members for _, _, members in merge_groups])
    group_sizes = np.fromiter(
        (members.size for _, _, members in merge_groups),
        dtype=np.int64,
        count=len(merge_groups),
    )
    group_starts = np.zeros(len(merge_groups), dtype=np.int64)
    np.cumsum(group_sizes[:-1], out=group_starts[1:])

    kind_codes = np.concatenate(
        [
            graph.kind_codes[keep_ids],
            np.fromiter(
                (code for code, _, _ in merge_groups),
                dtype=np.int64,
                count=len(merge_groups),
            ),
        ]
    )
    refs = np.concatenate(
        [
            graph.refs[keep_ids],
            np.array([ref for _, ref, _ in merge_groups], dtype=object),
        ]
    )
    merged_counts = np.concatenate(
        [
            graph.merged_counts[keep_ids],
            np.add.reduceat(graph.merged_counts[member_ids], group_starts),
        ]
    )

    # --- value bags (survivors keep theirs; groups concatenate members') #
    bag_len = np.diff(graph.bag_indptr)
    sources = np.concatenate([keep_ids, member_ids])
    lens = bag_len[sources]
    bag_indptr = np.zeros(num_new + 1, dtype=np.int64)
    np.cumsum(
        np.concatenate(
            [lens[:num_kept], np.add.reduceat(lens[num_kept:], group_starts)]
        )
        if num_kept
        else np.add.reduceat(lens, group_starts),
        out=bag_indptr[1:],
    )
    total = int(lens.sum())
    if total:
        positions = np.repeat(
            graph.bag_indptr[sources], lens
        ) + _segment_ranges(lens, total)
        bag_values = graph.bag_values[positions]
    else:
        bag_values = np.empty(0, dtype=np.float64)

    # --- edges (remap through ``resolve``, aggregate parallel edges) --- #
    new_src = resolve[graph.edge_src]
    new_dst = resolve[graph.edge_dst]
    keys = new_src * num_new + new_dst
    # np.unique with return_index sorts stably, so ``first`` marks each
    # key's first occurrence; ordering by it reproduces the first-seen
    # edge order of the pre-vectorization dict accumulation, and
    # bincount accumulates parallel-edge values in the same edge order.
    unique_keys, first, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    sums = np.bincount(inverse, weights=graph.edge_values)
    order = np.argsort(first, kind="stable")
    ordered_keys = unique_keys[order]

    centrality = None
    if graph.centrality is not None:
        centrality = np.vstack(
            [
                graph.centrality[keep_ids],
                np.zeros(
                    (len(merge_groups), graph.centrality.shape[1]),
                    dtype=np.float64,
                ),
            ]
        )

    center_id = graph.center_node_id()
    return ArrayGraph(
        center_address=graph.center_address,
        slice_index=graph.slice_index,
        time_range=graph.time_range,
        kind_codes=kind_codes,
        refs=refs,
        merged_counts=merged_counts,
        bag_values=bag_values,
        bag_indptr=bag_indptr,
        edge_src=ordered_keys // num_new,
        edge_dst=ordered_keys % num_new,
        edge_values=sums[order],
        edge_times=graph.edge_times[first[order]],
        centrality=centrality,
        center_id=(
            int(resolve[center_id]) if center_id is not None else None
        ),
    )


# --------------------------------------------------------------------- #
# Stage 2 — single-transaction address compression
# --------------------------------------------------------------------- #


def _side_groups(
    tx: np.ndarray,
    addr: np.ndarray,
    candidate: np.ndarray,
    both_keys: np.ndarray,
    num_nodes: int,
) -> List[Tuple[int, np.ndarray]]:
    """``(tx_id, mergeable member addr ids)`` per transaction for one side.

    ``tx``/``addr`` are the per-edge columns of that side in edge order.
    Self-change pairs (``both_keys``) are removed and only groups of two
    or more members survive; groups come back in first-edge order of
    their transaction with members sorted ascending — the ordering of
    the original dict/set accumulation.
    """
    if tx.size == 0:
        return []
    eligible = candidate[addr]
    keys = np.unique(tx[eligible] * num_nodes + addr[eligible])
    if both_keys.size:
        keys = keys[~np.isin(keys, both_keys, assume_unique=True)]
    if keys.size < 2:
        return []
    group_txs = keys // num_nodes
    members = keys % num_nodes
    # ``keys`` is sorted, so members lie contiguously per transaction.
    unique_txs, starts = np.unique(group_txs, return_index=True)
    sizes = np.diff(np.append(starts, keys.size))
    big = sizes >= 2
    if not big.any():
        return []
    # Emit groups ordered by their transaction's first edge on this side.
    tx_values, first_edge = np.unique(tx, return_index=True)
    first_of_group = first_edge[np.searchsorted(tx_values, unique_txs[big])]
    starts, sizes, group_txs = starts[big], sizes[big], unique_txs[big]
    return [
        (int(group_txs[i]), members[starts[i] : starts[i] + sizes[i]])
        for i in np.argsort(first_of_group, kind="stable")
    ]


def _compress_single(graph: ArrayGraph) -> ArrayGraph:
    """Array-native single-transaction pass; returns input when no-op."""
    if graph.num_edges == 0:
        return graph
    n = graph.num_nodes
    src, dst = graph.edge_src, graph.edge_dst
    is_address = graph.kind_codes == _ADDRESS_CODE
    is_transaction = graph.kind_codes == _TRANSACTION_CODE
    degrees = _distinct_degrees(src, dst, n)
    center_id = graph.center_node_id()

    in_mask = is_address[src] & is_transaction[dst]  # address → tx
    out_mask = is_transaction[src] & is_address[dst]  # tx → address

    # Addresses appearing on both sides of a transaction (self-change)
    # are excluded; membership is tested on (tx, addr) pair keys.
    in_keys = np.unique(dst[in_mask] * n + src[in_mask])
    out_keys = np.unique(src[out_mask] * n + dst[out_mask])
    both_keys = np.intersect1d(in_keys, out_keys, assume_unique=True)

    candidate = is_address & (degrees == 1)
    if center_id is not None:
        candidate[center_id] = False

    merge_groups: List[_MergeGroup] = []
    for (tx_col, addr_col, tag) in (
        (dst[in_mask], src[in_mask], "in"),
        (src[out_mask], dst[out_mask], "out"),
    ):
        for tx_id, members in _side_groups(
            tx_col, addr_col, candidate, both_keys, n
        ):
            tx_ref = graph.refs[tx_id]
            merge_groups.append(
                (_SINGLE_HYPER_CODE, f"s:{tx_ref}:{tag}", members)
            )

    if not merge_groups:
        return graph
    return _rebuild_with_merges(graph, merge_groups)


def compress_single_transaction_addresses(graph: AnyGraph) -> AnyGraph:
    """Merge degree-1 address nodes per transaction and side (Fig. 3).

    After this pass a transaction node links to at most one
    single-transaction hyper node on its input side and one on its output
    side (plus any remaining multi-transaction or centre address nodes).
    Address nodes appearing on *both* sides of their single transaction
    (self-change) are left unmerged — they carry a distinct signature.
    Accepts (and returns) either graph flavour; no-op passes return the
    input graph itself.
    """
    arrays, was_object = _as_arrays(graph)
    out = _compress_single(arrays)
    if out is arrays:
        return graph
    return out.to_address_graph() if was_object else out


# --------------------------------------------------------------------- #
# Stage 3 — multi-transaction address compression
# --------------------------------------------------------------------- #


def _similarity_columns(
    graph: ArrayGraph,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Array-native core of :func:`similarity_matrices`."""
    n = graph.num_nodes
    src, dst = graph.edge_src, graph.edge_dst
    is_address = graph.kind_codes == _ADDRESS_CODE
    degrees = _distinct_degrees(src, dst, n)
    center_id = graph.center_node_id()

    multi_mask = is_address & (degrees >= 2)
    if center_id is not None:
        multi_mask[center_id] = False
    multi_ids = np.flatnonzero(multi_mask)
    tx_ids = np.flatnonzero(graph.kind_codes == _TRANSACTION_CODE)

    row_of = np.full(n, -1, dtype=np.int64)
    row_of[multi_ids] = np.arange(multi_ids.size)
    col_of = np.full(n, -1, dtype=np.int64)
    col_of[tx_ids] = np.arange(tx_ids.size)

    incidence = np.zeros((multi_ids.size, tx_ids.size), dtype=np.float64)
    if src.size:
        lo, hi = _unique_pairs(src, dst, n)
        for a, b in ((lo, hi), (hi, lo)):
            hit = (row_of[a] >= 0) & (col_of[b] >= 0)
            incidence[row_of[a[hit]], col_of[b[hit]]] = 1.0

    shared = incidence @ incidence.T
    diagonal = np.diag(shared).copy()
    safe = np.where(diagonal > 0, diagonal, 1.0)
    similarity = shared / safe[np.newaxis, :]
    return multi_ids, tx_ids, shared, similarity


def similarity_matrices(
    graph: AnyGraph,
) -> Tuple[List[int], List[int], np.ndarray, np.ndarray]:
    """The incidence and similarity matrices of Eq. (3)–(4).

    Returns ``(multi_ids, tx_ids, S, M)`` where ``multi_ids`` are the
    candidate multi-transaction address node ids (degree ≥ 2 address
    nodes, centre excluded), ``S = A·Aᵀ`` counts shared transactions and
    ``M = S·D⁻¹`` is the column-normalised similarity (``m_ij = s_ij /
    s_jj`` — the fraction of j's transactions shared with i, exactly the
    paper's worked example ``m31 = s31 / s11 = 0.7``).
    """
    arrays, _ = _as_arrays(graph)
    multi_ids, tx_ids, shared, similarity = _similarity_columns(arrays)
    return list(map(int, multi_ids)), list(map(int, tx_ids)), shared, similarity


def _compress_multi(
    graph: ArrayGraph, psi: float, sigma: int
) -> ArrayGraph:
    """Array-native multi-transaction pass; returns input when no-op."""
    multi_ids, _, _, similarity = _similarity_columns(graph)
    if multi_ids.size < 2:
        return graph

    thresholded = np.maximum(0.0, similarity - psi)  # Eq. (5)
    positive = thresholded > 0.0
    nonzero_counts = positive.sum(axis=1)

    merged = np.zeros(multi_ids.size, dtype=bool)
    merge_groups: List[_MergeGroup] = []
    for row in np.argsort(-nonzero_counts):
        row = int(row)
        if nonzero_counts[row] <= sigma or merged[row]:
            continue
        similar_rows = np.flatnonzero(positive[row] & ~merged)
        if similar_rows.size < 2:
            continue
        merged[similar_rows] = True
        members = multi_ids[similar_rows]
        anchor_ref = graph.refs[multi_ids[row]]
        merge_groups.append((_MULTI_HYPER_CODE, f"m:{anchor_ref}", members))

    if not merge_groups:
        return graph
    return _rebuild_with_merges(graph, merge_groups)


def compress_multi_transaction_addresses(
    graph: AnyGraph,
    psi: float = 0.6,
    sigma: int = 2,
) -> AnyGraph:
    """Merge co-occurring multi-transaction address nodes (Eq. 3–7).

    ``Q = ReLU(M − Ψ)`` thresholds the similarity; a node whose row has
    more than ``sigma`` non-zeros is merged with its similar set.  Groups
    are formed greedily from the densest rows; each node joins at most
    one hyper node.  Accepts (and returns) either graph flavour; no-op
    passes return the input graph itself.
    """
    if not 0.0 < psi <= 1.0:
        raise ValidationError(f"psi must be in (0, 1], got {psi}")
    if sigma < 1:
        raise ValidationError(f"sigma must be >= 1, got {sigma}")

    arrays, was_object = _as_arrays(graph)
    out = _compress_multi(arrays, psi, sigma)
    if out is arrays:
        return graph
    return out.to_address_graph() if was_object else out
