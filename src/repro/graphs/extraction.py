"""Stage 1 — original graph extraction (paper §III-A-1).

All transactions of an address are sorted chronologically and split into
slices of ``slice_size`` (the paper fixes 100); each slice becomes one
heterogeneous graph.  The final partial slice is retained, matching the
paper ("the final graph with less than 100 transactions will be
retained").

Two builders produce the same graph: :func:`build_original_graph`
constructs the object model (:class:`~repro.graphs.model.AddressGraph`)
and :func:`build_original_arrays` constructs the columnar
:class:`~repro.graphs.arrays.ArrayGraph` directly — node ids assigned in
the identical first-seen order, edges in the identical transaction
order, value bags assembled in one vectorized pass instead of per-edge
list appends.  The pipeline uses the array builder; the object builder
remains the readable reference (and the substrate of the parity oracle
tests).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.chain.explorer import ChainIndex
from repro.chain.transaction import Transaction
from repro.errors import GraphConstructionError, ValidationError
from repro.graphs.arrays import KIND_CODES, ArrayGraph, _segment_ranges
from repro.graphs.model import AddressGraph, NodeKind

__all__ = [
    "slice_transactions",
    "build_original_graph",
    "build_original_arrays",
    "build_arrays_from_index",
    "build_arrays_from_columns",
    "extract_graphs",
    "extract_array_graphs",
]

_ADDRESS_CODE = KIND_CODES[NodeKind.ADDRESS]
_TRANSACTION_CODE = KIND_CODES[NodeKind.TRANSACTION]


def _bags_from_edges(
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    edge_values: np.ndarray,
    num_nodes: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-node value bags ``(bag_values, bag_indptr)`` of an original graph.

    Each edge contributes its value to both endpoint bags in edge order —
    interleaving (src0, dst0, src1, dst1, ...) and stable-sorting by
    endpoint reproduces the per-edge append order of the object builder
    in one vectorized pass.
    """
    num_edges = edge_src.shape[0]
    endpoints = np.empty(2 * num_edges, dtype=np.int64)
    endpoints[0::2] = edge_src
    endpoints[1::2] = edge_dst
    doubled = np.repeat(edge_values, 2)
    bag_values = doubled[np.argsort(endpoints, kind="stable")]
    bag_indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(endpoints, minlength=num_nodes), out=bag_indptr[1:])
    return bag_values, bag_indptr


def slice_transactions(
    transactions: Sequence[Transaction], slice_size: int
) -> List[List[Transaction]]:
    """Chronological slices of at most ``slice_size`` transactions."""
    if slice_size <= 0:
        raise ValidationError(f"slice_size must be > 0, got {slice_size}")
    ordered = sorted(transactions, key=lambda tx: (tx.timestamp, tx.txid))
    return [
        list(ordered[start : start + slice_size])
        for start in range(0, len(ordered), slice_size)
    ]


def build_original_graph(
    center_address: str,
    transactions: Sequence[Transaction],
    slice_index: int = 0,
) -> AddressGraph:
    """The uncompressed heterogeneous graph of one transaction slice.

    Every transaction becomes a transaction node; every involved address
    becomes an address node.  Input-side edges run address → tx with the
    input value; output-side edges run tx → address with the output value.
    Multiple inputs/outputs between the same pair accumulate into the
    node value bags (each edge is kept individually).
    """
    if not transactions:
        raise GraphConstructionError(
            f"cannot build a graph for {center_address[:12]} from zero transactions"
        )
    times = [tx.timestamp for tx in transactions]
    graph = AddressGraph(
        center_address=center_address,
        slice_index=slice_index,
        time_range=(min(times), max(times)),
    )
    for tx in transactions:
        tx_node = graph.add_node(NodeKind.TRANSACTION, tx.txid)
        for inp in tx.inputs:
            addr_node = graph.add_node(NodeKind.ADDRESS, inp.address)
            graph.add_edge(addr_node, tx_node, inp.value)
        for out in tx.outputs:
            addr_node = graph.add_node(NodeKind.ADDRESS, out.address)
            graph.add_edge(tx_node, addr_node, out.value)
    return graph


def build_original_arrays(
    center_address: str,
    transactions: Sequence[Transaction],
    slice_index: int = 0,
) -> ArrayGraph:
    """The uncompressed slice graph of :func:`build_original_graph`, columnar.

    Produces the exact structure of the object builder — same first-seen
    node ids, same edge order — but lands directly in
    :class:`~repro.graphs.arrays.ArrayGraph` columns: one Python pass
    collects the per-edge (address, value, side) records and everything
    downstream (value bags, time range) is assembled with array kernels.
    """
    if not transactions:
        raise GraphConstructionError(
            f"cannot build a graph for {center_address[:12]} from zero transactions"
        )
    tx_of: dict = {}
    addr_of: dict = {}
    kind_codes: List[int] = []
    refs: List[str] = []
    src: List[int] = []
    dst: List[int] = []
    values: List[int] = []
    stamps: List[float] = []
    edges_per_tx: List[int] = []
    kinds_append = kind_codes.append
    refs_append = refs.append
    src_append = src.append
    dst_append = dst.append
    values_append = values.append
    get_tx = tx_of.get
    get_addr = addr_of.get

    for tx in transactions:
        txid = tx.txid
        tx_node = get_tx(txid)
        if tx_node is None:
            tx_node = tx_of[txid] = len(refs)
            kinds_append(_TRANSACTION_CODE)
            refs_append(txid)
        inputs = tx.inputs
        outputs = tx.outputs
        for inp in inputs:
            address = inp.address
            addr_node = get_addr(address)
            if addr_node is None:
                addr_node = addr_of[address] = len(refs)
                kinds_append(_ADDRESS_CODE)
                refs_append(address)
            src_append(addr_node)
            dst_append(tx_node)
            values_append(inp.value)
        for out in outputs:
            address = out.address
            addr_node = get_addr(address)
            if addr_node is None:
                addr_node = addr_of[address] = len(refs)
                kinds_append(_ADDRESS_CODE)
                refs_append(address)
            src_append(tx_node)
            dst_append(addr_node)
            values_append(out.value)
        stamps.append(tx.timestamp)
        edges_per_tx.append(len(inputs) + len(outputs))

    n = len(kind_codes)
    edge_src = np.array(src, dtype=np.int64)
    edge_dst = np.array(dst, dtype=np.int64)
    edge_values = np.array(values, dtype=np.float64)
    edge_times = np.repeat(
        np.array(stamps, dtype=np.float64),
        np.array(edges_per_tx, dtype=np.int64),
    )

    bag_values, bag_indptr = _bags_from_edges(
        edge_src, edge_dst, edge_values, n
    )

    return ArrayGraph(
        center_address=center_address,
        slice_index=slice_index,
        time_range=(min(stamps), max(stamps)),
        kind_codes=np.array(kind_codes, dtype=np.int64),
        refs=np.array(refs, dtype=object),
        merged_counts=np.ones(n, dtype=np.int64),
        bag_values=bag_values,
        bag_indptr=bag_indptr,
        edge_src=edge_src,
        edge_dst=edge_dst,
        edge_values=edge_values,
        edge_times=edge_times,
        center_id=addr_of.get(center_address),
    )


def build_arrays_from_index(
    index: ChainIndex,
    center_address: str,
    transactions: Sequence[Transaction],
    slice_index: int = 0,
) -> ArrayGraph:
    """Columnar Stage-1 build straight from :class:`ChainIndex` columns.

    Per-transaction participant/value columns come from
    :meth:`ChainIndex.transaction_arrays` (interned integer node keys,
    memoised per txid and shared across every address graph that
    includes the transaction), first-seen node ids fall out of one
    ``np.unique`` over the interleaved encounter sequence, and the edge
    columns are scattered into transaction order with array kernels —
    no per-edge Python at all.  Output is element-identical to
    :func:`build_original_arrays` / :func:`build_original_graph`.

    Measured on paper-scale slices (≤100 transactions) the dict-based
    :func:`build_original_arrays` still wins — numpy fixed overhead
    dominates at that size — so the pipeline uses it; this builder pulls
    ahead only for very large slices (hundreds of transactions) where
    the memoised columns amortise, and is kept as the chain-scale
    columnar path (BABD-scale corpora, sharded indices).
    """
    if not transactions:
        raise GraphConstructionError(
            f"cannot build a graph for {center_address[:12]} from zero transactions"
        )
    columns = [index.transaction_arrays(tx) for tx in transactions]
    return build_arrays_from_columns(
        index, center_address, columns, slice_index=slice_index
    )


def build_arrays_from_columns(
    index: ChainIndex,
    center_address: str,
    columns: "Sequence",
    slice_index: int = 0,
) -> ArrayGraph:
    """Columnar Stage-1 build from pre-fetched :class:`TxArrays` columns.

    The assembly core of :func:`build_arrays_from_index`, factored so
    column *sources* are pluggable: the in-memory index's memoised
    ``transaction_arrays`` and the chain store's mapped segment views
    (:meth:`~repro.chain.store.StoreBackedChainIndex.transaction_columns_of`)
    both feed it.  ``index`` supplies only name decoding
    (:meth:`~repro.chain.explorer.ChainIndex.node_names`) and the center
    key lookup; the output is element-identical to
    :func:`build_original_arrays` regardless of the key numbering the
    source interned, because node ids are first-encounter ranks and
    references are decoded strings.
    """
    if not columns:
        raise GraphConstructionError(
            f"cannot build a graph for {center_address[:12]} from zero transactions"
        )
    t = len(columns)
    n_in = np.fromiter(
        (c.input_keys.size for c in columns), dtype=np.int64, count=t
    )
    n_out = np.fromiter(
        (c.output_keys.size for c in columns), dtype=np.int64, count=t
    )
    tx_keys = np.fromiter((c.key for c in columns), dtype=np.int64, count=t)
    stamps = np.fromiter(
        (c.timestamp for c in columns), dtype=np.float64, count=t
    )
    in_keys = np.concatenate([c.input_keys for c in columns])
    in_values = np.concatenate([c.input_values for c in columns])
    out_keys = np.concatenate([c.output_keys for c in columns])
    out_values = np.concatenate([c.output_values for c in columns])
    total_in = int(n_in.sum())
    total_out = int(n_out.sum())

    # Encounter sequence: per transaction its node key, then its input
    # addresses, then its output addresses — the object builder's exact
    # add_node order, so first-seen ranks reproduce its node ids.
    counts = 1 + n_in + n_out
    node_offsets = np.cumsum(counts) - counts
    seq = np.empty(int(counts.sum()), dtype=np.int64)
    seq[node_offsets] = tx_keys
    in_pos = np.repeat(node_offsets + 1, n_in) + _segment_ranges(
        n_in, total_in
    )
    seq[in_pos] = in_keys
    out_pos = np.repeat(node_offsets + 1 + n_in, n_out) + _segment_ranges(
        n_out, total_out
    )
    seq[out_pos] = out_keys

    unique_keys, first, inverse = np.unique(
        seq, return_index=True, return_inverse=True
    )
    order = np.argsort(first, kind="stable")
    rank = np.empty(unique_keys.size, dtype=np.int64)
    rank[order] = np.arange(unique_keys.size)
    local = rank[inverse]
    ordered_keys = unique_keys[order]

    n = unique_keys.size
    kind_codes = np.where(
        ordered_keys & 1, _TRANSACTION_CODE, _ADDRESS_CODE
    ).astype(np.int64)
    refs = np.array(index.node_names(ordered_keys.tolist()), dtype=object)

    # Edge columns scattered back into per-transaction (inputs, outputs)
    # order — the object builder's add_edge order.
    num_edges = total_in + total_out
    edge_counts = n_in + n_out
    edge_offsets = np.cumsum(edge_counts) - edge_counts
    tx_local = local[node_offsets]
    in_edge_pos = np.repeat(edge_offsets, n_in) + _segment_ranges(
        n_in, total_in
    )
    out_edge_pos = np.repeat(edge_offsets + n_in, n_out) + _segment_ranges(
        n_out, total_out
    )
    edge_src = np.empty(num_edges, dtype=np.int64)
    edge_dst = np.empty(num_edges, dtype=np.int64)
    edge_values = np.empty(num_edges, dtype=np.float64)
    edge_src[in_edge_pos] = local[in_pos]
    edge_dst[in_edge_pos] = np.repeat(tx_local, n_in)
    edge_values[in_edge_pos] = in_values
    edge_src[out_edge_pos] = np.repeat(tx_local, n_out)
    edge_dst[out_edge_pos] = local[out_pos]
    edge_values[out_edge_pos] = out_values

    bag_values, bag_indptr = _bags_from_edges(
        edge_src, edge_dst, edge_values, n
    )

    center_key = index.address_key(center_address)
    position = int(np.searchsorted(unique_keys, center_key))
    center_id = (
        int(rank[position])
        if position < n and unique_keys[position] == center_key
        else None
    )

    return ArrayGraph(
        center_address=center_address,
        slice_index=slice_index,
        time_range=(float(stamps.min()), float(stamps.max())),
        kind_codes=kind_codes,
        refs=refs,
        merged_counts=np.ones(n, dtype=np.int64),
        bag_values=bag_values,
        bag_indptr=bag_indptr,
        edge_src=edge_src,
        edge_dst=edge_dst,
        edge_values=edge_values,
        edge_times=np.repeat(stamps, edge_counts),
        center_id=center_id,
    )


def extract_graphs(
    index: ChainIndex, address: str, slice_size: int = 100
) -> List[AddressGraph]:
    """Stage 1 for one address: fetch, slice, and build original graphs."""
    transactions = index.transactions_of(address)
    if not transactions:
        raise GraphConstructionError(
            f"address {address[:12]} has no transactions on chain"
        )
    slices = slice_transactions(transactions, slice_size)
    return [
        build_original_graph(address, chunk, slice_index=i)
        for i, chunk in enumerate(slices)
    ]


def extract_array_graphs(
    index: ChainIndex, address: str, slice_size: int = 100
) -> List[ArrayGraph]:
    """Stage 1 for one address on the columnar substrate."""
    transactions = index.transactions_of(address)
    if not transactions:
        raise GraphConstructionError(
            f"address {address[:12]} has no transactions on chain"
        )
    slices = slice_transactions(transactions, slice_size)
    return [
        build_original_arrays(address, chunk, slice_index=i)
        for i, chunk in enumerate(slices)
    ]
