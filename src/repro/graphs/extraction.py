"""Stage 1 — original graph extraction (paper §III-A-1).

All transactions of an address are sorted chronologically and split into
slices of ``slice_size`` (the paper fixes 100); each slice becomes one
heterogeneous graph.  The final partial slice is retained, matching the
paper ("the final graph with less than 100 transactions will be
retained").
"""

from __future__ import annotations

from typing import List, Sequence

from repro.chain.explorer import ChainIndex
from repro.chain.transaction import Transaction
from repro.errors import GraphConstructionError, ValidationError
from repro.graphs.model import AddressGraph, NodeKind

__all__ = ["slice_transactions", "build_original_graph", "extract_graphs"]


def slice_transactions(
    transactions: Sequence[Transaction], slice_size: int
) -> List[List[Transaction]]:
    """Chronological slices of at most ``slice_size`` transactions."""
    if slice_size <= 0:
        raise ValidationError(f"slice_size must be > 0, got {slice_size}")
    ordered = sorted(transactions, key=lambda tx: (tx.timestamp, tx.txid))
    return [
        list(ordered[start : start + slice_size])
        for start in range(0, len(ordered), slice_size)
    ]


def build_original_graph(
    center_address: str,
    transactions: Sequence[Transaction],
    slice_index: int = 0,
) -> AddressGraph:
    """The uncompressed heterogeneous graph of one transaction slice.

    Every transaction becomes a transaction node; every involved address
    becomes an address node.  Input-side edges run address → tx with the
    input value; output-side edges run tx → address with the output value.
    Multiple inputs/outputs between the same pair accumulate into the
    node value bags (each edge is kept individually).
    """
    if not transactions:
        raise GraphConstructionError(
            f"cannot build a graph for {center_address[:12]} from zero transactions"
        )
    times = [tx.timestamp for tx in transactions]
    graph = AddressGraph(
        center_address=center_address,
        slice_index=slice_index,
        time_range=(min(times), max(times)),
    )
    for tx in transactions:
        tx_node = graph.add_node(NodeKind.TRANSACTION, tx.txid)
        for inp in tx.inputs:
            addr_node = graph.add_node(NodeKind.ADDRESS, inp.address)
            graph.add_edge(addr_node, tx_node, inp.value)
        for out in tx.outputs:
            addr_node = graph.add_node(NodeKind.ADDRESS, out.address)
            graph.add_edge(tx_node, addr_node, out.value)
    return graph


def extract_graphs(
    index: ChainIndex, address: str, slice_size: int = 100
) -> List[AddressGraph]:
    """Stage 1 for one address: fetch, slice, and build original graphs."""
    transactions = index.transactions_of(address)
    if not transactions:
        raise GraphConstructionError(
            f"address {address[:12]} has no transactions on chain"
        )
    slices = slice_transactions(transactions, slice_size)
    return [
        build_original_graph(address, chunk, slice_index=i)
        for i, chunk in enumerate(slices)
    ]
