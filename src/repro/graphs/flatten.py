"""Graph flattening for classical (non-graph) models — paper §IV-C-1.

Traditional models cannot consume graph structure, so the paper's Table II
protocol flattens each address graph: "aggregate feature vectors of all
input nodes and all output nodes of a target node ... generate the final
feature input by concatenating the aggregated feature vector of input
nodes, the feature vector of the target node, and the aggregated feature
vector of output nodes."

Here the target is the centre address node; its input side is the set of
neighbouring nodes that pay into it (edges towards the centre) and its
output side the set it pays into.  Aggregation is the element-wise mean;
an address with several slice graphs averages the per-slice vectors.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import GraphConstructionError
from repro.graphs.model import NODE_FEATURE_DIM, AddressGraph

__all__ = ["FLAT_FEATURE_DIM", "flatten_graph", "flatten_graphs", "flatten_dataset"]

FLAT_FEATURE_DIM = 3 * NODE_FEATURE_DIM


def flatten_graph(graph, raw: bool = False) -> np.ndarray:
    """``[mean(input-side), centre, mean(output-side)]`` for one graph.

    ``raw=True`` keeps satoshi-magnitude SFE statistics (the paper's
    Table II protocol); the default applies signed-log compression.
    Accepts either graph flavour (object model or
    :class:`~repro.graphs.arrays.ArrayGraph`) — neighbour sets come from
    the shared ``edge_arrays()`` columns.
    """
    center = graph.center_node_id()
    if center is None:
        raise GraphConstructionError(
            f"graph for {graph.center_address[:12]} lacks its centre node"
        )
    features = graph.feature_matrix(raw=raw)
    src, dst = graph.edge_arrays()
    input_ids = np.unique(src[dst == center])
    output_ids = np.unique(dst[src == center])
    zero = np.zeros(NODE_FEATURE_DIM, dtype=np.float64)
    input_agg = features[input_ids].mean(axis=0) if input_ids.size else zero
    output_agg = features[output_ids].mean(axis=0) if output_ids.size else zero
    return np.concatenate([input_agg, features[center], output_agg])


def flatten_graphs(graphs: Sequence, raw: bool = False) -> np.ndarray:
    """Average of per-slice flattened vectors for one address."""
    if not graphs:
        raise GraphConstructionError("flatten_graphs needs at least one graph")
    return np.mean([flatten_graph(g, raw=raw) for g in graphs], axis=0)


def flatten_dataset(
    graphs_by_address: dict, addresses: Sequence[str]
) -> np.ndarray:
    """Stack flattened vectors for ``addresses`` (rows align with input)."""
    rows: List[np.ndarray] = [
        flatten_graphs(graphs_by_address[address]) for address in addresses
    ]
    if not rows:
        return np.zeros((0, FLAT_FEATURE_DIM), dtype=np.float64)
    return np.stack(rows)
