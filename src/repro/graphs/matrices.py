"""Adjacency-matrix builders for graph neural networks (paper Eq. 12).

``Ã = D̃^{-1/2}(A + I)D̃^{-1/2}`` — the renormalised adjacency of Kipf &
Welling, used by both the GFN feature-propagation step (Eq. 13) and the
GCN baseline.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError

__all__ = ["normalized_adjacency", "normalized_adjacency_from_matrix"]


def normalized_adjacency_from_matrix(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """``D̃^{-1/2}(A + I)D̃^{-1/2}`` for a square sparse adjacency."""
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValidationError(
            f"adjacency must be square, got shape {adjacency.shape}"
        )
    n = adjacency.shape[0]
    with_loops = adjacency.tocsr() + sp.identity(n, format="csr")
    degree = np.asarray(with_loops.sum(axis=1)).ravel()
    inv_sqrt = np.where(degree > 0, 1.0 / np.sqrt(degree), 0.0)
    scale = sp.diags(inv_sqrt)
    return (scale @ with_loops @ scale).tocsr()


def normalized_adjacency(graph) -> sp.csr_matrix:
    """The renormalised adjacency of an address graph (either flavour:
    :class:`AddressGraph` or :class:`~repro.graphs.arrays.ArrayGraph`)."""
    return normalized_adjacency_from_matrix(graph.adjacency_matrix())
