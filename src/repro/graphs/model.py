"""The heterogeneous address-transaction graph (paper §III-A).

A graph ``G = (V, E)`` has two base node kinds — *address* nodes and
*transaction* nodes — plus the two hyper-node kinds produced by
compression.  An edge connects an address-side node to a transaction node
and carries the transferred amount; direction records whether the address
was on the input side (address → tx) or the output side (tx → address).

Node features are carried as raw *value bags* until the final feature
assembly so that compression can merge nodes by concatenating bags and
re-running SFE — exactly Eq. (1)/(2)/(7) of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphConstructionError
from repro.features.sfe import SFE_DIM, sfe_matrix, sfe_vector, signed_log1p

__all__ = [
    "NodeKind",
    "GraphNode",
    "GraphEdge",
    "AddressGraph",
    "NODE_KIND_ORDER",
    "NODE_FEATURE_DIM",
]


class NodeKind:
    """Node-kind constants (plain strings keep graphs easily serialisable)."""

    ADDRESS = "address"
    TRANSACTION = "tx"
    SINGLE_HYPER = "s_hyper"
    MULTI_HYPER = "m_hyper"


NODE_KIND_ORDER: Sequence[str] = (
    NodeKind.ADDRESS,
    NodeKind.TRANSACTION,
    NodeKind.SINGLE_HYPER,
    NodeKind.MULTI_HYPER,
)

# Final per-node feature layout: SFE(15) + centrality(4) + kind one-hot(4)
# + is-center flag(1).
_CENTRALITY_DIMS = 4
NODE_FEATURE_DIM = SFE_DIM + _CENTRALITY_DIMS + len(NODE_KIND_ORDER) + 1


@dataclass
class GraphNode:
    """A node: its kind, what it refers to, and its bag of edge values.

    ``merged_count`` records how many original nodes a hyper node absorbed
    (1 for unmerged nodes).
    """

    node_id: int
    kind: str
    ref: str
    values: List[float] = field(default_factory=list)
    merged_count: int = 1
    centrality: Optional[np.ndarray] = None

    def feature_vector(self, is_center: bool, raw: bool = False) -> np.ndarray:
        """Assemble the final fixed-width feature vector for this node.

        ``raw=True`` keeps the SFE statistics at satoshi magnitude (no
        signed-log compression) — the paper's Table II protocol for
        classical models, where raw scales sink scale-sensitive learners.
        """
        stats = sfe_vector(self.values)
        if not raw:
            stats = signed_log1p(stats)
        centrality = (
            self.centrality
            if self.centrality is not None
            else np.zeros(_CENTRALITY_DIMS, dtype=np.float64)
        )
        kind_onehot = np.zeros(len(NODE_KIND_ORDER), dtype=np.float64)
        kind_onehot[NODE_KIND_ORDER.index(self.kind)] = 1.0
        return np.concatenate(
            [stats, centrality, kind_onehot, [1.0 if is_center else 0.0]]
        )


@dataclass(frozen=True)
class GraphEdge:
    """A directed edge carrying the transferred amount in satoshis.

    ``src``/``dst`` are node ids; input-side edges run address → tx,
    output-side edges run tx → address.
    """

    src: int
    dst: int
    value: float


class AddressGraph:
    """One transaction-slice graph of a bitcoin address.

    Parameters
    ----------
    center_address:
        The address whose behaviour this graph describes.
    slice_index:
        Which chronological 100-transaction slice this graph covers.
    time_range:
        ``(first_timestamp, last_timestamp)`` of the slice.
    """

    def __init__(
        self,
        center_address: str,
        slice_index: int = 0,
        time_range: Tuple[float, float] = (0.0, 0.0),
    ):
        self.center_address = center_address
        self.slice_index = slice_index
        self.time_range = time_range
        self.nodes: List[GraphNode] = []
        self.edges: List[GraphEdge] = []
        self._node_by_ref: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_node(self, kind: str, ref: str) -> int:
        """Add (or fetch) the node of ``kind`` referring to ``ref``."""
        key = (kind, ref)
        existing = self._node_by_ref.get(key)
        if existing is not None:
            return existing
        node_id = len(self.nodes)
        self.nodes.append(GraphNode(node_id=node_id, kind=kind, ref=ref))
        self._node_by_ref[key] = node_id
        return node_id

    def find_node(self, kind: str, ref: str) -> Optional[int]:
        """The node id of ``(kind, ref)`` or None."""
        return self._node_by_ref.get((kind, ref))

    def add_edge(self, src: int, dst: int, value: float) -> None:
        """Add a directed edge and append the value to both value bags."""
        if not (0 <= src < len(self.nodes) and 0 <= dst < len(self.nodes)):
            raise GraphConstructionError(
                f"edge ({src}, {dst}) references unknown nodes "
                f"(graph has {len(self.nodes)})"
            )
        self.edges.append(GraphEdge(src=src, dst=dst, value=float(value)))
        self.nodes[src].values.append(float(value))
        self.nodes[dst].values.append(float(value))

    def rebuild(
        self, nodes: List[GraphNode], edges: List[GraphEdge]
    ) -> "AddressGraph":
        """A new graph with the same identity but replaced structure.

        Used by compression passes; node ids are re-assigned densely in
        list order and edges must refer to the new ids.
        """
        out = AddressGraph(
            center_address=self.center_address,
            slice_index=self.slice_index,
            time_range=self.time_range,
        )
        for new_id, node in enumerate(nodes):
            node.node_id = new_id
            out.nodes.append(node)
            out._node_by_ref[(node.kind, node.ref)] = new_id
        out.edges = list(edges)
        return out

    # ------------------------------------------------------------------ #
    # Conversion (columnar substrate)
    # ------------------------------------------------------------------ #

    @classmethod
    def from_arrays(cls, arrays) -> "AddressGraph":
        """Object-model copy of an :class:`~repro.graphs.arrays.ArrayGraph`.

        The thin compatibility bridge for consumers that want per-node
        objects over pipeline output (reference kernels, notebooks);
        see :meth:`ArrayGraph.to_address_graph`.
        """
        return arrays.to_address_graph()

    def to_arrays(self):
        """Columnar :class:`~repro.graphs.arrays.ArrayGraph` copy of this
        graph; see :meth:`ArrayGraph.from_address_graph`."""
        from repro.graphs.arrays import ArrayGraph

        return ArrayGraph.from_address_graph(self)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return len(self.edges)

    def nodes_of_kind(self, kind: str) -> List[GraphNode]:
        """All nodes of the given kind."""
        return [node for node in self.nodes if node.kind == kind]

    def center_node_id(self) -> Optional[int]:
        """Node id of the centre address (if present)."""
        return self._node_by_ref.get((NodeKind.ADDRESS, self.center_address))

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(src, dst)`` ndarray columns of the directed edge list."""
        count = self.num_edges
        src = np.fromiter(
            (e.src for e in self.edges), dtype=np.int64, count=count
        )
        dst = np.fromiter(
            (e.dst for e in self.edges), dtype=np.int64, count=count
        )
        return src, dst

    def adjacency_lists(self) -> List[List[int]]:
        """Undirected adjacency lists (deduplicated neighbours)."""
        neighbors: List[set] = [set() for _ in range(self.num_nodes)]
        for edge in self.edges:
            neighbors[edge.src].add(edge.dst)
            neighbors[edge.dst].add(edge.src)
        return [sorted(n) for n in neighbors]

    def degrees(self) -> np.ndarray:
        """Undirected degree (distinct neighbours) per node."""
        return np.diff(self.adjacency_matrix().indptr).astype(np.float64)

    def adjacency_matrix(self) -> sp.csr_matrix:
        """Symmetric unweighted adjacency as a CSR sparse matrix."""
        n = self.num_nodes
        if not self.edges:
            return sp.csr_matrix((n, n), dtype=np.float64)
        src, dst = self.edge_arrays()
        rows = np.concatenate([src, dst])
        cols = np.concatenate([dst, src])
        data = np.ones(rows.size, dtype=np.float64)
        matrix = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
        matrix.data[:] = 1.0  # collapse parallel edges
        return matrix

    def feature_matrix(self, raw: bool = False) -> np.ndarray:
        """Final node-feature matrix, shape ``(num_nodes, NODE_FEATURE_DIM)``.

        One segmented SFE pass over all node value bags plus columnar
        centrality/kind/centre assembly; see :meth:`GraphNode.feature_vector`
        for the ``raw`` switch and the per-node layout.
        """
        n = self.num_nodes
        if n == 0:
            return np.zeros((0, NODE_FEATURE_DIM), dtype=np.float64)
        stats = sfe_matrix([node.values for node in self.nodes])
        if not raw:
            stats = signed_log1p(stats)
        centrality = np.zeros((n, _CENTRALITY_DIMS), dtype=np.float64)
        for node in self.nodes:
            if node.centrality is not None:
                centrality[node.node_id] = node.centrality
        kind_onehot = np.zeros((n, len(NODE_KIND_ORDER)), dtype=np.float64)
        kind_index = np.fromiter(
            (NODE_KIND_ORDER.index(node.kind) for node in self.nodes),
            dtype=np.int64,
            count=n,
        )
        kind_onehot[np.arange(n), kind_index] = 1.0
        center_flag = np.zeros((n, 1), dtype=np.float64)
        center = self.center_node_id()
        if center is not None:
            center_flag[center, 0] = 1.0
        return np.hstack([stats, centrality, kind_onehot, center_flag])

    def total_edge_value(self) -> float:
        """Sum of transferred amounts over all edges (conservation checks)."""
        return float(sum(edge.value for edge in self.edges))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AddressGraph(center={self.center_address[:10]}…, "
            f"slice={self.slice_index}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
