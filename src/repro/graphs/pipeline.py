"""The staged address-graph construction pipeline (paper §IV-E, Table V).

Chains the four construction stages — original graph extraction,
single-transaction compression, multi-transaction compression, structure
augmentation — with per-stage wall-clock accounting, so Table V's
stage-cost breakdown can be regenerated directly from the pipeline's
timer.

The pipeline runs natively on the columnar
:class:`~repro.graphs.arrays.ArrayGraph` substrate: Stage 1 builds edge
and value-bag arrays directly from the transaction slices, Stages 2–3
compress those arrays in place (array union-find + ``bincount``
aggregation, no per-node object rebuilds), and Stage 4 attaches the
centrality matrix as one column — by default computed for *all* slice
graphs of the call in one block-diagonal batched sweep
(:func:`~repro.graphs.augmentation.augment_graphs`; see
``GraphPipelineConfig.batch_stage4``).  Callers that want the object
model convert with :meth:`~repro.graphs.model.AddressGraph.from_arrays`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.chain.explorer import ChainIndex
from repro.errors import GraphConstructionError, ValidationError
from repro.graphs.augmentation import augment_graph, augment_graphs
from repro.graphs.compression import (
    compress_multi_transaction_addresses,
    compress_single_transaction_addresses,
)
from repro.graphs.arrays import ArrayGraph
from repro.graphs.extraction import (
    build_arrays_from_columns,
    build_original_arrays,
    slice_transactions,
)
from repro.utils.timer import StageTimer

__all__ = [
    "GraphPipelineConfig",
    "GraphConstructionPipeline",
    "STAGE_NAMES",
    "stage_report_from_timer",
    "worker_build_slices",
]

STAGE_NAMES = (
    "stage1_extraction",
    "stage2_single_compression",
    "stage3_multi_compression",
    "stage4_augmentation",
)

#: Bridge from StageTimer stage names to registry histograms — the
#: legacy per-stage accounting keeps working, and every accumulation
#: also lands in an exportable ``repro.obs`` latency distribution.
_STAGE_HISTOGRAMS = {
    STAGE_NAMES[0]: obs.histogram("pipeline_stage1_extraction_seconds"),
    STAGE_NAMES[1]: obs.histogram(
        "pipeline_stage2_single_compression_seconds"
    ),
    STAGE_NAMES[2]: obs.histogram(
        "pipeline_stage3_multi_compression_seconds"
    ),
    STAGE_NAMES[3]: obs.histogram("pipeline_stage4_augmentation_seconds"),
}

#: Span names per stage (``with obs.span(...)`` around each stage pass).
_STAGE_SPANS = {
    STAGE_NAMES[0]: "pipeline.stage1_extraction",
    STAGE_NAMES[1]: "pipeline.stage2_single_compression",
    STAGE_NAMES[2]: "pipeline.stage3_multi_compression",
    STAGE_NAMES[3]: "pipeline.stage4_augmentation",
}


def _observe_stage(name: str, seconds: float, count: int) -> None:
    """StageTimer observer feeding per-stage histograms.

    One observation per accumulation event (a timed per-graph stage
    entry, or one batched sweep), matching how operators read stage
    latency distributions; the legacy per-graph *means* still come
    from the timer itself via :func:`stage_report_from_timer`.
    """
    metric = _STAGE_HISTOGRAMS.get(name)
    if metric is not None:
        metric.observe(seconds)


#: Config fields that tune *how fast* Stage 4 runs, not *what* it
#: builds — excluded from :meth:`GraphPipelineConfig.fingerprint` so
#: cache entries stay shareable across batching settings.
_PERF_ONLY_FIELDS = ("batch_stage4", "stage4_max_batch_nodes")


@dataclass(frozen=True)
class GraphPipelineConfig:
    """Construction parameters.

    ``slice_size`` is the paper's 100-transaction slicing unit; ``psi``
    (Ψ) and ``sigma`` (σ) are the multi-transaction compression
    thresholds.  The two ``enable_*`` switches exist for the compression
    ablation benchmark.

    ``batch_stage4`` selects the default cross-graph Stage-4 path: all
    slice graphs of a pipeline call share one block-diagonal centrality
    sweep (:func:`~repro.graphs.augmentation.augment_graphs`) instead
    of running the kernels per graph — output-identical, but with the
    per-graph scipy/Python overhead amortised across the batch.
    ``stage4_max_batch_nodes`` bounds the nodes packed per sweep (the
    dense BFS scratch is ``64 × nodes`` float64).  Both are performance
    knobs only and therefore excluded from :meth:`fingerprint`.
    """

    slice_size: int = 100
    psi: float = 0.6
    sigma: int = 2
    enable_single_compression: bool = True
    enable_multi_compression: bool = True
    enable_augmentation: bool = True
    batch_stage4: bool = True
    stage4_max_batch_nodes: int = 8192

    def __post_init__(self) -> None:
        if self.slice_size <= 0:
            raise ValidationError(f"slice_size must be > 0, got {self.slice_size}")
        if not 0.0 < self.psi <= 1.0:
            raise ValidationError(f"psi must be in (0, 1], got {self.psi}")
        if self.sigma < 1:
            raise ValidationError(f"sigma must be >= 1, got {self.sigma}")
        if self.stage4_max_batch_nodes <= 0:
            raise ValidationError(
                "stage4_max_batch_nodes must be > 0, got "
                f"{self.stage4_max_batch_nodes}"
            )

    def fingerprint(self) -> str:
        """Stable digest of the construction parameters.

        Two configs with equal fingerprints build identical graphs from
        identical transaction histories, so the digest is safe to use as
        a cache-key component (see :mod:`repro.serve`).  Performance-only
        knobs (Stage-4 batching) are excluded: they change wall-clock,
        never output, so flipping them must not invalidate warm caches.
        """
        payload = dataclasses.asdict(self)
        for field in _PERF_ONLY_FIELDS:
            payload.pop(field)
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()[:16]


class GraphConstructionPipeline:
    """Builds per-slice address graphs with per-stage timing."""

    def __init__(self, config: "GraphPipelineConfig | None" = None):
        self.config = config or GraphPipelineConfig()
        self.timer = StageTimer(observer=_observe_stage)

    def build(self, index: ChainIndex, address: str) -> List[ArrayGraph]:
        """All slice graphs of ``address``, fully compressed and augmented."""
        return self.build_slices(index, address, None)

    def build_slices(
        self,
        index: ChainIndex,
        address: str,
        slice_indices: Optional[Sequence[int]] = None,
    ) -> List[ArrayGraph]:
        """Slice graphs of ``address`` for the given slice indices only.

        The incremental path of the serving layer: when new blocks touch
        an address, only the slices at or after the previous partial
        slice change, so the cache rebuilds just those.  ``None`` builds
        every slice (equivalent to :meth:`build`).  Graphs are returned
        in ascending slice order.
        """
        graphs = self._build_compressed(index, address, slice_indices)
        if self.config.enable_augmentation:
            graphs = self._augment(graphs)
        return graphs

    def _build_compressed(
        self,
        index: ChainIndex,
        address: str,
        slice_indices: Optional[Sequence[int]],
    ) -> List[ArrayGraph]:
        """Stages 1–3 for one address (extraction + both compressions).

        Two column sources feed the extraction: the default path fetches
        Python ``Transaction`` objects and builds with
        :func:`build_original_arrays`; a store-backed index (one
        exposing ``transaction_columns_of``) is sliced straight from its
        mapped, pre-sorted :class:`~repro.chain.explorer.TxArrays`
        columns and built with
        :func:`~repro.graphs.extraction.build_arrays_from_columns` —
        identical output, no materialised transaction objects.
        """
        with obs.span(_STAGE_SPANS[STAGE_NAMES[0]]):
            graphs = self._extract(index, address, slice_indices)
        return self._compress(graphs)

    def _extract(
        self,
        index: ChainIndex,
        address: str,
        slice_indices: Optional[Sequence[int]],
    ) -> List[ArrayGraph]:
        """Stage 1 proper: slice the history and build original arrays."""
        start = time.perf_counter()
        columns_of = getattr(index, "transaction_columns_of", None)
        if columns_of is not None:
            size = self.config.slice_size
            if size <= 0:
                raise ValidationError(
                    f"slice_size must be > 0, got {size}"
                )
            columns = columns_of(address)
            if not columns:
                raise GraphConstructionError(
                    f"address {address[:12]} has no transactions on chain"
                )
            slices = [
                columns[s: s + size] for s in range(0, len(columns), size)
            ]
        else:
            transactions = index.transactions_of(address)
            if not transactions:
                raise GraphConstructionError(
                    f"address {address[:12]} has no transactions on chain"
                )
            slices = slice_transactions(transactions, self.config.slice_size)
        if slice_indices is None:
            wanted = list(range(len(slices)))
        else:
            wanted = sorted(set(int(i) for i in slice_indices))
            for i in wanted:
                if not 0 <= i < len(slices):
                    raise ValidationError(
                        f"slice index {i} out of range [0, {len(slices)})"
                        f" for {address[:12]}"
                    )
        prep_seconds = time.perf_counter() - start
        start = time.perf_counter()
        if columns_of is not None:
            graphs = [
                build_arrays_from_columns(
                    index, address, slices[i], slice_index=i
                )
                for i in wanted
            ]
        else:
            graphs = [
                build_original_arrays(address, slices[i], slice_index=i)
                for i in wanted
            ]
        build_seconds = time.perf_counter() - start
        if graphs:
            # Stage 1 covers fetch + chronological slicing + construction.
            # Fetch/slicing spans the whole history, so a partial rebuild
            # is only charged its share of it — keeping the per-graph mean
            # (Table V) comparable between full and incremental builds.
            prep_share = prep_seconds * len(wanted) / len(slices)
            self.timer.add(
                STAGE_NAMES[0],
                prep_share + build_seconds,
                count=len(graphs),
            )
        return graphs

    def _compress(self, graphs: List[ArrayGraph]) -> List[ArrayGraph]:
        """Stages 2–3 over extracted graphs, timed per graph."""
        cfg = self.config
        stages = [
            (
                cfg.enable_single_compression,
                STAGE_NAMES[1],
                compress_single_transaction_addresses,
            ),
            (
                cfg.enable_multi_compression,
                STAGE_NAMES[2],
                lambda g: compress_multi_transaction_addresses(
                    g, psi=cfg.psi, sigma=cfg.sigma
                ),
            ),
        ]
        for enabled, name, transform in stages:
            if not enabled:
                continue
            processed = []
            with obs.span(_STAGE_SPANS[name]):
                for graph in graphs:
                    with self.timer.stage(name):
                        processed.append(transform(graph))
            graphs = processed
        return graphs

    def _augment(self, graphs: List[ArrayGraph]) -> List[ArrayGraph]:
        """Stage 4, batched across ``graphs`` unless configured off.

        The batched path times the whole block-diagonal sweep once and
        amortises it over the batch (``count=len(graphs)``), so
        ``stage_report()`` keeps its per-graph mean semantics either
        way.
        """
        name = STAGE_NAMES[3]
        if not graphs:
            return graphs
        if self.config.batch_stage4:
            with obs.span(_STAGE_SPANS[name]):
                start = time.perf_counter()
                graphs = augment_graphs(
                    graphs,
                    max_batch_nodes=self.config.stage4_max_batch_nodes,
                )
                self.timer.add(
                    name, time.perf_counter() - start, count=len(graphs)
                )
            return graphs
        processed = []
        with obs.span(_STAGE_SPANS[name]):
            for graph in graphs:
                with self.timer.stage(name):
                    processed.append(augment_graph(graph))
        return processed

    def build_many(
        self, index: ChainIndex, addresses: Sequence[str]
    ) -> Dict[str, List[ArrayGraph]]:
        """Graphs for many addresses: ``{address: [slice graphs...]}``.

        Delegates to :meth:`build_many_slices`, so Stage-4 centrality
        batches across *every* address of the call, not per address.
        """
        return self.build_many_slices(
            index, {address: None for address in addresses}
        )

    def build_many_slices(
        self,
        index: ChainIndex,
        requests: "Dict[str, Optional[Sequence[int]]]",
    ) -> Dict[str, List[ArrayGraph]]:
        """Requested slice graphs of many addresses, one Stage-4 batch.

        ``requests`` maps each address to the slice indices wanted
        (``None`` = every slice, like :meth:`build`).  Stages 1–3 run
        per address; the Stage-4 centrality sweep then runs once over
        the union of all slice graphs of the call — the cross-address
        batching the serving layer uses to amortise the hottest kernel
        over a whole ``score()`` query.  Results are identical to
        calling :meth:`build_slices` per address.
        """
        prepared = {
            address: self._build_compressed(index, address, slice_indices)
            for address, slice_indices in requests.items()
        }
        if self.config.enable_augmentation:
            self._augment(
                [graph for graphs in prepared.values() for graph in graphs]
            )
        return prepared

    def stage_report(self) -> List[Dict[str, float]]:
        """Per-stage rows: name, total seconds, share, mean, entry count.

        Directly regenerates the shape of the paper's Table V.  Every
        timer entry covers exactly one slice graph (extraction time is
        amortised over the graphs it produced), so ``mean_seconds`` is
        the per-graph cost Table V reports — not a per-address figure.
        ``graphs_per_second`` is its reciprocal throughput, the quantity
        tracked by ``benchmarks/bench_pipeline_throughput.py``.
        """
        return stage_report_from_timer(self.timer)


def stage_report_from_timer(timer: StageTimer) -> List[Dict[str, float]]:
    """Table-V-shaped stage rows from any :class:`StageTimer`.

    The report body behind :meth:`GraphConstructionPipeline.stage_report`,
    exposed separately so callers that *aggregate* timers — the cluster
    serving layer merges per-shard pipelines and shipped-back worker
    timers — can render the same rows without a pipeline instance.
    """
    ratios = timer.ratios()
    report = []
    for name in timer.stage_names:
        total = timer.totals[name]
        count = timer.counts[name]
        report.append(
            {
                "stage": name,
                "total_seconds": total,
                "ratio": ratios[name],
                "mean_seconds": timer.mean(name),
                "entries": count,
                "graphs_per_second": count / total if total > 0 else 0.0,
            }
        )
    return report


def worker_build_slices(
    index: ChainIndex,
    requests: "Dict[str, Optional[Sequence[int]]]",
    config: GraphPipelineConfig,
) -> "Tuple[Dict[str, List[ArrayGraph]], StageTimer]":
    """Process-pool entry point: build requested slices, report timings.

    The worker-side body of the cluster serving layer's miss path: a
    private :class:`GraphConstructionPipeline` over ``config`` runs one
    :meth:`~GraphConstructionPipeline.build_many_slices` call — so
    Stage 4 batches across *every* address the worker owns — and the
    pipeline's :class:`~repro.utils.timer.StageTimer` is returned
    alongside the graphs so the parent process can merge construction
    accounting across workers.  Everything returned is picklable
    (ndarray-columned :class:`~repro.graphs.arrays.ArrayGraph` payloads
    plus plain timer dicts), which is what lets the result travel back
    over a ``multiprocessing`` pipe.
    """
    pipeline = GraphConstructionPipeline(config)
    graphs = pipeline.build_many_slices(index, requests)
    return graphs, pipeline.timer
