"""The staged address-graph construction pipeline (paper §IV-E, Table V).

Chains the four construction stages — original graph extraction,
single-transaction compression, multi-transaction compression, structure
augmentation — with per-stage wall-clock accounting, so Table V's
stage-cost breakdown can be regenerated directly from the pipeline's
timer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.chain.explorer import ChainIndex
from repro.errors import ValidationError
from repro.graphs.augmentation import augment_graph
from repro.graphs.compression import (
    compress_multi_transaction_addresses,
    compress_single_transaction_addresses,
)
from repro.graphs.extraction import extract_graphs
from repro.graphs.model import AddressGraph
from repro.utils.timer import StageTimer

__all__ = ["GraphPipelineConfig", "GraphConstructionPipeline", "STAGE_NAMES"]

STAGE_NAMES = (
    "stage1_extraction",
    "stage2_single_compression",
    "stage3_multi_compression",
    "stage4_augmentation",
)


@dataclass(frozen=True)
class GraphPipelineConfig:
    """Construction parameters.

    ``slice_size`` is the paper's 100-transaction slicing unit; ``psi``
    (Ψ) and ``sigma`` (σ) are the multi-transaction compression
    thresholds.  The two ``enable_*`` switches exist for the compression
    ablation benchmark.
    """

    slice_size: int = 100
    psi: float = 0.6
    sigma: int = 2
    enable_single_compression: bool = True
    enable_multi_compression: bool = True
    enable_augmentation: bool = True

    def __post_init__(self) -> None:
        if self.slice_size <= 0:
            raise ValidationError(f"slice_size must be > 0, got {self.slice_size}")
        if not 0.0 < self.psi <= 1.0:
            raise ValidationError(f"psi must be in (0, 1], got {self.psi}")
        if self.sigma < 1:
            raise ValidationError(f"sigma must be >= 1, got {self.sigma}")


class GraphConstructionPipeline:
    """Builds per-slice address graphs with per-stage timing."""

    def __init__(self, config: "GraphPipelineConfig | None" = None):
        self.config = config or GraphPipelineConfig()
        self.timer = StageTimer()

    def build(self, index: ChainIndex, address: str) -> List[AddressGraph]:
        """All slice graphs of ``address``, fully compressed and augmented."""
        cfg = self.config
        with self.timer.stage(STAGE_NAMES[0]):
            graphs = extract_graphs(index, address, slice_size=cfg.slice_size)
        if cfg.enable_single_compression:
            with self.timer.stage(STAGE_NAMES[1]):
                graphs = [
                    compress_single_transaction_addresses(g) for g in graphs
                ]
        if cfg.enable_multi_compression:
            with self.timer.stage(STAGE_NAMES[2]):
                graphs = [
                    compress_multi_transaction_addresses(
                        g, psi=cfg.psi, sigma=cfg.sigma
                    )
                    for g in graphs
                ]
        if cfg.enable_augmentation:
            with self.timer.stage(STAGE_NAMES[3]):
                graphs = [augment_graph(g) for g in graphs]
        return graphs

    def build_many(
        self, index: ChainIndex, addresses: Sequence[str]
    ) -> Dict[str, List[AddressGraph]]:
        """Graphs for many addresses: ``{address: [slice graphs...]}``."""
        return {address: self.build(index, address) for address in addresses}

    def stage_report(self) -> List[Dict[str, float]]:
        """Per-stage rows: name, total seconds, share of total, mean/entry.

        Directly regenerates the shape of the paper's Table V.
        """
        ratios = self.timer.ratios()
        report = []
        for name in self.timer.stage_names:
            report.append(
                {
                    "stage": name,
                    "total_seconds": self.timer.totals[name],
                    "ratio": ratios[name],
                    "mean_seconds": self.timer.mean(name),
                }
            )
        return report
