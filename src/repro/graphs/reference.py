"""Reference (pre-vectorization) graph-construction kernels.

These are the original pure-Python implementations of the centrality
measures (Eq. 8–11), the two compression passes (Eq. 1–7), and the Lee
et al. 80-feature extractor, kept verbatim from before the CSR/ndarray
rewrite of :mod:`repro.graphs.centrality`,
:mod:`repro.graphs.compression` and
:mod:`repro.features.address_features`.

They serve two purposes:

- **Parity oracles** — ``tests/test_vectorized_parity.py`` asserts the
  vectorized kernels reproduce these to 1e-9 on randomized graphs.
- **Benchmark baselines** — ``benchmarks/bench_pipeline_throughput.py``
  measures the vectorized kernels' speedup against them, the repo's
  tracked Stage-4 perf trajectory.

They are deliberately *not* exported from :mod:`repro.graphs`; nothing
in the production pipeline should call them.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.features.sfe import SFE_DIM, sfe_vector, signed_log1p
from repro.graphs.model import AddressGraph, GraphEdge, GraphNode, NodeKind

__all__ = [
    "reference_degree_centrality",
    "reference_closeness_centrality",
    "reference_betweenness_centrality",
    "reference_pagerank_centrality",
    "reference_centrality_matrix",
    "reference_compress_single_transaction_addresses",
    "reference_compress_multi_transaction_addresses",
    "reference_similarity_matrices",
    "reference_extract_address_features",
]

Adjacency = Sequence[Sequence[int]]


# --------------------------------------------------------------------- #
# Centrality (original per-node BFS / Brandes / edge-loop PageRank)
# --------------------------------------------------------------------- #


def _validate(adjacency: Adjacency) -> int:
    n = len(adjacency)
    for node, neighbors in enumerate(adjacency):
        for neighbor in neighbors:
            if not 0 <= neighbor < n:
                raise ValidationError(
                    f"adjacency[{node}] references unknown node {neighbor}"
                )
    return n


def reference_degree_centrality(adjacency: Adjacency) -> np.ndarray:
    """Degree divided by ``n − 1`` (1.0 = connected to everyone)."""
    n = _validate(adjacency)
    if n <= 1:
        return np.zeros(n, dtype=np.float64)
    degrees = np.array([len(nbrs) for nbrs in adjacency], dtype=np.float64)
    return degrees / (n - 1)


def _bfs_distances(adjacency: Adjacency, source: int) -> np.ndarray:
    n = len(adjacency)
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if dist[neighbor] < 0:
                dist[neighbor] = dist[node] + 1
                queue.append(neighbor)
    return dist


def reference_closeness_centrality(adjacency: Adjacency) -> np.ndarray:
    """Per-component closeness ``(r − 1) / Σ d`` (Eq. 9)."""
    n = _validate(adjacency)
    scores = np.zeros(n, dtype=np.float64)
    for node in range(n):
        dist = _bfs_distances(adjacency, node)
        reachable = dist >= 0
        r = int(reachable.sum())
        if r <= 1:
            continue
        total = float(dist[reachable].sum())
        if total > 0:
            scores[node] = (r - 1) / total
    return scores


def reference_betweenness_centrality(
    adjacency: Adjacency, normalized: bool = True
) -> np.ndarray:
    """Shortest-path betweenness via Brandes' accumulation (Eq. 10)."""
    n = _validate(adjacency)
    scores = np.zeros(n, dtype=np.float64)
    for source in range(n):
        stack: List[int] = []
        predecessors: List[List[int]] = [[] for _ in range(n)]
        sigma = np.zeros(n, dtype=np.float64)
        sigma[source] = 1.0
        dist = np.full(n, -1, dtype=np.int64)
        dist[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            stack.append(node)
            for neighbor in adjacency[node]:
                if dist[neighbor] < 0:
                    dist[neighbor] = dist[node] + 1
                    queue.append(neighbor)
                if dist[neighbor] == dist[node] + 1:
                    sigma[neighbor] += sigma[node]
                    predecessors[neighbor].append(node)
        delta = np.zeros(n, dtype=np.float64)
        while stack:
            node = stack.pop()
            for pred in predecessors[node]:
                delta[pred] += sigma[pred] / sigma[node] * (1.0 + delta[node])
            if node != source:
                scores[node] += delta[node]
    scores /= 2.0  # each undirected pair counted twice
    if normalized and n > 2:
        scores *= 2.0 / ((n - 1) * (n - 2))
    return scores


def reference_pagerank_centrality(
    adjacency: Adjacency,
    alpha: float = 0.85,
    max_iterations: int = 200,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Power-iteration PageRank with dangling redistribution (Eq. 11)."""
    n = _validate(adjacency)
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    if not 0.0 < alpha < 1.0:
        raise ValidationError(f"alpha must be in (0, 1), got {alpha}")
    out_degree = np.array([len(nbrs) for nbrs in adjacency], dtype=np.float64)
    dangling = out_degree == 0
    rank = np.full(n, 1.0 / n, dtype=np.float64)
    for _ in range(max_iterations):
        new_rank = np.full(n, (1.0 - alpha) / n, dtype=np.float64)
        dangling_mass = alpha * float(rank[dangling].sum()) / n
        new_rank += dangling_mass
        for node, neighbors in enumerate(adjacency):
            if not neighbors:
                continue
            share = alpha * rank[node] / out_degree[node]
            for neighbor in neighbors:
                new_rank[neighbor] += share
        if float(np.abs(new_rank - rank).sum()) < tolerance:
            rank = new_rank
            break
        rank = new_rank
    return rank


def reference_centrality_matrix(adjacency: Adjacency) -> np.ndarray:
    """All four centralities stacked: shape ``(n, 4)``."""
    return np.column_stack(
        [
            reference_degree_centrality(adjacency),
            reference_closeness_centrality(adjacency),
            reference_betweenness_centrality(adjacency),
            reference_pagerank_centrality(adjacency),
        ]
    )


# --------------------------------------------------------------------- #
# Compression (original per-edge / per-member set machinery)
# --------------------------------------------------------------------- #


def _distinct_neighbors(graph: AddressGraph) -> List[Set[int]]:
    neighbors: List[Set[int]] = [set() for _ in range(graph.num_nodes)]
    for edge in graph.edges:
        neighbors[edge.src].add(edge.dst)
        neighbors[edge.dst].add(edge.src)
    return neighbors


def _rebuild_with_merges(
    graph: AddressGraph,
    merge_groups: List[Tuple[str, str, List[int]]],
) -> AddressGraph:
    member_to_group: Dict[int, int] = {}
    for group_index, (_, _, members) in enumerate(merge_groups):
        for member in members:
            member_to_group[member] = group_index

    new_nodes: List[GraphNode] = []
    old_to_new: Dict[int, int] = {}
    for node in graph.nodes:
        if node.node_id in member_to_group:
            continue
        new_id = len(new_nodes)
        old_to_new[node.node_id] = new_id
        new_nodes.append(
            GraphNode(
                node_id=new_id,
                kind=node.kind,
                ref=node.ref,
                values=list(node.values),
                merged_count=node.merged_count,
                centrality=node.centrality,
            )
        )
    group_new_ids: List[int] = []
    for kind, ref, members in merge_groups:
        new_id = len(new_nodes)
        group_new_ids.append(new_id)
        bag: List[float] = []
        merged_count = 0
        for member in members:
            bag.extend(graph.nodes[member].values)
            merged_count += graph.nodes[member].merged_count
        new_nodes.append(
            GraphNode(
                node_id=new_id,
                kind=kind,
                ref=ref,
                values=bag,
                merged_count=merged_count,
            )
        )

    def resolve(old_id: int) -> int:
        group = member_to_group.get(old_id)
        if group is not None:
            return group_new_ids[group]
        return old_to_new[old_id]

    aggregated: Dict[Tuple[int, int], float] = {}
    order: List[Tuple[int, int]] = []
    for edge in graph.edges:
        key = (resolve(edge.src), resolve(edge.dst))
        if key not in aggregated:
            aggregated[key] = 0.0
            order.append(key)
        aggregated[key] += edge.value

    new_edges = [
        GraphEdge(src=src, dst=dst, value=aggregated[(src, dst)])
        for src, dst in order
    ]
    return graph.rebuild(new_nodes, new_edges)


def reference_compress_single_transaction_addresses(
    graph: AddressGraph,
) -> AddressGraph:
    """Merge degree-1 address nodes per transaction and side (Fig. 3)."""
    neighbors = _distinct_neighbors(graph)
    center_id = graph.center_node_id()

    in_side: Dict[int, Set[int]] = {}
    out_side: Dict[int, Set[int]] = {}
    for edge in graph.edges:
        src_node = graph.nodes[edge.src]
        dst_node = graph.nodes[edge.dst]
        if src_node.kind == NodeKind.ADDRESS and dst_node.kind == NodeKind.TRANSACTION:
            in_side.setdefault(edge.dst, set()).add(edge.src)
        elif src_node.kind == NodeKind.TRANSACTION and dst_node.kind == NodeKind.ADDRESS:
            out_side.setdefault(edge.src, set()).add(edge.dst)

    merge_groups: List[Tuple[str, str, List[int]]] = []
    for tx_id, side_map, tag in (
        *((tx, in_side, "in") for tx in in_side),
        *((tx, out_side, "out") for tx in out_side),
    ):
        members = []
        other = out_side if tag == "in" else in_side
        for addr_id in sorted(side_map[tx_id]):
            node = graph.nodes[addr_id]
            if addr_id == center_id or node.kind != NodeKind.ADDRESS:
                continue
            if len(neighbors[addr_id]) != 1:
                continue  # multi-transaction address
            if addr_id in other.get(tx_id, ()):  # appears on both sides
                continue
            members.append(addr_id)
        if len(members) >= 2:
            tx_ref = graph.nodes[tx_id].ref
            merge_groups.append(
                (NodeKind.SINGLE_HYPER, f"s:{tx_ref}:{tag}", members)
            )

    if not merge_groups:
        return graph
    return _rebuild_with_merges(graph, merge_groups)


def reference_similarity_matrices(
    graph: AddressGraph,
) -> Tuple[List[int], List[int], np.ndarray, np.ndarray]:
    """The incidence and similarity matrices of Eq. (3)–(4)."""
    neighbors = _distinct_neighbors(graph)
    center_id = graph.center_node_id()
    tx_ids = [n.node_id for n in graph.nodes if n.kind == NodeKind.TRANSACTION]
    tx_index = {tx: i for i, tx in enumerate(tx_ids)}
    multi_ids = [
        node.node_id
        for node in graph.nodes
        if node.kind == NodeKind.ADDRESS
        and node.node_id != center_id
        and len(neighbors[node.node_id]) >= 2
    ]
    n, d = len(multi_ids), len(tx_ids)
    incidence = np.zeros((n, d), dtype=np.float64)
    for row, addr_id in enumerate(multi_ids):
        for neighbor in neighbors[addr_id]:
            col = tx_index.get(neighbor)
            if col is not None:
                incidence[row, col] = 1.0
    shared = incidence @ incidence.T
    diagonal = np.diag(shared).copy()
    safe = np.where(diagonal > 0, diagonal, 1.0)
    similarity = shared / safe[np.newaxis, :]
    return multi_ids, tx_ids, shared, similarity


def reference_compress_multi_transaction_addresses(
    graph: AddressGraph,
    psi: float = 0.6,
    sigma: int = 2,
) -> AddressGraph:
    """Merge co-occurring multi-transaction address nodes (Eq. 3–7)."""
    if not 0.0 < psi <= 1.0:
        raise ValidationError(f"psi must be in (0, 1], got {psi}")
    if sigma < 1:
        raise ValidationError(f"sigma must be >= 1, got {sigma}")

    multi_ids, _, _, similarity = reference_similarity_matrices(graph)
    if len(multi_ids) < 2:
        return graph

    thresholded = np.maximum(0.0, similarity - psi)  # Eq. (5)
    nonzero_counts = (thresholded > 0.0).sum(axis=1)

    merged: Set[int] = set()
    merge_groups: List[Tuple[str, str, List[int]]] = []
    for row in np.argsort(-nonzero_counts):
        row = int(row)
        if nonzero_counts[row] <= sigma or row in merged:
            continue
        similar_rows = [
            int(col)
            for col in np.flatnonzero(thresholded[row] > 0.0)
            if int(col) not in merged
        ]
        if len(similar_rows) < 2:
            continue
        merged.update(similar_rows)
        members = [multi_ids[col] for col in similar_rows]
        anchor_ref = graph.nodes[multi_ids[row]].ref
        merge_groups.append((NodeKind.MULTI_HYPER, f"m:{anchor_ref}", members))

    if not merge_groups:
        return graph
    return _rebuild_with_merges(graph, merge_groups)


# --------------------------------------------------------------------- #
# Lee et al. features (original per-transaction Python loops)
# --------------------------------------------------------------------- #

_BASIC_DIMS = 8
_STRUCTURE_DIMS = 12
_SECONDS_PER_DAY = 86_400.0


def reference_extract_address_features(
    index, address: str, raw: bool = False
) -> np.ndarray:
    """The 80-dimensional Lee et al. feature vector (original loops)."""
    records = index.records_for(address)
    transactions = index.transactions_of(address)

    received: List[float] = []
    spent: List[float] = []
    net_flows: List[float] = []
    n_in = n_out = n_self = n_coinbase = 0
    for record, tx in zip(records, transactions):
        net_flows.append(float(record.net_value))
        if record.net_value > 0:
            n_in += 1
            received.append(float(record.net_value))
        elif record.net_value < 0:
            n_out += 1
            spent.append(float(-record.net_value))
        else:
            n_self += 1
        if tx.is_coinbase:
            n_coinbase += 1

    n_tx = len(records)
    timestamps = np.array([r.timestamp for r in records], dtype=np.float64)
    lifetime = float(timestamps[-1] - timestamps[0]) if n_tx > 1 else 0.0
    intervals = np.diff(timestamps) if n_tx > 1 else np.zeros(0)

    basic = np.array(
        [
            n_tx,
            n_in,
            n_out,
            n_self,
            n_coinbase,
            n_in / n_tx if n_tx else 0.0,
            n_out / n_tx if n_tx else 0.0,
            lifetime,
        ],
        dtype=np.float64,
    )

    structure = _reference_structure_features(transactions, address, lifetime)

    vector = np.concatenate(
        [
            basic,
            sfe_vector(received),
            sfe_vector(spent),
            sfe_vector(net_flows),
            sfe_vector(intervals),
            structure,
        ]
    )
    if raw:
        return vector
    return signed_log1p(vector)


def _reference_structure_features(
    transactions: Sequence, address: str, lifetime: float
) -> np.ndarray:
    """12 structural aggregates over the address's transactions."""
    if not transactions:
        return np.zeros(_STRUCTURE_DIMS, dtype=np.float64)

    input_counts = []
    output_counts = []
    fees = []
    counterparties = set()
    fanout_txs = 0
    fanin_txs = 0
    sender_txs = 0
    for tx in transactions:
        input_counts.append(len(tx.inputs))
        output_counts.append(len(tx.outputs))
        counterparties.update(tx.addresses())
        is_sender = any(inp.address == address for inp in tx.inputs)
        if is_sender:
            sender_txs += 1
            fees.append(float(tx.fee))
            if len(tx.outputs) > 5:
                fanout_txs += 1
        if any(out.address == address for out in tx.outputs) and len(tx.inputs) > 5:
            fanin_txs += 1
    counterparties.discard(address)

    n_tx = len(transactions)
    lifetime_days = max(lifetime / _SECONDS_PER_DAY, 1e-9)
    return np.array(
        [
            float(np.mean(input_counts)),
            float(np.max(input_counts)),
            float(np.mean(output_counts)),
            float(np.max(output_counts)),
            float(len(counterparties)),
            len(counterparties) / n_tx,
            float(np.sum(fees)) if fees else 0.0,
            float(np.mean(fees)) if fees else 0.0,
            sender_txs / n_tx,
            fanout_txs / max(sender_txs, 1),
            fanin_txs / n_tx,
            n_tx / lifetime_days,
        ],
        dtype=np.float64,
    )
