"""Classical ML baselines, from scratch (Table II comparators).

Logistic regression, linear SVM, Bernoulli/Gaussian naive Bayes, k-NN,
CART decision tree, random forest, multiclass GBDT, second-order
("XGBoost-style") boosting, and an sklearn-style MLP over repro.nn.
"""

from repro.ml.base import Classifier, softmax_rows
from repro.ml.ensemble import GradientBoostingClassifier, RandomForestClassifier
from repro.ml.linear import LinearSVM, LogisticRegression
from repro.ml.naive_bayes import BernoulliNB, GaussianNB
from repro.ml.neighbors import KNNClassifier
from repro.ml.neural import MLPClassifier
from repro.ml.preprocessing import StandardScaler
from repro.ml.tree import DecisionTreeClassifier, RegressionTree
from repro.ml.xgboost import XGBoostClassifier

__all__ = [
    "Classifier",
    "softmax_rows",
    "GradientBoostingClassifier",
    "RandomForestClassifier",
    "LinearSVM",
    "LogisticRegression",
    "BernoulliNB",
    "GaussianNB",
    "KNNClassifier",
    "MLPClassifier",
    "StandardScaler",
    "DecisionTreeClassifier",
    "RegressionTree",
    "XGBoostClassifier",
]
