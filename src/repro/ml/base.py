"""Estimator base class for the from-scratch classical ML models."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import NotFittedError, ValidationError

__all__ = ["Classifier", "check_fit_inputs", "softmax_rows"]


def check_fit_inputs(features, labels) -> tuple:
    """Coerce and validate ``(X, y)`` for classifier fitting."""
    x = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels, dtype=np.int64)
    if x.ndim != 2:
        raise ValidationError(f"X must be 2-D, got shape {x.shape}")
    if y.ndim != 1:
        raise ValidationError(f"y must be 1-D, got shape {y.shape}")
    if x.shape[0] != y.shape[0]:
        raise ValidationError(
            f"X rows ({x.shape[0]}) must match y length ({y.shape[0]})"
        )
    if x.shape[0] == 0:
        raise ValidationError("cannot fit on an empty dataset")
    if y.min() < 0:
        raise ValidationError("labels must be non-negative integers")
    return x, y


def softmax_rows(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax of a 2-D logit matrix."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=1, keepdims=True)


class Classifier:
    """Common fit/predict interface.

    Subclasses set ``self.num_classes_`` during :meth:`fit` and implement
    :meth:`predict_proba` (or override :meth:`predict` directly).
    """

    num_classes_: Optional[int] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self.num_classes_ is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before prediction"
            )

    def fit(self, features, labels) -> "Classifier":
        """Train on ``(X, y)``; returns self."""
        raise NotImplementedError

    def predict_proba(self, features) -> np.ndarray:
        """Class-probability matrix ``(n_samples, n_classes)``."""
        raise NotImplementedError

    def predict(self, features) -> np.ndarray:
        """Hard class predictions."""
        self._require_fitted()
        return np.argmax(self.predict_proba(features), axis=1)

    def score(self, features, labels) -> float:
        """Mean accuracy on ``(X, y)``."""
        labels = np.asarray(labels, dtype=np.int64)
        return float(np.mean(self.predict(features) == labels))
