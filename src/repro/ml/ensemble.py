"""Tree ensembles: random forest and gradient-boosted decision trees."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import Classifier, check_fit_inputs, softmax_rows
from repro.ml.tree import DecisionTreeClassifier, RegressionTree
from repro.utils.rng import as_generator

__all__ = ["RandomForestClassifier", "GradientBoostingClassifier"]


class RandomForestClassifier(Classifier):
    """Bootstrap-aggregated CART trees with √d feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        seed: int = 0,
    ):
        if n_estimators <= 0:
            raise ValidationError(f"n_estimators must be > 0, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_: List[DecisionTreeClassifier] = []

    def fit(self, features, labels) -> "RandomForestClassifier":
        x, y = check_fit_inputs(features, labels)
        self.num_classes_ = int(y.max()) + 1
        rng = as_generator(self.seed)
        self.trees_ = []
        n = x.shape[0]
        for index in range(self.n_estimators):
            sample = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(rng.integers(2**31)),
            )
            tree.num_classes_ = self.num_classes_
            tree.fit(x[sample], y[sample])
            # Bootstrap may miss classes; align proba width to the forest.
            tree.num_classes_ = self.num_classes_
            self.trees_.append(tree)
        return self

    def predict_proba(self, features) -> np.ndarray:
        self._require_fitted()
        x = np.asarray(features, dtype=np.float64)
        total = np.zeros((x.shape[0], self.num_classes_))
        for tree in self.trees_:
            proba = tree.predict_proba(x)
            if proba.shape[1] < self.num_classes_:
                padded = np.zeros((x.shape[0], self.num_classes_))
                padded[:, : proba.shape[1]] = proba
                proba = padded
            total += proba
        return total / len(self.trees_)


class GradientBoostingClassifier(Classifier):
    """Multiclass GBDT with softmax deviance and Friedman leaf updates.

    Each boosting round fits one shallow regression tree per class to the
    softmax residual ``y_k − p_k``; leaf outputs use the standard
    multiclass update ``(K−1)/K · Σr / Σ|r|(1−|r|)``.
    """

    def __init__(
        self,
        n_estimators: int = 60,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        seed: int = 0,
    ):
        if n_estimators <= 0:
            raise ValidationError(f"n_estimators must be > 0, got {n_estimators}")
        if not 0.0 < learning_rate <= 1.0:
            raise ValidationError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if not 0.0 < subsample <= 1.0:
            raise ValidationError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self.rounds_: List[List[RegressionTree]] = []
        self.init_scores_ = None

    def fit(self, features, labels) -> "GradientBoostingClassifier":
        x, y = check_fit_inputs(features, labels)
        n, _ = x.shape
        n_classes = int(y.max()) + 1
        self.num_classes_ = n_classes
        rng = as_generator(self.seed)
        onehot = np.eye(n_classes)[y]
        priors = np.clip(onehot.mean(axis=0), 1e-12, None)
        self.init_scores_ = np.log(priors)
        scores = np.tile(self.init_scores_, (n, 1))
        self.rounds_ = []
        for _ in range(self.n_estimators):
            probabilities = softmax_rows(scores)
            residual = onehot - probabilities
            if self.subsample < 1.0:
                chosen = rng.random(n) < self.subsample
                if not chosen.any():
                    chosen[rng.integers(n)] = True
            else:
                chosen = np.ones(n, dtype=bool)
            round_trees: List[RegressionTree] = []
            for cls in range(n_classes):
                tree = RegressionTree(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    seed=int(rng.integers(2**31)),
                )
                tree.fit(x[chosen], residual[chosen, cls])
                self._friedman_update(tree, x[chosen], residual[chosen, cls])
                scores[:, cls] += self.learning_rate * tree.predict(x)
                round_trees.append(tree)
            self.rounds_.append(round_trees)
        return self

    def _friedman_update(
        self, tree: RegressionTree, x: np.ndarray, residual: np.ndarray
    ) -> None:
        k = float(self.num_classes_)
        leaves = tree.apply(x)
        updates = {}
        for leaf in np.unique(leaves):
            rows = leaves == leaf
            numerator = residual[rows].sum()
            denominator = float(
                (np.abs(residual[rows]) * (1.0 - np.abs(residual[rows]))).sum()
            )
            if denominator < 1e-12:
                continue
            updates[int(leaf)] = (k - 1.0) / k * numerator / denominator
        tree.set_leaf_values(updates)

    def decision_function(self, features) -> np.ndarray:
        """Raw additive scores ``(n_samples, n_classes)``."""
        self._require_fitted()
        x = np.asarray(features, dtype=np.float64)
        scores = np.tile(self.init_scores_, (x.shape[0], 1))
        for round_trees in self.rounds_:
            for cls, tree in enumerate(round_trees):
                scores[:, cls] += self.learning_rate * tree.predict(x)
        return scores

    def predict_proba(self, features) -> np.ndarray:
        return softmax_rows(self.decision_function(features))
