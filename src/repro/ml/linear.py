"""Linear classifiers: softmax regression and a linear SVM.

Both standardise features internally by default (linear models are
scale-sensitive; the address features span orders of magnitude even after
log compression).  Pass ``standardize=False`` to reproduce the paper's
Table II protocol, where raw-magnitude features sink the scale-sensitive
models.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import Classifier, check_fit_inputs, softmax_rows
from repro.ml.preprocessing import StandardScaler
from repro.utils.rng import as_generator

__all__ = ["LogisticRegression", "LinearSVM"]


class LogisticRegression(Classifier):
    """Multinomial logistic regression trained by batch gradient descent."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        epochs: int = 300,
        l2: float = 1e-4,
        seed: int = 0,
        standardize: bool = True,
    ):
        if epochs <= 0:
            raise ValidationError(f"epochs must be > 0, got {epochs}")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.seed = seed
        self.standardize = standardize
        self.weights_ = None
        self.bias_ = None
        self._scaler = StandardScaler()

    def _fit_scale(self, x):
        return self._scaler.fit_transform(x) if self.standardize else x

    def _scale(self, x):
        return self._scaler.transform(x) if self.standardize else x

    def fit(self, features, labels) -> "LogisticRegression":
        x, y = check_fit_inputs(features, labels)
        x = self._fit_scale(x)
        n_samples, n_features = x.shape
        n_classes = int(y.max()) + 1
        rng = as_generator(self.seed)
        weights = rng.normal(0.0, 0.01, size=(n_features, n_classes))
        bias = np.zeros(n_classes)
        onehot = np.eye(n_classes)[y]
        for _ in range(self.epochs):
            probabilities = softmax_rows(x @ weights + bias)
            error = (probabilities - onehot) / n_samples
            grad_w = x.T @ error + self.l2 * weights
            grad_b = error.sum(axis=0)
            weights -= self.learning_rate * grad_w
            bias -= self.learning_rate * grad_b
        self.weights_ = weights
        self.bias_ = bias
        self.num_classes_ = n_classes
        return self

    def predict_proba(self, features) -> np.ndarray:
        self._require_fitted()
        x = self._scale(np.asarray(features, dtype=np.float64))
        return softmax_rows(x @ self.weights_ + self.bias_)


class LinearSVM(Classifier):
    """One-vs-rest linear SVM trained by hinge-loss subgradient descent.

    ``predict_proba`` returns softmax-calibrated decision margins — enough
    for argmax prediction and ranking, which is all the benchmarks use.
    """

    def __init__(
        self,
        learning_rate: float = 0.05,
        epochs: int = 300,
        c: float = 1.0,
        seed: int = 0,
        standardize: bool = True,
    ):
        if epochs <= 0:
            raise ValidationError(f"epochs must be > 0, got {epochs}")
        if c <= 0:
            raise ValidationError(f"C must be > 0, got {c}")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.c = c
        self.seed = seed
        self.standardize = standardize
        self.weights_ = None
        self.bias_ = None
        self._scaler = StandardScaler()

    def _fit_scale(self, x):
        return self._scaler.fit_transform(x) if self.standardize else x

    def _scale(self, x):
        return self._scaler.transform(x) if self.standardize else x

    def fit(self, features, labels) -> "LinearSVM":
        x, y = check_fit_inputs(features, labels)
        x = self._fit_scale(x)
        n_samples, n_features = x.shape
        n_classes = int(y.max()) + 1
        rng = as_generator(self.seed)
        weights = rng.normal(0.0, 0.01, size=(n_features, n_classes))
        bias = np.zeros(n_classes)
        # OvR targets in {-1, +1}
        targets = np.where(np.eye(n_classes)[y] > 0, 1.0, -1.0)
        for _ in range(self.epochs):
            margins = targets * (x @ weights + bias)
            active = (margins < 1.0).astype(np.float64)
            grad_w = (
                weights / n_samples
                - self.c * (x.T @ (active * targets)) / n_samples
            )
            grad_b = -self.c * (active * targets).sum(axis=0) / n_samples
            weights -= self.learning_rate * grad_w
            bias -= self.learning_rate * grad_b
        self.weights_ = weights
        self.bias_ = bias
        self.num_classes_ = n_classes
        return self

    def decision_function(self, features) -> np.ndarray:
        """Raw OvR margins, shape ``(n_samples, n_classes)``."""
        self._require_fitted()
        x = self._scale(np.asarray(features, dtype=np.float64))
        return x @ self.weights_ + self.bias_

    def predict_proba(self, features) -> np.ndarray:
        return softmax_rows(self.decision_function(features))
