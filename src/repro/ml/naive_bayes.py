"""Naive Bayes classifiers: Gaussian and Bernoulli variants."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import Classifier, check_fit_inputs

__all__ = ["GaussianNB", "BernoulliNB"]


class GaussianNB(Classifier):
    """Per-class diagonal-Gaussian likelihoods with shared variance floor."""

    def __init__(self, var_smoothing: float = 1e-9):
        if var_smoothing <= 0:
            raise ValidationError(
                f"var_smoothing must be > 0, got {var_smoothing}"
            )
        self.var_smoothing = var_smoothing
        self.means_ = None
        self.variances_ = None
        self.log_priors_ = None

    def fit(self, features, labels) -> "GaussianNB":
        x, y = check_fit_inputs(features, labels)
        n_classes = int(y.max()) + 1
        n_features = x.shape[1]
        means = np.zeros((n_classes, n_features))
        variances = np.zeros((n_classes, n_features))
        priors = np.zeros(n_classes)
        floor = self.var_smoothing * float(x.var(axis=0).max() or 1.0)
        for cls in range(n_classes):
            rows = x[y == cls]
            priors[cls] = len(rows) / len(x)
            if len(rows) == 0:
                variances[cls] = floor
                continue
            means[cls] = rows.mean(axis=0)
            variances[cls] = rows.var(axis=0) + floor
        self.means_ = means
        self.variances_ = variances
        with np.errstate(divide="ignore"):
            self.log_priors_ = np.where(priors > 0, np.log(priors), -np.inf)
        self.num_classes_ = n_classes
        return self

    def _joint_log_likelihood(self, x: np.ndarray) -> np.ndarray:
        n_classes = self.means_.shape[0]
        scores = np.zeros((x.shape[0], n_classes))
        for cls in range(n_classes):
            diff = x - self.means_[cls]
            log_like = -0.5 * (
                np.log(2.0 * np.pi * self.variances_[cls])
                + diff**2 / self.variances_[cls]
            )
            scores[:, cls] = self.log_priors_[cls] + log_like.sum(axis=1)
        return scores

    def predict_proba(self, features) -> np.ndarray:
        self._require_fitted()
        x = np.asarray(features, dtype=np.float64)
        scores = self._joint_log_likelihood(x)
        shifted = scores - scores.max(axis=1, keepdims=True)
        exps = np.exp(shifted)
        return exps / exps.sum(axis=1, keepdims=True)


class BernoulliNB(Classifier):
    """Bernoulli NB over median-binarised features with Laplace smoothing.

    Continuous inputs are binarised at the per-feature training median,
    the standard adaptation for real-valued data.
    """

    def __init__(self, alpha: float = 1.0):
        if alpha <= 0:
            raise ValidationError(f"alpha must be > 0, got {alpha}")
        self.alpha = alpha
        self.thresholds_ = None
        self.feature_log_prob_ = None
        self.feature_log_neg_ = None
        self.log_priors_ = None

    def _binarize(self, x: np.ndarray) -> np.ndarray:
        return (x > self.thresholds_).astype(np.float64)

    def fit(self, features, labels) -> "BernoulliNB":
        x, y = check_fit_inputs(features, labels)
        self.thresholds_ = np.median(x, axis=0)
        binary = self._binarize(x)
        n_classes = int(y.max()) + 1
        n_features = x.shape[1]
        log_prob = np.zeros((n_classes, n_features))
        log_neg = np.zeros((n_classes, n_features))
        priors = np.zeros(n_classes)
        for cls in range(n_classes):
            rows = binary[y == cls]
            count = len(rows)
            priors[cls] = count / len(x)
            ones = rows.sum(axis=0) if count else np.zeros(n_features)
            p = (ones + self.alpha) / (count + 2.0 * self.alpha)
            log_prob[cls] = np.log(p)
            log_neg[cls] = np.log(1.0 - p)
        self.feature_log_prob_ = log_prob
        self.feature_log_neg_ = log_neg
        with np.errstate(divide="ignore"):
            self.log_priors_ = np.where(priors > 0, np.log(priors), -np.inf)
        self.num_classes_ = n_classes
        return self

    def predict_proba(self, features) -> np.ndarray:
        self._require_fitted()
        x = np.asarray(features, dtype=np.float64)
        binary = self._binarize(x)
        scores = (
            binary @ self.feature_log_prob_.T
            + (1.0 - binary) @ self.feature_log_neg_.T
            + self.log_priors_
        )
        shifted = scores - scores.max(axis=1, keepdims=True)
        exps = np.exp(shifted)
        return exps / exps.sum(axis=1, keepdims=True)
