"""k-nearest-neighbour classification."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import Classifier, check_fit_inputs
from repro.ml.preprocessing import StandardScaler

__all__ = ["KNNClassifier"]


class KNNClassifier(Classifier):
    """Euclidean k-NN with optional inverse-distance weighting."""

    def __init__(self, k: int = 5, weighted: bool = False,
                 standardize: bool = True):
        if k <= 0:
            raise ValidationError(f"k must be > 0, got {k}")
        self.k = k
        self.weighted = weighted
        self.standardize = standardize
        self._scaler = StandardScaler()
        self._train_x = None
        self._train_y = None

    def fit(self, features, labels) -> "KNNClassifier":
        x, y = check_fit_inputs(features, labels)
        self._train_x = (
            self._scaler.fit_transform(x) if self.standardize else x
        )
        self._train_y = y
        self.num_classes_ = int(y.max()) + 1
        return self

    def predict_proba(self, features) -> np.ndarray:
        self._require_fitted()
        x = np.asarray(features, dtype=np.float64)
        if self.standardize:
            x = self._scaler.transform(x)
        k = min(self.k, len(self._train_x))
        # Pairwise squared distances, computed blockwise to bound memory.
        probabilities = np.zeros((x.shape[0], self.num_classes_))
        block = 256
        train_sq = (self._train_x**2).sum(axis=1)
        for start in range(0, x.shape[0], block):
            chunk = x[start : start + block]
            distances = (
                (chunk**2).sum(axis=1)[:, None]
                + train_sq[None, :]
                - 2.0 * chunk @ self._train_x.T
            )
            np.maximum(distances, 0.0, out=distances)
            nearest = np.argpartition(distances, k - 1, axis=1)[:, :k]
            for row in range(chunk.shape[0]):
                neighbor_labels = self._train_y[nearest[row]]
                if self.weighted:
                    weights = 1.0 / (
                        np.sqrt(distances[row, nearest[row]]) + 1e-12
                    )
                else:
                    weights = np.ones(k)
                votes = np.bincount(
                    neighbor_labels,
                    weights=weights,
                    minlength=self.num_classes_,
                )
                probabilities[start + row] = votes / votes.sum()
        return probabilities
