"""An sklearn-style MLP classifier over the repro.nn substrate.

Used as Table II's "MLP" baseline and as the ANN of the Lee et al.
comparison (Table IV).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import Classifier, check_fit_inputs
from repro.ml.preprocessing import StandardScaler
from repro.nn.inference import plan_call
from repro.nn.layers import MLP
from repro.nn.loss import cross_entropy
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import as_generator

__all__ = ["MLPClassifier"]


class MLPClassifier(Classifier):
    """Feed-forward network trained with Adam on cross-entropy."""

    def __init__(
        self,
        hidden_dims: Sequence[int] = (64, 32),
        epochs: int = 100,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        seed: int = 0,
        standardize: bool = True,
    ):
        if epochs <= 0 or batch_size <= 0:
            raise ValidationError("epochs and batch_size must be > 0")
        self.hidden_dims = list(hidden_dims)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self.standardize = standardize
        self._scaler = StandardScaler()
        self._model = None

    def fit(self, features, labels) -> "MLPClassifier":
        x, y = check_fit_inputs(features, labels)
        if self.standardize:
            x = self._scaler.fit_transform(x)
        n_classes = int(y.max()) + 1
        rng = as_generator(self.seed)
        self._model = MLP(
            [x.shape[1], *self.hidden_dims, n_classes], rng=rng
        )
        optimizer = Adam(self._model.parameters(), lr=self.learning_rate)
        indices = np.arange(len(x))
        for _ in range(self.epochs):
            rng.shuffle(indices)
            for start in range(0, len(indices), self.batch_size):
                chosen = indices[start : start + self.batch_size]
                logits = self._model(Tensor(x[chosen]))
                loss = cross_entropy(logits, y[chosen])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        self.num_classes_ = n_classes
        return self

    def predict_proba(self, features) -> np.ndarray:
        self._require_fitted()
        x = np.asarray(features, dtype=np.float64)
        if self.standardize:
            x = self._scaler.transform(x)
        self._model.eval()
        with no_grad():
            logits = plan_call(self._model, "forward", x)
            if logits is None:
                logits = self._model(Tensor(x)).data
        shifted = logits - logits.max(axis=1, keepdims=True)
        exps = np.exp(shifted)
        return exps / exps.sum(axis=1, keepdims=True)
