"""Feature preprocessing: standardisation."""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError, ValidationError

__all__ = ["StandardScaler"]


class StandardScaler:
    """Zero-mean / unit-variance scaling; constant columns pass through."""

    def __init__(self) -> None:
        self.mean_ = None
        self.scale_ = None

    def fit(self, features) -> "StandardScaler":
        """Learn per-column mean and standard deviation."""
        x = np.asarray(features, dtype=np.float64)
        if x.ndim != 2:
            raise ValidationError(f"X must be 2-D, got shape {x.shape}")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, features) -> np.ndarray:
        """Apply the learned scaling."""
        if self.mean_ is None:
            raise NotFittedError("StandardScaler must be fitted first")
        x = np.asarray(features, dtype=np.float64)
        return (x - self.mean_) / self.scale_

    def fit_transform(self, features) -> np.ndarray:
        """Fit then transform in one step."""
        return self.fit(features).transform(features)
