"""Decision trees: CART classification and regression trees.

Split search is exact: every feature's sorted column is scanned with
prefix-sum statistics (class counts for Gini, moments for variance), so
each node costs ``O(n_features · n log n)``.

The regression tree exposes leaf identifiers and re-assignable leaf
values — the hooks gradient boosting (:mod:`repro.ml.ensemble`) needs for
Friedman-style leaf updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import Classifier, check_fit_inputs
from repro.utils.rng import as_generator

__all__ = ["DecisionTreeClassifier", "RegressionTree"]


@dataclass
class _TreeNode:
    """Internal node (feature/threshold) or leaf (value, leaf_id)."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None
    value: Optional[np.ndarray] = None
    leaf_id: int = -1

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _resolve_max_features(max_features, n_features: int) -> int:
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if isinstance(max_features, (int, np.integer)) and max_features > 0:
        return min(int(max_features), n_features)
    raise ValidationError(f"invalid max_features: {max_features!r}")


class DecisionTreeClassifier(Classifier):
    """CART with Gini impurity."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        seed: int = 0,
    ):
        if min_samples_split < 2:
            raise ValidationError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValidationError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: Optional[_TreeNode] = None

    def fit(self, features, labels) -> "DecisionTreeClassifier":
        x, y = check_fit_inputs(features, labels)
        self.num_classes_ = int(y.max()) + 1
        self._rng = as_generator(self.seed)
        self._n_subset = _resolve_max_features(self.max_features, x.shape[1])
        self._root = self._build(x, y, depth=0)
        return self

    def _leaf(self, y: np.ndarray) -> _TreeNode:
        counts = np.bincount(y, minlength=self.num_classes_).astype(np.float64)
        return _TreeNode(value=counts / counts.sum())

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        n = len(y)
        if (
            n < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.unique(y).size == 1
        ):
            return self._leaf(y)
        split = self._best_split(x, y)
        if split is None:
            return self._leaf(y)
        feature, threshold = split
        mask = x[:, feature] <= threshold
        left = self._build(x[mask], y[mask], depth + 1)
        right = self._build(x[~mask], y[~mask], depth + 1)
        return _TreeNode(feature=feature, threshold=threshold, left=left, right=right)

    def _best_split(self, x: np.ndarray, y: np.ndarray):
        n, n_features = x.shape
        onehot = np.eye(self.num_classes_)[y]
        if self._n_subset < n_features:
            candidates = self._rng.choice(n_features, self._n_subset, replace=False)
        else:
            candidates = np.arange(n_features)
        best_gain = 1e-12
        best = None
        parent_counts = onehot.sum(axis=0)
        parent_gini = 1.0 - ((parent_counts / n) ** 2).sum()
        min_leaf = self.min_samples_leaf
        for feature in candidates:
            order = np.argsort(x[:, feature], kind="stable")
            values = x[order, feature]
            prefix = np.cumsum(onehot[order], axis=0)  # (n, C)
            left_n = np.arange(1, n)
            valid = values[1:] > values[:-1]
            if min_leaf > 1:
                valid &= (left_n >= min_leaf) & (n - left_n >= min_leaf)
            if not valid.any():
                continue
            left_counts = prefix[:-1]
            right_counts = parent_counts - left_counts
            left_gini = 1.0 - ((left_counts / left_n[:, None]) ** 2).sum(axis=1)
            right_n = n - left_n
            right_gini = 1.0 - ((right_counts / right_n[:, None]) ** 2).sum(axis=1)
            weighted = (left_n * left_gini + right_n * right_gini) / n
            gains = np.where(valid, parent_gini - weighted, -np.inf)
            index = int(np.argmax(gains))
            if gains[index] > best_gain:
                best_gain = float(gains[index])
                threshold = 0.5 * (values[index] + values[index + 1])
                best = (int(feature), float(threshold))
        return best

    def predict_proba(self, features) -> np.ndarray:
        self._require_fitted()
        x = np.asarray(features, dtype=np.float64)
        output = np.zeros((x.shape[0], self.num_classes_))
        for row in range(x.shape[0]):
            node = self._root
            while not node.is_leaf:
                if x[row, node.feature] <= node.threshold:
                    node = node.left
                else:
                    node = node.right
            output[row] = node.value
        return output

    def depth(self) -> int:
        """Maximum depth of the fitted tree."""
        self._require_fitted()

        def walk(node: _TreeNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)


class RegressionTree:
    """CART regression tree (variance reduction) with leaf re-assignment."""

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        seed: int = 0,
    ):
        if max_depth < 1:
            raise ValidationError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: Optional[_TreeNode] = None
        self._leaf_count = 0

    @property
    def num_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        return self._leaf_count

    def fit(self, features, targets) -> "RegressionTree":
        """Fit the tree to real-valued targets; returns self."""
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise ValidationError("RegressionTree needs X (n, d) and y (n,)")
        self._rng = as_generator(self.seed)
        self._n_subset = _resolve_max_features(self.max_features, x.shape[1])
        self._leaf_count = 0
        self._root = self._build(x, y, depth=0)
        return self

    def _leaf(self, y: np.ndarray) -> _TreeNode:
        node = _TreeNode(
            value=np.array([y.mean() if len(y) else 0.0]),
            leaf_id=self._leaf_count,
        )
        self._leaf_count += 1
        return node

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        n = len(y)
        if n < self.min_samples_split or depth >= self.max_depth:
            return self._leaf(y)
        split = self._best_split(x, y)
        if split is None:
            return self._leaf(y)
        feature, threshold = split
        mask = x[:, feature] <= threshold
        left = self._build(x[mask], y[mask], depth + 1)
        right = self._build(x[~mask], y[~mask], depth + 1)
        return _TreeNode(feature=feature, threshold=threshold, left=left, right=right)

    def _best_split(self, x: np.ndarray, y: np.ndarray):
        n, n_features = x.shape
        if self._n_subset < n_features:
            candidates = self._rng.choice(n_features, self._n_subset, replace=False)
        else:
            candidates = np.arange(n_features)
        total_sum = y.sum()
        best_score = -np.inf
        best = None
        min_leaf = self.min_samples_leaf
        for feature in candidates:
            order = np.argsort(x[:, feature], kind="stable")
            values = x[order, feature]
            prefix = np.cumsum(y[order])
            left_n = np.arange(1, n)
            valid = values[1:] > values[:-1]
            if min_leaf > 1:
                valid &= (left_n >= min_leaf) & (n - left_n >= min_leaf)
            if not valid.any():
                continue
            left_sum = prefix[:-1]
            right_sum = total_sum - left_sum
            right_n = n - left_n
            # Variance reduction ∝ SL²/nL + SR²/nR (constant terms dropped).
            scores = np.where(
                valid, left_sum**2 / left_n + right_sum**2 / right_n, -np.inf
            )
            index = int(np.argmax(scores))
            if scores[index] > best_score:
                best_score = float(scores[index])
                threshold = 0.5 * (values[index] + values[index + 1])
                best = (int(feature), float(threshold))
        return best

    def apply(self, features) -> np.ndarray:
        """Leaf id per sample."""
        x = np.asarray(features, dtype=np.float64)
        leaves = np.zeros(x.shape[0], dtype=np.int64)
        for row in range(x.shape[0]):
            node = self._root
            while not node.is_leaf:
                if x[row, node.feature] <= node.threshold:
                    node = node.left
                else:
                    node = node.right
            leaves[row] = node.leaf_id
        return leaves

    def predict(self, features) -> np.ndarray:
        """Leaf value per sample."""
        x = np.asarray(features, dtype=np.float64)
        output = np.zeros(x.shape[0])
        for row in range(x.shape[0]):
            node = self._root
            while not node.is_leaf:
                if x[row, node.feature] <= node.threshold:
                    node = node.left
                else:
                    node = node.right
            output[row] = node.value[0]
        return output

    def set_leaf_values(self, values: Dict[int, float]) -> None:
        """Overwrite leaf outputs (gradient-boosting leaf updates)."""

        def walk(node: _TreeNode) -> None:
            if node.is_leaf:
                if node.leaf_id in values:
                    node.value = np.array([values[node.leaf_id]])
                return
            walk(node.left)
            walk(node.right)

        walk(self._root)
