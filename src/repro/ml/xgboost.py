"""Second-order gradient boosting ("XGBoost-style"), from scratch.

Implements the regularised Newton boosting of Chen & Guestrin (2016):
per-class trees grown on gradient/hessian statistics of the softmax
objective, split gain

``½·[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ``

and leaf weight ``−G/(H+λ)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import Classifier, check_fit_inputs, softmax_rows
from repro.utils.rng import as_generator

__all__ = ["XGBoostClassifier"]


@dataclass
class _XGBNode:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_XGBNode"] = None
    right: Optional["_XGBNode"] = None
    weight: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class _XGBTree:
    """One regularised tree grown on (g, h) statistics."""

    def __init__(
        self,
        max_depth: int,
        reg_lambda: float,
        gamma: float,
        min_child_weight: float,
        colsample: float,
        rng: np.random.Generator,
    ):
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.min_child_weight = min_child_weight
        self.colsample = colsample
        self.rng = rng
        self.root: Optional[_XGBNode] = None

    def fit(self, x: np.ndarray, g: np.ndarray, h: np.ndarray) -> "_XGBTree":
        self.root = self._build(x, g, h, depth=0)
        return self

    def _leaf(self, g: np.ndarray, h: np.ndarray) -> _XGBNode:
        weight = -g.sum() / (h.sum() + self.reg_lambda)
        return _XGBNode(weight=float(weight))

    def _build(
        self, x: np.ndarray, g: np.ndarray, h: np.ndarray, depth: int
    ) -> _XGBNode:
        if depth >= self.max_depth or len(g) < 2:
            return self._leaf(g, h)
        split = self._best_split(x, g, h)
        if split is None:
            return self._leaf(g, h)
        feature, threshold = split
        mask = x[:, feature] <= threshold
        left = self._build(x[mask], g[mask], h[mask], depth + 1)
        right = self._build(x[~mask], g[~mask], h[~mask], depth + 1)
        return _XGBNode(feature=feature, threshold=threshold, left=left, right=right)

    def _best_split(self, x: np.ndarray, g: np.ndarray, h: np.ndarray):
        n, n_features = x.shape
        total_g, total_h = g.sum(), h.sum()
        parent_score = total_g**2 / (total_h + self.reg_lambda)
        subset = max(1, int(n_features * self.colsample))
        if subset < n_features:
            candidates = self.rng.choice(n_features, subset, replace=False)
        else:
            candidates = np.arange(n_features)
        best_gain = 0.0
        best = None
        for feature in candidates:
            order = np.argsort(x[:, feature], kind="stable")
            values = x[order, feature]
            g_prefix = np.cumsum(g[order])[:-1]
            h_prefix = np.cumsum(h[order])[:-1]
            valid = values[1:] > values[:-1]
            valid &= h_prefix >= self.min_child_weight
            valid &= (total_h - h_prefix) >= self.min_child_weight
            if not valid.any():
                continue
            left_score = g_prefix**2 / (h_prefix + self.reg_lambda)
            right_score = (total_g - g_prefix) ** 2 / (
                total_h - h_prefix + self.reg_lambda
            )
            gains = np.where(
                valid,
                0.5 * (left_score + right_score - parent_score) - self.gamma,
                -np.inf,
            )
            index = int(np.argmax(gains))
            if gains[index] > best_gain:
                best_gain = float(gains[index])
                best = (int(feature), 0.5 * float(values[index] + values[index + 1]))
        return best

    def predict(self, x: np.ndarray) -> np.ndarray:
        output = np.zeros(x.shape[0])
        for row in range(x.shape[0]):
            node = self.root
            while not node.is_leaf:
                if x[row, node.feature] <= node.threshold:
                    node = node.left
                else:
                    node = node.right
            output[row] = node.weight
        return output


class XGBoostClassifier(Classifier):
    """Multiclass Newton-boosted trees with L2 leaf regularisation."""

    def __init__(
        self,
        n_estimators: int = 60,
        learning_rate: float = 0.3,
        max_depth: int = 4,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        min_child_weight: float = 1e-3,
        subsample: float = 1.0,
        colsample: float = 1.0,
        seed: int = 0,
    ):
        if n_estimators <= 0:
            raise ValidationError(f"n_estimators must be > 0, got {n_estimators}")
        if reg_lambda < 0:
            raise ValidationError(f"reg_lambda must be >= 0, got {reg_lambda}")
        if not 0.0 < subsample <= 1.0 or not 0.0 < colsample <= 1.0:
            raise ValidationError("subsample/colsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.min_child_weight = min_child_weight
        self.subsample = subsample
        self.colsample = colsample
        self.seed = seed
        self.rounds_: List[List[_XGBTree]] = []

    def fit(self, features, labels) -> "XGBoostClassifier":
        x, y = check_fit_inputs(features, labels)
        n = x.shape[0]
        n_classes = int(y.max()) + 1
        self.num_classes_ = n_classes
        rng = as_generator(self.seed)
        onehot = np.eye(n_classes)[y]
        scores = np.zeros((n, n_classes))
        self.rounds_ = []
        for _ in range(self.n_estimators):
            probabilities = softmax_rows(scores)
            gradients = probabilities - onehot
            hessians = probabilities * (1.0 - probabilities)
            if self.subsample < 1.0:
                chosen = rng.random(n) < self.subsample
                if not chosen.any():
                    chosen[rng.integers(n)] = True
            else:
                chosen = np.ones(n, dtype=bool)
            round_trees: List[_XGBTree] = []
            for cls in range(n_classes):
                tree = _XGBTree(
                    max_depth=self.max_depth,
                    reg_lambda=self.reg_lambda,
                    gamma=self.gamma,
                    min_child_weight=self.min_child_weight,
                    colsample=self.colsample,
                    rng=rng,
                )
                tree.fit(x[chosen], gradients[chosen, cls], hessians[chosen, cls])
                scores[:, cls] += self.learning_rate * tree.predict(x)
                round_trees.append(tree)
            self.rounds_.append(round_trees)
        return self

    def decision_function(self, features) -> np.ndarray:
        """Raw additive scores."""
        self._require_fitted()
        x = np.asarray(features, dtype=np.float64)
        scores = np.zeros((x.shape[0], self.num_classes_))
        for round_trees in self.rounds_:
            for cls, tree in enumerate(round_trees):
                scores[:, cls] += self.learning_rate * tree.predict(x)
        return scores

    def predict_proba(self, features) -> np.ndarray:
        return softmax_rows(self.decision_function(features))
