"""Neural substrate: numpy autograd, layers, RNNs, attention, optimisers.

The reproduction's stand-in for PyTorch — a reverse-mode autodiff engine
(:mod:`repro.nn.tensor`, :mod:`repro.nn.functional`) with the layer zoo
the paper's models need: Linear/MLP, LSTM/BiLSTM (Eq. 16–21), attention
pooling, cross-entropy, SGD and Adam.
"""

from repro.nn import functional, inference
from repro.nn.attention import AttentionPooling
from repro.nn.init import kaiming_uniform, xavier_normal, xavier_uniform, zeros
from repro.nn.layers import MLP, Activation, Dropout, LayerNorm, Linear, Sequential
from repro.nn.loss import cross_entropy, mse_loss, nll_loss
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.rnn import BiLSTM, LSTM, LSTMCell
from repro.nn.serialize import load_module, save_module
from repro.nn.tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "functional",
    "inference",
    "AttentionPooling",
    "kaiming_uniform",
    "xavier_normal",
    "xavier_uniform",
    "zeros",
    "MLP",
    "Activation",
    "Dropout",
    "LayerNorm",
    "Linear",
    "Sequential",
    "cross_entropy",
    "mse_loss",
    "nll_loss",
    "Module",
    "Parameter",
    "SGD",
    "Adam",
    "Optimizer",
    "BiLSTM",
    "LSTM",
    "LSTMCell",
    "load_module",
    "save_module",
    "Tensor",
    "as_tensor",
    "is_grad_enabled",
    "no_grad",
]
