"""Additive attention pooling over masked sequences.

Used by the Table III "Attention+MLP" head: a learned query scores each
timestep (``score_t = vᵀ tanh(W h_t)``), masked softmax turns scores into
weights, and the pooled vector is the weighted sum of timesteps.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ValidationError
from repro.nn import functional as F
from repro.nn.init import xavier_uniform
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["AttentionPooling"]

_MASK_OFFSET = 1e9


class AttentionPooling(Module):
    """Learned softmax pooling of a ``(B, T, D)`` sequence to ``(B, D)``."""

    def __init__(
        self,
        input_dim: int,
        attention_dim: int = 32,
        rng: "int | np.random.Generator | None" = None,
    ):
        super().__init__()
        if input_dim <= 0 or attention_dim <= 0:
            raise ValidationError(
                f"attention dims must be positive, got ({input_dim}, {attention_dim})"
            )
        from repro.utils.rng import as_generator

        generator = as_generator(rng)
        self.input_dim = input_dim
        self.attention_dim = attention_dim
        self.projection = Parameter(
            xavier_uniform((input_dim, attention_dim), generator)
        )
        self.query = Parameter(xavier_uniform((attention_dim, 1), generator))

    def forward(
        self, x: Tensor, mask: Optional[np.ndarray] = None
    ) -> Tensor:
        """Pool ``x`` (B, T, D) to (B, D); masked steps get zero weight."""
        if x.ndim != 3:
            raise ValidationError(f"attention input must be (B, T, D), got {x.shape}")
        batch, steps, dim = x.shape
        flat = F.reshape(x, (batch * steps, dim))
        hidden = F.tanh(F.matmul(flat, self.projection))
        scores = F.reshape(F.matmul(hidden, self.query), (batch, steps))
        if mask is not None:
            mask = np.asarray(mask, dtype=np.float64)
            if mask.shape != (batch, steps):
                raise ValidationError(
                    f"mask shape {mask.shape} does not match {(batch, steps)}"
                )
            scores = F.add(scores, Tensor((mask - 1.0) * _MASK_OFFSET))
        weights = F.softmax(scores, axis=1)
        weighted = F.multiply(x, F.reshape(weights, (batch, steps, 1)))
        return F.sum(weighted, axis=1)
