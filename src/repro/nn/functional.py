"""Differentiable operations over :class:`~repro.nn.tensor.Tensor`.

Every op computes its forward result eagerly and, when the tape is
enabled, registers a closure that routes the output gradient to each
parent.  All gradients are verified against central finite differences in
``tests/test_autograd.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.errors import AutogradError
from repro.nn.tensor import Tensor, as_tensor, is_grad_enabled, unbroadcast

__all__ = [
    "add",
    "multiply",
    "divide",
    "negate",
    "power",
    "matmul",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "sigmoid",
    "relu",
    "leaky_relu",
    "sum",
    "mean",
    "max",
    "reshape",
    "transpose",
    "take",
    "concatenate",
    "stack",
    "softmax",
    "log_softmax",
    "spmm",
    "segment_sum",
    "segment_sum_raw",
    "dropout",
]


def _build(data: np.ndarray, parents: Sequence[Tensor], grad_fns) -> Tensor:
    """Create an output tensor, wiring backward closures to ``parents``."""
    tracked = [p for p in parents if p.requires_grad]
    if not is_grad_enabled() or not tracked:
        return Tensor(data)

    pairs = [
        (parent, fn) for parent, fn in zip(parents, grad_fns) if parent.requires_grad
    ]

    def backward(grad: np.ndarray) -> None:
        for parent, fn in pairs:
            contribution = fn(grad)
            if contribution is not None:
                parent.accumulate_grad(contribution)

    return Tensor(
        data, requires_grad=True, _parents=tuple(tracked), _backward=backward
    )


# --------------------------------------------------------------------- #
# Elementwise arithmetic
# --------------------------------------------------------------------- #


def add(a, b) -> Tensor:
    """Broadcasting elementwise addition."""
    a, b = as_tensor(a), as_tensor(b)
    return _build(
        a.data + b.data,
        (a, b),
        (
            lambda g: unbroadcast(g, a.data.shape),
            lambda g: unbroadcast(g, b.data.shape),
        ),
    )


def multiply(a, b) -> Tensor:
    """Broadcasting elementwise multiplication."""
    a, b = as_tensor(a), as_tensor(b)
    return _build(
        a.data * b.data,
        (a, b),
        (
            lambda g: unbroadcast(g * b.data, a.data.shape),
            lambda g: unbroadcast(g * a.data, b.data.shape),
        ),
    )


def divide(a, b) -> Tensor:
    """Broadcasting elementwise division."""
    a, b = as_tensor(a), as_tensor(b)
    return _build(
        a.data / b.data,
        (a, b),
        (
            lambda g: unbroadcast(g / b.data, a.data.shape),
            lambda g: unbroadcast(-g * a.data / (b.data**2), b.data.shape),
        ),
    )


def negate(a) -> Tensor:
    """Elementwise negation."""
    a = as_tensor(a)
    return _build(-a.data, (a,), (lambda g: -g,))


def power(a, exponent: float) -> Tensor:
    """Elementwise power with a constant scalar exponent."""
    a = as_tensor(a)
    if not np.isscalar(exponent):
        raise AutogradError("power() supports scalar exponents only")
    exponent = float(exponent)
    return _build(
        a.data**exponent,
        (a,),
        (lambda g: g * exponent * np.power(a.data, exponent - 1.0),),
    )


# --------------------------------------------------------------------- #
# Linear algebra
# --------------------------------------------------------------------- #


def matmul(a, b) -> Tensor:
    """Matrix product of two 2-D tensors."""
    a, b = as_tensor(a), as_tensor(b)
    if a.ndim != 2 or b.ndim != 2:
        raise AutogradError(
            f"matmul requires 2-D operands, got {a.shape} @ {b.shape}"
        )
    return _build(
        a.data @ b.data,
        (a, b),
        (lambda g: g @ b.data.T, lambda g: a.data.T @ g),
    )


def spmm(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Sparse-constant × dense-tensor product (for Ã·X in GNN layers).

    The sparse ``matrix`` is a constant of the graph; gradients flow only
    to ``x``: ``∂/∂x (A x) = Aᵀ g``.
    """
    x = as_tensor(x)
    if x.ndim != 2 or matrix.shape[1] != x.shape[0]:
        raise AutogradError(
            f"spmm shape mismatch: {matrix.shape} @ {x.shape}"
        )
    csr = matrix.tocsr()
    return _build(
        np.asarray(csr @ x.data),
        (x,),
        (lambda g: np.asarray(csr.T @ g),),
    )


# --------------------------------------------------------------------- #
# Elementwise nonlinearities
# --------------------------------------------------------------------- #


def exp(a) -> Tensor:
    """Elementwise exponential."""
    a = as_tensor(a)
    out_data = np.exp(a.data)
    return _build(out_data, (a,), (lambda g: g * out_data,))


def log(a) -> Tensor:
    """Elementwise natural logarithm."""
    a = as_tensor(a)
    return _build(np.log(a.data), (a,), (lambda g: g / a.data,))


def sqrt(a) -> Tensor:
    """Elementwise square root."""
    a = as_tensor(a)
    out_data = np.sqrt(a.data)
    return _build(out_data, (a,), (lambda g: g * 0.5 / out_data,))


def tanh(a) -> Tensor:
    """Elementwise hyperbolic tangent."""
    a = as_tensor(a)
    out_data = np.tanh(a.data)
    return _build(out_data, (a,), (lambda g: g * (1.0 - out_data**2),))


def sigmoid(a) -> Tensor:
    """Numerically-stable elementwise logistic sigmoid.

    Inputs are clipped to ±40 before exponentiation; the sigmoid is
    saturated to double precision well inside that range.
    """
    a = as_tensor(a)
    clipped = np.clip(a.data, -40.0, 40.0)
    out_data = 1.0 / (1.0 + np.exp(-clipped))
    return _build(out_data, (a,), (lambda g: g * out_data * (1.0 - out_data),))


def relu(a) -> Tensor:
    """Elementwise rectifier max(x, 0)."""
    a = as_tensor(a)
    mask = a.data > 0
    return _build(a.data * mask, (a,), (lambda g: g * mask,))


def leaky_relu(a, negative_slope: float = 0.01) -> Tensor:
    """Leaky rectifier: x for x>0, slope·x otherwise."""
    a = as_tensor(a)
    mask = a.data > 0
    scale = np.where(mask, 1.0, negative_slope)
    return _build(a.data * scale, (a,), (lambda g: g * scale,))


# --------------------------------------------------------------------- #
# Reductions
# --------------------------------------------------------------------- #


def _expand_reduced(grad: np.ndarray, shape, axis, keepdims: bool) -> np.ndarray:
    if axis is None:
        return np.broadcast_to(grad, shape).copy()
    if not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        for ax in sorted(a % len(shape) for a in axes):
            grad = np.expand_dims(grad, ax)
    return np.broadcast_to(grad, shape).copy()


def sum(a, axis=None, keepdims: bool = False) -> Tensor:
    """Sum over ``axis`` (all elements when None)."""
    a = as_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)
    return _build(
        out_data,
        (a,),
        (lambda g: _expand_reduced(g, a.data.shape, axis, keepdims),),
    )


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    """Arithmetic mean over ``axis``."""
    a = as_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    count = a.data.size if axis is None else _axis_count(a.data.shape, axis)
    return _build(
        out_data,
        (a,),
        (lambda g: _expand_reduced(g, a.data.shape, axis, keepdims) / count,),
    )


def _axis_count(shape, axis) -> float:
    axes = axis if isinstance(axis, tuple) else (axis,)
    count = 1
    for ax in axes:
        count *= shape[ax % len(shape)]
    return float(count)


def max(a, axis=None, keepdims: bool = False) -> Tensor:
    """Maximum over ``axis``; ties split the gradient evenly."""
    a = as_tensor(a)
    out_data = a.data.max(axis=axis, keepdims=keepdims)

    def backward(g: np.ndarray) -> np.ndarray:
        expanded_out = _expand_reduced(
            np.asarray(out_data), a.data.shape, axis, keepdims
        )
        mask = (a.data == expanded_out).astype(np.float64)
        counts = mask.sum(axis=axis, keepdims=True)
        expanded_grad = _expand_reduced(g, a.data.shape, axis, keepdims)
        return expanded_grad * mask / counts

    return _build(out_data, (a,), (backward,))


# --------------------------------------------------------------------- #
# Shape manipulation
# --------------------------------------------------------------------- #


def reshape(a, shape: Tuple[int, ...]) -> Tensor:
    """Reshape (view semantics forward, dense gradient back)."""
    a = as_tensor(a)
    return _build(
        a.data.reshape(shape), (a,), (lambda g: g.reshape(a.data.shape),)
    )


def transpose(a, axes: Optional[Sequence[int]] = None) -> Tensor:
    """Permute dimensions (reverses them when ``axes`` is None)."""
    a = as_tensor(a)
    if axes is None:
        inverse = None
    else:
        axes = tuple(axes)
        inverse = tuple(np.argsort(axes))
    return _build(
        a.data.transpose(axes),
        (a,),
        (lambda g: g.transpose(inverse) if inverse is not None else g.transpose(),),
    )


def take(a, key) -> Tensor:
    """Indexing/slicing; gradients scatter-add back into the source."""
    a = as_tensor(a)
    out_data = a.data[key]

    def backward(g: np.ndarray) -> np.ndarray:
        full = np.zeros_like(a.data)
        np.add.at(full, key, g)
        return full

    return _build(out_data, (a,), (backward,))


def concatenate(tensors: Sequence, axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    if not tensors:
        raise AutogradError("concatenate requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def make_fn(index: int):
        start, stop = offsets[index], offsets[index + 1]

        def backward(g: np.ndarray) -> np.ndarray:
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(start, stop)
            return g[tuple(slicer)]

        return backward

    return _build(out_data, tensors, [make_fn(i) for i in range(len(tensors))])


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    if not tensors:
        raise AutogradError("stack requires at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def make_fn(index: int):
        def backward(g: np.ndarray) -> np.ndarray:
            return np.take(g, index, axis=axis)

        return backward

    return _build(out_data, tensors, [make_fn(i) for i in range(len(tensors))])


# --------------------------------------------------------------------- #
# Softmax family
# --------------------------------------------------------------------- #


def softmax(a, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (stable via max subtraction)."""
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray) -> np.ndarray:
        inner = (g * out_data).sum(axis=axis, keepdims=True)
        return out_data * (g - inner)

    return _build(out_data, (a,), (backward,))


def log_softmax(a, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (stable log-sum-exp)."""
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)

    def backward(g: np.ndarray) -> np.ndarray:
        return g - soft * g.sum(axis=axis, keepdims=True)

    return _build(out_data, (a,), (backward,))


# --------------------------------------------------------------------- #
# Graph / batching utilities
# --------------------------------------------------------------------- #


def segment_sum_raw(
    out: np.ndarray, x: np.ndarray, segment_ids: np.ndarray
) -> np.ndarray:
    """Forward kernel behind :func:`segment_sum`, shared with plans.

    Both the tape op and the compiled-plan kernel call this one routine,
    which is what keeps the two execution paths bit-identical: the
    sorted/fallback branch below is decided from the data, so identical
    inputs take identical code paths on either side.

    When the ids are sorted with no empty segment — always true for the
    block-diagonal graph packs, where ids are ``repeat(arange, counts)``
    — the sum is one ``np.add.reduceat`` call, an order of magnitude
    faster than ``np.add.at``'s per-row scatter.  Summing rows along
    axis 0 of a 2-D array accumulates row-by-row in both forms (numpy's
    pairwise summation only applies to fast-axis reductions), so the
    two branches agree bitwise; ``tests/test_inference_engine.py`` and
    the readout parity suites pin that equivalence.
    """
    num_segments = out.shape[0]
    if x.shape[0] and num_segments:
        counts = np.bincount(segment_ids, minlength=num_segments)
        if counts.shape[0] == num_segments and counts.all() and bool(
            (segment_ids[1:] >= segment_ids[:-1]).all()
        ):
            starts = np.zeros(num_segments, dtype=np.intp)
            np.cumsum(counts[:-1], out=starts[1:])
            np.add.reduceat(x, starts, axis=0, out=out)
            return out
    out.fill(0.0)
    np.add.at(out, segment_ids, x)
    return out


def segment_sum(x, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets (graph readout).

    ``segment_ids`` maps each row of ``x`` to its output bucket; the
    backward pass gathers the bucket gradient back to each row.
    """
    x = as_tensor(x)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if x.ndim != 2 or segment_ids.shape != (x.shape[0],):
        raise AutogradError(
            f"segment_sum expects x (N, D) and ids (N,), got "
            f"{x.shape} and {segment_ids.shape}"
        )
    if segment_ids.size and (
        segment_ids.min() < 0 or segment_ids.max() >= num_segments
    ):
        raise AutogradError("segment ids out of range")
    out_data = np.empty((num_segments, x.shape[1]), dtype=np.float64)
    segment_sum_raw(out_data, x.data, segment_ids)
    return _build(out_data, (x,), (lambda g: g[segment_ids],))


def dropout(
    x,
    p: float,
    rng: np.random.Generator,
    training: bool = True,
) -> Tensor:
    """Inverted dropout: zero with probability ``p``, scale by 1/(1−p)."""
    x = as_tensor(x)
    if not 0.0 <= p < 1.0:
        raise AutogradError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    keep = (rng.random(x.data.shape) >= p) / (1.0 - p)
    return _build(x.data * keep, (x,), (lambda g: g * keep,))
