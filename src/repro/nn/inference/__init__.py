"""Tapeless inference engine: compiled forward plans for ``Module``.

Serving-path forwards spend most of their time allocating ``Tensor``
wrappers and fresh float64 arrays per op, even under ``no_grad()``.
This subsystem compiles a module's forward into a :class:`ForwardPlan`
— a flat sequence of raw-ndarray kernels executing into a preallocated
:class:`BufferArena` — so repeated calls with the same shape signature
are steady-state zero-allocation, while producing values bit-identical
to the tape path.

Typical use is indirect: ``GraphClassifier.embed_graphs``,
``predict_proba_sequences`` and ``MLPClassifier.predict_proba`` call
:func:`plan_call` and fall back to the tape when it returns ``None``.
``plan_execution(False)`` pins a context to the tape path (used by the
serving benchmark to time both).  Plans are invalidated automatically
when optimizer steps or ``load_state_dict`` bump the parameter version
counters.
"""

from repro.nn.inference.arena import BufferArena
from repro.nn.inference.engine import (
    UnsupportedLowering,
    clear_plans,
    get_lowering,
    plan_call,
    plan_execution,
    plan_stats,
    plans_enabled,
    register_lowering,
    registered_lowerings,
    staging_input,
)
from repro.nn.inference.kernels import ObjectSlot
from repro.nn.inference.plan import ForwardPlan, PlanBuilder
from repro.nn.inference import lowerings  # noqa: F401  (registers core lowerings)
from repro.nn.inference.lowerings import emit, register_emitter

__all__ = [
    "BufferArena",
    "ForwardPlan",
    "PlanBuilder",
    "ObjectSlot",
    "UnsupportedLowering",
    "plan_call",
    "plan_execution",
    "plans_enabled",
    "clear_plans",
    "plan_stats",
    "register_lowering",
    "get_lowering",
    "registered_lowerings",
    "register_emitter",
    "emit",
    "staging_input",
]
