"""Preallocated buffer pool backing compiled forward plans.

Plans execute kernels into arena-owned ndarrays, so a steady-state
forward performs no allocation at all.  Buffers are pooled per
``(dtype, trailing shape)`` with the leading dimension bucketed up to
the next power of two: a plan compiled for batch 17 and one for batch 23
share the same capacity-32 backing array, sliced to their own length.

Sharing is safe because plans of one module run serialized (the engine
holds a per-module lock) and every pooled buffer is written before it is
read within a single plan execution.  Buffers whose *initial* contents
matter (e.g. LSTM ``h0 = 0``) must live outside the arena as plan-owned
constants — see :meth:`PlanBuilder.const`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

__all__ = ["BufferArena"]


def _bucket(n: int) -> int:
    """Smallest power of two >= ``n`` (minimum 1)."""
    return 1 << max(0, int(n) - 1).bit_length() if n > 1 else 1


class BufferArena:
    """Pool of reusable ndarrays keyed by dtype and trailing shape.

    One arena belongs to one module's plan state.  Compilation calls
    :meth:`begin` once, then :meth:`take` per buffer; the i-th request
    for a given key always maps to the i-th pooled array, so buffers
    within one plan never alias each other while plans compiled later
    reuse the same storage.
    """

    def __init__(self) -> None:
        self._pools: Dict[Tuple[str, Tuple[int, ...]], List[np.ndarray]] = {}
        self._cursor: Dict[Tuple[str, Tuple[int, ...]], int] = {}

    def begin(self) -> None:
        """Start a compile session: reset the per-key allocation cursors."""
        self._cursor = {}

    def take(self, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A pooled buffer of exactly ``shape`` (a view of a bucketed array).

        The backing array's leading dimension is grown to the next power
        of two when the current pooled array is too small; existing plans
        keep their (still valid) views of the old array.
        """
        dtype = np.dtype(dtype)
        shape = tuple(int(s) for s in shape)
        lead = shape[0] if shape else 1
        tail = shape[1:] if shape else ()
        key = (dtype.str, tail)
        index = self._cursor.get(key, 0)
        self._cursor[key] = index + 1
        pool = self._pools.setdefault(key, [])
        if index == len(pool):
            pool.append(np.empty((_bucket(lead),) + tail, dtype))
        elif pool[index].shape[0] < lead:
            pool[index] = np.empty((_bucket(lead),) + tail, dtype)
        view = pool[index][:lead]
        return view if shape else view.reshape(())

    def allocated_bytes(self) -> int:
        """Total bytes currently held by the pool (diagnostics)."""
        return sum(
            arr.nbytes for pool in self._pools.values() for arr in pool
        )
