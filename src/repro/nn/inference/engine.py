"""Plan compilation/caching engine behind the ``Module`` API.

Entry point is :func:`plan_call`: given a module, a method name and the
method's normal arguments, it returns the raw ndarray result computed by
a compiled :class:`~repro.nn.inference.plan.ForwardPlan` — or ``None``
when no plan applies (no registered lowering, training mode, plans
disabled), in which case the caller falls back to the ordinary tape
forward.  Fallback is always sound because plans are bit-identical to
the tape by construction.

Lowerings are registered per ``(module class, method)`` with two
callables:

- ``prepare(module, args)`` runs on *every* call and extracts the flat
  per-call state: ``(arrays, objects, extras)``.  Array shapes/dtypes
  plus ``extras`` form the plan signature.
- ``build(module, builder, views, objects, extras)`` runs only on a
  signature miss and emits the kernel steps.

Plans are cached per module per signature (small LRU), guarded by each
referenced parameter's ``plan_version``, and executed under a
per-module lock so concurrent scorer threads cannot interleave writes
into the shared buffer arena.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Dict, Iterator, NamedTuple, Optional, Tuple, Type

import numpy as np

from repro import obs
from repro.nn.inference.arena import BufferArena, _bucket
from repro.nn.inference.plan import ForwardPlan, PlanBuilder
from repro.nn.module import Module

__all__ = [
    "UnsupportedLowering",
    "register_lowering",
    "get_lowering",
    "registered_lowerings",
    "plan_call",
    "plan_execution",
    "plans_enabled",
    "clear_plans",
    "plan_stats",
    "staging_input",
]


# Registry handles for the plan cache (see repro.obs): compile/hit
# counters aggregate across every planned module, and the arena gauge
# tracks total plan-arena bytes via per-compile deltas.
_PLAN_COMPILES = obs.counter("plan_compiles_total")
_PLAN_HITS = obs.counter("plan_hits_total")
_PLAN_ARENA_BYTES = obs.gauge("plan_arena_bytes")


class UnsupportedLowering(Exception):
    """Raised by a ``build`` that meets a module it cannot lower.

    The engine treats the signature as unplannable (negative-cached) and
    the caller falls back to the tape path.
    """

# Context-local like the grad flag: a benchmark or test can pin one
# thread/task to the tape path without affecting concurrent scorers.
_PLANS_ENABLED: ContextVar[bool] = ContextVar("plans_enabled", default=True)

# Plans are cheap to retain: their buffers live in the shared bucketed
# arena, so cached plans cost step lists, not storage.  Per-request
# serving produces one signature per distinct batch geometry (e.g. one
# per address node count), so the cache must comfortably exceed the
# working set of a shard — too small and the hot path recompiles
# every call.
_PLAN_CACHE_SIZE = 128

# Exact-shape staging views kept per module; backing arrays are bucketed
# like the arena, so this bounds view bookkeeping, not raw memory.
_STAGING_CACHE_SIZE = 256


class Lowering(NamedTuple):
    """A registered (prepare, build) pair for one module method."""

    prepare: Callable
    build: Callable


_LOWERINGS: Dict[Tuple[Type[Module], str], Lowering] = {}


def register_lowering(cls: Type[Module], method: str = "forward", *, prepare):
    """Decorator registering a plan lowering for ``cls.method``.

    ``prepare(module, args) -> (arrays, objects, extras) | None`` runs
    per call (returning ``None`` opts out, falling back to the tape);
    the decorated ``build(module, builder, views, objects, extras)``
    emits the plan and returns the output view(s).
    """

    def decorator(build: Callable) -> Callable:
        _LOWERINGS[(cls, method)] = Lowering(prepare, build)
        return build

    return decorator


def get_lowering(cls: Type[Module], method: str = "forward") -> Optional[Lowering]:
    """The lowering registered for exactly ``(cls, method)``, if any."""
    return _LOWERINGS.get((cls, method))


def registered_lowerings() -> Tuple[Tuple[Type[Module], str], ...]:
    """All ``(class, method)`` pairs with a registered lowering."""
    return tuple(_LOWERINGS)


@contextmanager
def plan_execution(enabled: bool) -> Iterator[None]:
    """Context manager enabling/disabling plan execution in this context.

    ``plan_execution(False)`` forces every :func:`plan_call` to return
    ``None`` so callers take the tape path — used by the serving
    benchmark to time the two paths over identical inputs.
    """
    token = _PLANS_ENABLED.set(bool(enabled))
    try:
        yield
    finally:
        _PLANS_ENABLED.reset(token)


def plans_enabled() -> bool:
    """Whether plan execution is enabled in the current context."""
    return _PLANS_ENABLED.get()


class _ModuleState:
    """Per-module plan cache, arena, staging buffers, and execution lock."""

    __slots__ = (
        "lock",
        "arena",
        "plans",
        "compiles",
        "hits",
        "staging",
        "staging_backing",
    )

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self.arena = BufferArena()
        self.plans: "OrderedDict[tuple, ForwardPlan]" = OrderedDict()
        self.compiles = 0
        self.hits = 0
        # (name, shape, dtype) -> exact-shape view handed to prepare
        # hooks; (name, tail, dtype) -> bucketed backing array.  Both
        # are written only under ``lock`` (prepare runs inside it).
        self.staging: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self.staging_backing: Dict[tuple, np.ndarray] = {}


_STATES: "weakref.WeakKeyDictionary[Module, _ModuleState]" = (
    weakref.WeakKeyDictionary()
)
_STATES_LOCK = threading.Lock()


def _state_for(module: Module) -> _ModuleState:
    with _STATES_LOCK:
        state = _STATES.get(module)
        if state is None:
            state = _ModuleState()
            _STATES[module] = state
        return state


def clear_plans(module: Module) -> None:
    """Drop every compiled plan for ``module`` (arena storage is kept)."""
    with _STATES_LOCK:
        state = _STATES.get(module)
    if state is not None:
        with state.lock:
            state.plans.clear()


def plan_stats(module: Module) -> Dict[str, int]:
    """Compile/hit counters for ``module`` (diagnostics and tests)."""
    with _STATES_LOCK:
        state = _STATES.get(module)
    if state is None:
        return {"plans": 0, "compiles": 0, "hits": 0, "arena_bytes": 0}
    with state.lock:
        return {
            "plans": len(state.plans),
            "compiles": state.compiles,
            "hits": state.hits,
            "arena_bytes": state.arena.allocated_bytes(),
        }


def staging_input(
    module: Module, name: str, shape: Tuple[int, ...], dtype=np.float64
) -> np.ndarray:
    """Engine-owned reusable buffer for assembling a plan input in place.

    ``prepare`` hooks call this instead of allocating a fresh array when
    a per-call input is *assembled* (e.g. concatenated from per-graph
    blocks): fill the returned buffer and pass it to the engine as an
    input array.  A plan compiled from a staging buffer adopts it as its
    own input buffer, so steady-state runs skip both the fresh
    allocation and the input copy.

    The same ``(name, shape, dtype)`` always returns the same ndarray
    object (a view of a power-of-two-bucketed backing array, like arena
    buffers), which is what makes the adoption identity check in
    :meth:`ForwardPlan.run` hit.  Buffers belong to the module's plan
    state and are only handed out under its lock — ``prepare`` hooks run
    inside :func:`plan_call`'s locked section, so concurrent scorers
    never interleave fills.
    """
    state = _state_for(module)
    dtype = np.dtype(dtype)
    shape = tuple(int(s) for s in shape)
    with state.lock:
        key = (name, shape, dtype.str)
        view = state.staging.get(key)
        if view is not None:
            state.staging.move_to_end(key)
            return view
        lead = shape[0] if shape else 1
        tail = shape[1:] if shape else ()
        backing_key = (name, tail, dtype.str)
        backing = state.staging_backing.get(backing_key)
        if backing is None or backing.shape[0] < lead:
            backing = np.empty((_bucket(lead),) + tail, dtype)
            state.staging_backing[backing_key] = backing
        view = backing[:lead] if shape else backing.reshape(())
        state.staging[key] = view
        while len(state.staging) > _STAGING_CACHE_SIZE:
            state.staging.popitem(last=False)
        return view


def _signature(method: str, arrays, extras) -> tuple:
    return (
        method,
        tuple((a.shape, a.dtype.str) for a in arrays),
        extras,
    )


def plan_call(module: Module, method: str, *args):
    """Run ``module.<method>(*args)`` through a compiled plan.

    Returns the raw ndarray result (or a tuple of ndarrays for
    multi-output methods), or ``None`` when the call cannot be planned —
    plans disabled in this context, no lowering registered for
    ``type(module)``, the module tree is in training mode, or the
    lowering's ``prepare`` opted out.  Callers fall back to the tape
    path on ``None``; both paths produce bit-identical values.
    """
    if not _PLANS_ENABLED.get():
        return None
    lowering = _LOWERINGS.get((type(module), method))
    if lowering is None:
        return None
    if any(m.training for m in module.modules()):
        return None
    state = _state_for(module)
    with state.lock:
        # ``prepare`` runs inside the lock so hooks that assemble inputs
        # into staging buffers (:func:`staging_input`) stay atomic with
        # the plan execution that reads them.
        prepared = lowering.prepare(module, args)
        if prepared is None:
            return None
        arrays, objects, extras = prepared
        arrays = [np.asarray(a) for a in arrays]
        signature = _signature(method, arrays, extras)
        plan = state.plans.get(signature)
        if plan is _UNPLANNABLE:
            return None
        if plan is not None and plan.stale():
            # A weight update invalidates every plan of this module.
            state.plans.clear()
            plan = None
        if plan is None:
            with obs.span("infer.plan_compile"):
                arena_before = state.arena.allocated_bytes()
                builder = PlanBuilder(state.arena)
                staging = state.staging
                try:
                    views = [
                        builder.input(
                            a, adopt=any(a is s for s in staging.values())
                        )
                        for a in arrays
                    ]
                    slots = [builder.object_input(o) for o in objects]
                    outputs = lowering.build(
                        module, builder, views, slots, extras
                    )
                except UnsupportedLowering:
                    state.plans[signature] = _UNPLANNABLE
                    return None
                plan = builder.finish(outputs)
                state.plans[signature] = plan
                state.compiles += 1
                _PLAN_COMPILES.inc()
                _PLAN_ARENA_BYTES.add(
                    state.arena.allocated_bytes() - arena_before
                )
                while len(state.plans) > _PLAN_CACHE_SIZE:
                    state.plans.popitem(last=False)
        else:
            state.plans.move_to_end(signature)
            state.hits += 1
            _PLAN_HITS.inc()
        return plan.run(arrays, objects)


# Negative-cache sentinel: a signature whose build raised
# UnsupportedLowering stays on the tape path without re-attempting
# compilation every call.
_UNPLANNABLE = object()
