"""Raw-ndarray kernels executed by compiled forward plans.

Every kernel takes its output buffer first and writes with numpy's
``out=`` forms.  Bit-identity with the tape path
(:mod:`repro.nn.functional`) is a hard contract: each kernel performs
the *same* numpy operations in the *same* order as the corresponding
tape op, so plan scores match tape scores exactly (not just to
tolerance).  Deviations that look equivalent usually are not — e.g.
``np.maximum(x, 0)`` differs from the tape's ``x * (x > 0)`` on ``-0.0``
— so new kernels must copy the tape formula, not paraphrase it.

Kernels may receive non-array arguments (axis tuples, scalars, an
:class:`ObjectSlot` holding a per-call sparse matrix); those are bound
into the plan step at compile time.
"""

from __future__ import annotations

import numpy as np

try:  # the clip ufunc np.clip itself dispatches to (numpy >= 2)
    from numpy._core.umath import clip as _clip
except ImportError:  # pragma: no cover - older numpy layout
    from numpy.core.umath import clip as _clip

from repro.nn.functional import segment_sum_raw

__all__ = [
    "ObjectSlot",
    "k_matmul",
    "k_add",
    "k_subtract",
    "k_multiply",
    "k_divide",
    "k_negative",
    "k_power",
    "k_maximum",
    "k_copy",
    "k_relu",
    "k_leaky_relu",
    "k_tanh",
    "k_sigmoid",
    "k_sum",
    "k_mean",
    "k_amax",
    "k_softmax",
    "k_segment_sum",
    "k_spmm",
    "k_reshape_copy",
    "k_lstm_input",
    "k_lstm_cell",
    "k_lstm_freeze",
]


class ObjectSlot:
    """Mutable cell for a non-ndarray per-call input (e.g. a CSR matrix).

    The plan binds the slot into its steps at compile time; each run
    rebinds ``value`` before executing, so kernels dereference the
    current call's object without recompiling.
    """

    __slots__ = ("value",)

    def __init__(self, value=None):
        self.value = value


def k_matmul(out: np.ndarray, a: np.ndarray, b: np.ndarray) -> None:
    """``out = a @ b`` (same BLAS routine as the tape's ``a @ b``)."""
    np.matmul(a, b, out=out)


def k_add(out: np.ndarray, a, b) -> None:
    """Broadcasting ``out = a + b`` (``a`` or ``b`` may alias ``out``)."""
    np.add(a, b, out=out)


def k_subtract(out: np.ndarray, a, b) -> None:
    """Broadcasting ``out = a - b``."""
    np.subtract(a, b, out=out)


def k_multiply(out: np.ndarray, a, b) -> None:
    """Broadcasting ``out = a * b``."""
    np.multiply(a, b, out=out)


def k_divide(out: np.ndarray, a, b) -> None:
    """Broadcasting ``out = a / b``."""
    np.divide(a, b, out=out)


def k_negative(out: np.ndarray, a: np.ndarray) -> None:
    """``out = -a``."""
    np.negative(a, out=out)


def k_power(out: np.ndarray, a: np.ndarray, exponent: float) -> None:
    """``out = a ** exponent`` (matches the tape's ``a.data**exponent``)."""
    np.power(a, exponent, out=out)


def k_maximum(out: np.ndarray, a, b) -> None:
    """Elementwise ``out = maximum(a, b)``."""
    np.maximum(a, b, out=out)


def k_copy(out: np.ndarray, a: np.ndarray) -> None:
    """``out[...] = a`` (used for concat/stack slot writes)."""
    np.copyto(out, a)


def k_relu(out: np.ndarray, a: np.ndarray, mask: np.ndarray) -> None:
    """In-place-capable rectifier, bit-identical to ``a * (a > 0)``.

    The tape multiplies by a boolean mask, which maps negative inputs to
    ``-0.0``; ``np.maximum(a, 0)`` would give ``+0.0`` instead, so the
    mask-multiply form is load-bearing.  ``mask`` is a pooled bool buffer.
    """
    np.greater(a, 0, out=mask)
    np.multiply(a, mask, out=out)


def k_leaky_relu(
    out: np.ndarray, a: np.ndarray, slope: float, mask: np.ndarray
) -> None:
    """Leaky rectifier matching ``a * where(a > 0, 1.0, slope)``.

    Positive entries pass through untouched — bitwise equal to the
    tape's ``a * 1.0`` — and only non-positive entries are scaled.
    """
    np.less_equal(a, 0, out=mask)
    if out is not a:
        np.copyto(out, a)
    np.multiply(out, slope, out=out, where=mask)


def k_tanh(out: np.ndarray, a: np.ndarray) -> None:
    """``out = tanh(a)`` (``a`` may alias ``out``)."""
    np.tanh(a, out=out)


def k_sigmoid(out: np.ndarray, a: np.ndarray) -> None:
    """Stable logistic sigmoid, the tape's exact op chain.

    clip to ±40 → negate → exp → +1 → reciprocal, i.e.
    ``1.0 / (1.0 + np.exp(-np.clip(a, -40, 40)))``.  The clip runs
    through the same ufunc ``np.clip`` dispatches to, minus the Python
    wrapper — bitwise identical, called thousands of times per LSTM
    forward.
    """
    _clip(a, -40.0, 40.0, out=out)
    np.negative(out, out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    np.divide(1.0, out, out=out)


def k_sum(out: np.ndarray, a: np.ndarray, axis, keepdims: bool) -> None:
    """``out = a.sum(axis, keepdims)`` (same pairwise reduction)."""
    np.sum(a, axis=axis, keepdims=keepdims, out=out)


def k_mean(out: np.ndarray, a: np.ndarray, axis, keepdims: bool) -> None:
    """``out = a.mean(axis, keepdims)``."""
    np.mean(a, axis=axis, keepdims=keepdims, out=out)


def k_amax(out: np.ndarray, a: np.ndarray, axis, keepdims: bool) -> None:
    """``out = a.max(axis, keepdims)``."""
    np.amax(a, axis=axis, keepdims=keepdims, out=out)


def k_softmax(
    out: np.ndarray,
    a: np.ndarray,
    axis: int,
    max_buf: np.ndarray,
    sum_buf: np.ndarray,
) -> None:
    """Stable softmax along ``axis``, the tape's exact op chain.

    ``max_buf`` / ``sum_buf`` are pooled keepdims-shaped buffers for the
    shift and the normaliser.
    """
    np.amax(a, axis=axis, keepdims=True, out=max_buf)
    np.subtract(a, max_buf, out=out)
    np.exp(out, out=out)
    np.sum(out, axis=axis, keepdims=True, out=sum_buf)
    np.divide(out, sum_buf, out=out)


def k_segment_sum(
    out: np.ndarray, x: np.ndarray, segment_ids: np.ndarray
) -> None:
    """Sum rows of ``x`` into segment buckets.

    Delegates to :func:`repro.nn.functional.segment_sum_raw` — the same
    routine the tape op runs — so the sorted-ids ``reduceat`` fast path
    and the ``np.add.at`` fallback are chosen identically on both
    execution paths and the outputs stay bit-identical.
    """
    segment_sum_raw(out, x, segment_ids)


def k_reshape_copy(out: np.ndarray, a: np.ndarray, shape: tuple) -> None:
    """``out = a.reshape(shape)`` by copy (non-contiguous fallback)."""
    np.copyto(out, a.reshape(shape))


def k_lstm_input(
    out: np.ndarray,
    comb: np.ndarray,
    x_dst: np.ndarray,
    h_dst: np.ndarray,
    x_t: np.ndarray,
    h_prev: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
) -> None:
    """Gate pre-activations ``[x_t, h_prev] @ W + b`` in one dispatch.

    Fuses the two concat copies, the matmul, and the bias add of one
    LSTM timestep — the same four numpy calls the unfused steps made,
    in the same order, writing the same buffers (``x_dst``/``h_dst``
    are the column halves of ``comb``).  Fusion only removes Python
    step dispatch, never changes arithmetic.
    """
    np.copyto(x_dst, x_t)
    np.copyto(h_dst, h_prev)
    np.matmul(comb, weight, out=out)
    np.add(out, bias, out=out)


def k_lstm_cell(
    out: np.ndarray,
    gi: np.ndarray,
    gf: np.ndarray,
    gg: np.ndarray,
    go: np.ndarray,
    c_prev: np.ndarray,
    i: np.ndarray,
    f: np.ndarray,
    g: np.ndarray,
    o: np.ndarray,
    ig: np.ndarray,
    tanh_c: np.ndarray,
    c_raw: np.ndarray,
) -> None:
    """The LSTM cell's post-matmul elementwise chain, one dispatch.

    ``out`` is the raw hidden state ``h_raw``; ``gi``/``gf``/``gg``/
    ``go`` are the four column slices of the gate pre-activations.
    Every line below is the exact ufunc the unfused kernels ran
    (sigmoid via the tape's clip → exp chain), in the same order.
    """
    k_sigmoid(i, gi)
    k_sigmoid(f, gf)
    np.tanh(gg, out=g)
    k_sigmoid(o, go)
    np.multiply(f, c_prev, out=c_raw)
    np.multiply(i, g, out=ig)
    np.add(c_raw, ig, out=c_raw)
    np.tanh(c_raw, out=tanh_c)
    np.multiply(o, tanh_c, out=out)


def k_lstm_freeze(
    out: np.ndarray,
    keep: np.ndarray,
    h_raw: np.ndarray,
    h_prev: np.ndarray,
    c_raw: np.ndarray,
    c_prev: np.ndarray,
    c_out: np.ndarray,
    drop: np.ndarray,
    kh: np.ndarray,
    dh: np.ndarray,
) -> None:
    """Masked state freeze ``keep*new + (1-keep)*old`` for h and c.

    ``out`` is the frozen hidden state; ``c_out`` the frozen cell
    state.  Same ufunc sequence as the unfused mask steps.
    """
    np.subtract(1.0, keep, out=drop)
    np.multiply(keep, h_raw, out=kh)
    np.multiply(drop, h_prev, out=dh)
    np.add(kh, dh, out=out)
    np.multiply(keep, c_raw, out=kh)
    np.multiply(drop, c_prev, out=dh)
    np.add(kh, dh, out=c_out)


def k_spmm(out: np.ndarray, slot: ObjectSlot, x: np.ndarray) -> None:
    """``out = csr @ x`` with the CSR matrix taken from ``slot``.

    scipy's sparse matmul has no ``out=`` form, so this is the one
    kernel that still allocates a temporary per call; the product itself
    is the same routine the tape uses.
    """
    np.copyto(out, np.asarray(slot.value @ x))
