"""Plan lowerings for the core ``repro.nn`` modules.

Each lowering turns a module's tape forward into arena-buffer kernel
steps with the *same* float64 operations in the *same* order, so planned
outputs are bit-identical to tape outputs.  Composite modules
(Sequential, MLP, the sequence heads) lower their children through
:func:`emit`, which dispatches on the child's concrete class.

In-place discipline: activation emitters overwrite their input buffer.
That is sound here because in every registered lowering the activation
input is a freshly produced buffer (a Linear/gate output, or a plan
input that is re-copied each run) that no later step reads.  Emitters
that need a value twice (e.g. DiffPool's propagated features) must keep
it out of in-place chains.
"""

from __future__ import annotations

import numpy as np

from repro.nn.attention import AttentionPooling
from repro.nn.inference.engine import (
    UnsupportedLowering,
    register_lowering,
)
from repro.nn.inference.kernels import (
    k_add,
    k_amax,
    k_copy,
    k_divide,
    k_leaky_relu,
    k_lstm_cell,
    k_lstm_freeze,
    k_lstm_input,
    k_matmul,
    k_maximum,
    k_mean,
    k_multiply,
    k_negative,
    k_power,
    k_relu,
    k_sigmoid,
    k_softmax,
    k_subtract,
    k_sum,
    k_tanh,
)
from repro.nn.layers import MLP, Activation, Dropout, LayerNorm, Linear, Sequential
from repro.nn.rnn import BiLSTM, LSTM, LSTMCell
from repro.nn.tensor import Tensor

__all__ = ["emit", "register_emitter"]

_MASK_OFFSET = 1e9  # keep in sync with heads/attention

_EMITTERS = {}


def register_emitter(cls):
    """Decorator registering a build-time emitter for module class ``cls``."""

    def decorator(fn):
        _EMITTERS[cls] = fn
        return fn

    return decorator


def emit(module, builder, *views):
    """Emit the kernel steps for ``module`` applied to ``views``.

    Dispatches on the module's concrete class; raises
    :class:`UnsupportedLowering` for classes without an emitter, which
    the engine negative-caches (tape fallback).
    """
    fn = _EMITTERS.get(type(module))
    if fn is None:
        raise UnsupportedLowering(
            f"no plan emitter for {type(module).__name__}"
        )
    return fn(module, builder, *views)


# --------------------------------------------------------------------- #
# Feed-forward layers
# --------------------------------------------------------------------- #


@register_emitter(Linear)
def _emit_linear(module, b, x):
    out = b.alloc((x.shape[0], module.out_features))
    b.step(k_matmul, out, x, b.param(module.weight))
    if module.bias is not None:
        b.step(k_add, out, out, b.param(module.bias))
    return out


@register_emitter(Dropout)
def _emit_dropout(module, b, x):
    # Plans only compile in eval mode, where dropout is the identity.
    return x


@register_emitter(Activation)
def _emit_activation(module, b, x):
    if module.name == "relu":
        mask = b.alloc(x.shape, np.bool_)
        return b.step(k_relu, x, x, mask)
    if module.name == "tanh":
        return b.step(k_tanh, x, x)
    if module.name == "sigmoid":
        return b.step(k_sigmoid, x, x)
    if module.name == "leaky_relu":
        mask = b.alloc(x.shape, np.bool_)
        return b.step(k_leaky_relu, x, x, 0.01, mask)
    raise UnsupportedLowering(f"activation {module.name!r}")


@register_emitter(LayerNorm)
def _emit_layer_norm(module, b, x):
    reduced = x.shape[:-1] + (1,)
    mu = b.alloc(reduced)
    b.step(k_mean, mu, x, -1, True)
    b.step(k_negative, mu, mu)
    centered = b.alloc(x.shape)
    b.step(k_add, centered, x, mu)
    squared = b.alloc(x.shape)
    b.step(k_multiply, squared, centered, centered)
    var = b.alloc(reduced)
    b.step(k_mean, var, squared, -1, True)
    b.step(k_add, var, var, module.eps)
    b.step(k_power, var, var, -0.5)
    b.step(k_multiply, centered, centered, var)
    b.step(k_multiply, centered, centered, b.param(module.gain))
    b.step(k_add, centered, centered, b.param(module.shift))
    return centered


@register_emitter(Sequential)
def _emit_sequential(module, b, x):
    for child in module.steps:
        x = emit(child, b, x)
    return x


@register_emitter(MLP)
def _emit_mlp(module, b, x):
    return emit(module.net, b, x)


# --------------------------------------------------------------------- #
# Recurrence
# --------------------------------------------------------------------- #


def _emit_cell_step(cell, b, x_t, h_prev, c_prev, tmp):
    """One LSTMCell step into the shared per-timestep temp buffers.

    Two fused kernels (gate pre-activations, elementwise cell update)
    replace the ~15 unfused steps per timestep — same numpy calls in
    the same order, so the fusion is dispatch-only and bit-preserving.
    """
    H = cell.hidden_dim
    D = x_t.shape[1]
    comb, gates = tmp["comb"], tmp["gates"]
    b.step(
        k_lstm_input,
        gates,
        comb,
        comb[:, :D],
        comb[:, D:],
        x_t,
        h_prev,
        b.param(cell.weight),
        b.param(cell.bias),
    )
    c_raw, h_raw = tmp["c_raw"], tmp["h_raw"]
    b.step(
        k_lstm_cell,
        h_raw,
        gates[:, 0 * H : 1 * H],
        gates[:, 1 * H : 2 * H],
        gates[:, 2 * H : 3 * H],
        gates[:, 3 * H : 4 * H],
        c_prev,
        tmp["i"],
        tmp["f"],
        tmp["g"],
        tmp["o"],
        tmp["ig"],
        tmp["tanh_c"],
        c_raw,
    )
    return h_raw, c_raw


def _cell_temps(b, batch, input_dim, hidden_dim):
    return {
        "comb": b.alloc((batch, input_dim + hidden_dim)),
        "gates": b.alloc((batch, 4 * hidden_dim)),
        "i": b.alloc((batch, hidden_dim)),
        "f": b.alloc((batch, hidden_dim)),
        "g": b.alloc((batch, hidden_dim)),
        "o": b.alloc((batch, hidden_dim)),
        "ig": b.alloc((batch, hidden_dim)),
        "tanh_c": b.alloc((batch, hidden_dim)),
        "c_raw": b.alloc((batch, hidden_dim)),
        "h_raw": b.alloc((batch, hidden_dim)),
    }


def _emit_lstm(module, b, x, mask, need_outputs=True):
    """Unrolled masked LSTM; returns ``(stacked | None, final_h)``.

    ``need_outputs=False`` skips the per-timestep output copies and the
    stacked buffer entirely (dead-code elimination for heads that only
    read the final state — the remaining values are unchanged).
    """
    batch, steps, input_dim = x.shape
    H = module.hidden_dim
    tmp = _cell_temps(b, batch, input_dim, H)
    # kh/dh/drop implement the masked state freeze keep*new + drop*old.
    kh = b.alloc((batch, H))
    dh = b.alloc((batch, H))
    drop = b.alloc((batch, 1))
    # Initial state must be genuinely zero on *every* run, and arena
    # buffers are dirty — so h0/c0 are plan-owned constants.
    zeros = b.const(np.zeros((batch, H)))
    h_prev, c_prev = zeros, zeros
    # Ping-pong state buffers: step t writes one while reading the other.
    h_pp = [b.alloc((batch, H)), b.alloc((batch, H))]
    c_pp = [b.alloc((batch, H)), b.alloc((batch, H))]
    stacked = b.alloc((batch, steps, H)) if need_outputs else None
    order = range(steps - 1, -1, -1) if module.reverse else range(steps)
    for index, t in enumerate(order):
        keep = mask[:, t : t + 1]
        h_raw, c_raw = _emit_cell_step(
            module.cell, b, x[:, t, :], h_prev, c_prev, tmp
        )
        h_out, c_out = h_pp[index % 2], c_pp[index % 2]
        b.step(
            k_lstm_freeze,
            h_out,
            keep,
            h_raw,
            h_prev,
            c_raw,
            c_prev,
            c_out,
            drop,
            kh,
            dh,
        )
        h_prev, c_prev = h_out, c_out
        if need_outputs:
            b.step(k_copy, stacked[:, t, :], h_out)
    return stacked, h_prev


def _emit_bilstm(module, b, x, mask, need_outputs=True):
    """Bidirectional LSTM; returns ``(concat_outputs | None, concat_final)``."""
    batch, steps, _ = x.shape
    H = module.hidden_dim
    fwd_out, fwd_final = _emit_lstm(
        module.forward_lstm, b, x, mask, need_outputs
    )
    bwd_out, bwd_final = _emit_lstm(
        module.backward_lstm, b, x, mask, need_outputs
    )
    final = b.alloc((batch, 2 * H))
    b.step(k_copy, final[:, :H], fwd_final)
    b.step(k_copy, final[:, H:], bwd_final)
    if not need_outputs:
        return None, final
    outputs = b.alloc((batch, steps, 2 * H))
    b.step(k_copy, outputs[:, :, :H], fwd_out)
    b.step(k_copy, outputs[:, :, H:], bwd_out)
    return outputs, final


# --------------------------------------------------------------------- #
# Attention pooling
# --------------------------------------------------------------------- #


def _emit_attention(module, b, x, mask):
    """AttentionPooling over ``x`` (B,T,D); ``mask`` may be ``None``."""
    batch, steps, dim = x.shape
    flat = b.reshape(x, (batch * steps, dim))
    hidden = b.alloc((batch * steps, module.attention_dim))
    b.step(k_matmul, hidden, flat, b.param(module.projection))
    b.step(k_tanh, hidden, hidden)
    scores_flat = b.alloc((batch * steps, 1))
    b.step(k_matmul, scores_flat, hidden, b.param(module.query))
    scores = b.reshape(scores_flat, (batch, steps))
    if mask is not None:
        offset = b.alloc((batch, steps))
        b.step(k_subtract, offset, mask, 1.0)
        b.step(k_multiply, offset, offset, _MASK_OFFSET)
        b.step(k_add, scores, scores, offset)
    max_buf = b.alloc((batch, 1))
    sum_buf = b.alloc((batch, 1))
    b.step(k_softmax, scores, scores, 1, max_buf, sum_buf)
    weighted = b.alloc((batch, steps, dim))
    b.step(k_multiply, weighted, x, b.reshape(scores, (batch, steps, 1)))
    pooled = b.alloc((batch, dim))
    b.step(k_sum, pooled, weighted, 1, False)
    return pooled


# --------------------------------------------------------------------- #
# Masked pooling primitives shared with the sequence heads
# --------------------------------------------------------------------- #


def emit_masked_sum(b, x, mask):
    """``sum(x * mask[:, :, None], axis=1)`` into a fresh buffer."""
    batch, steps, dim = x.shape
    weighted = b.alloc((batch, steps, dim))
    b.step(k_multiply, weighted, x, b.reshape(mask, (batch, steps, 1)))
    total = b.alloc((batch, dim))
    b.step(k_sum, total, weighted, 1, False)
    return total


def emit_masked_avg(b, x, mask):
    """Masked mean over timesteps (count floored at 1, like the tape)."""
    batch = x.shape[0]
    total = emit_masked_sum(b, x, mask)
    counts = b.alloc((batch, 1))
    b.step(k_sum, counts, mask, 1, True)
    b.step(k_maximum, counts, counts, 1.0)
    pooled = b.alloc(total.shape)
    b.step(k_divide, pooled, total, counts)
    return pooled


def emit_masked_max(b, x, mask):
    """Masked max: padded steps are shifted down by the mask offset."""
    batch, steps, dim = x.shape
    offset = b.alloc((batch, steps, 1))
    b.step(k_subtract, offset, b.reshape(mask, (batch, steps, 1)), 1.0)
    b.step(k_multiply, offset, offset, _MASK_OFFSET)
    shifted = b.alloc((batch, steps, dim))
    b.step(k_add, shifted, x, offset)
    pooled = b.alloc((batch, dim))
    b.step(k_amax, pooled, shifted, 1, False)
    return pooled


# --------------------------------------------------------------------- #
# Top-level prepares for the plain tensor-in / tensor-out modules
# --------------------------------------------------------------------- #


def _as_array(value):
    return value.data if isinstance(value, Tensor) else np.asarray(value)


def _prepare_single(module, args):
    """``forward(x)`` modules: one float array in."""
    if len(args) != 1:
        return None
    x = _as_array(args[0])
    if x.dtype.kind not in "fiu":
        return None
    return [np.asarray(x, dtype=np.float64)], [], ()


def _prepare_sequence(module, args):
    """``forward(x, mask=None)`` modules over (B, T, D) sequences.

    A ``None`` mask is materialised as ones — exactly what the tape
    forward does — so one plan shape serves both spellings.
    """
    if not 1 <= len(args) <= 2:
        return None
    x = _as_array(args[0])
    if x.ndim != 3:
        return None
    mask = args[1] if len(args) == 2 else None
    if mask is None:
        mask = np.ones(x.shape[:2], dtype=np.float64)
    else:
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != x.shape[:2]:
            return None
    return [np.asarray(x, dtype=np.float64), mask], [], ()


def _prepare_attention(module, args):
    """AttentionPooling: the tape skips the mask offset when mask is None,
    so the flag is part of the plan signature."""
    if not 1 <= len(args) <= 2:
        return None
    x = _as_array(args[0])
    if x.ndim != 3:
        return None
    mask = args[1] if len(args) == 2 else None
    if mask is None:
        return [np.asarray(x, dtype=np.float64)], [], ("nomask",)
    mask = np.asarray(mask, dtype=np.float64)
    if mask.shape != x.shape[:2]:
        return None
    return [np.asarray(x, dtype=np.float64), mask], [], ("mask",)


def _prepare_cell(module, args):
    """LSTMCell: ``forward(x, (h, c))``."""
    if len(args) != 2:
        return None
    x = _as_array(args[0])
    try:
        h, c = args[1]
    except (TypeError, ValueError):
        return None
    return (
        [
            np.asarray(x, dtype=np.float64),
            np.asarray(_as_array(h), dtype=np.float64),
            np.asarray(_as_array(c), dtype=np.float64),
        ],
        [],
        (),
    )


def _single_build(emitter):
    def build(module, b, views, objects, extras):
        return emitter(module, b, views[0])

    return build


for _cls in (Linear, Dropout, Activation, LayerNorm, Sequential, MLP):
    register_lowering(_cls, prepare=_prepare_single)(
        _single_build(_EMITTERS[_cls])
    )


@register_lowering(LSTM, prepare=_prepare_sequence)
def _build_lstm(module, b, views, objects, extras):
    stacked, final = _emit_lstm(module, b, views[0], views[1])
    return (stacked, final)


@register_lowering(BiLSTM, prepare=_prepare_sequence)
def _build_bilstm(module, b, views, objects, extras):
    outputs, final = _emit_bilstm(module, b, views[0], views[1])
    return (outputs, final)


@register_lowering(LSTMCell, prepare=_prepare_cell)
def _build_lstm_cell(module, b, views, objects, extras):
    x, h, c = views
    tmp = _cell_temps(b, x.shape[0], x.shape[1], module.hidden_dim)
    h_raw, c_raw = _emit_cell_step(module, b, x, h, c, tmp)
    return (h_raw, c_raw)


@register_lowering(AttentionPooling, prepare=_prepare_attention)
def _build_attention(module, b, views, objects, extras):
    mask = views[1] if extras == ("mask",) else None
    return _emit_attention(module, b, views[0], mask)
