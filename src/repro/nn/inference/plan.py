"""Forward-plan representation and the builder used by lowerings.

A :class:`ForwardPlan` is a flat list of ``(kernel, out, args)`` steps
over preallocated buffers — no :class:`~repro.nn.tensor.Tensor`
wrappers, no backward closures, no tape.  Compilation is
*compile-by-execution*: a lowering's ``build`` function emits steps via
:class:`PlanBuilder`, and each step executes eagerly as it is recorded,
so the plan is validated (shapes, dtypes) against real data the moment
it is built.

Replaying the plan is a bare loop over the steps.  Inputs are copied
into arena buffers (skipped when the caller assembled the input in the
plan's own adopted staging buffer), per-call objects (sparse matrices)
are rebound into their :class:`~repro.nn.inference.kernels.ObjectSlot`
cells, and the output views are copied out — everything in between
reuses the same storage call after call.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.nn.inference.arena import BufferArena
from repro.nn.inference.kernels import ObjectSlot
from repro.nn.module import Parameter

__all__ = ["ForwardPlan", "PlanBuilder"]


class ForwardPlan:
    """A compiled, replayable forward pass over arena buffers."""

    __slots__ = (
        "steps",
        "inputs",
        "object_slots",
        "outputs",
        "param_guard",
        "consts",
        "calls",
    )

    def __init__(
        self,
        steps: Sequence[Tuple[Callable, np.ndarray, tuple]],
        inputs: Sequence[np.ndarray],
        object_slots: Sequence[ObjectSlot],
        outputs,
        param_guard: Sequence[Tuple[Parameter, int]],
        consts: Sequence[np.ndarray],
    ):
        self.steps = tuple(steps)
        self.inputs = tuple(inputs)
        self.object_slots = tuple(object_slots)
        self.outputs = outputs
        self.param_guard = tuple(param_guard)
        # Plan-owned constants are referenced by steps; kept here so the
        # plan's lifetime pins them even if a lowering drops its refs.
        self.consts = tuple(consts)
        self.calls = 0

    def stale(self) -> bool:
        """Whether any guarded parameter mutated since compilation."""
        return any(
            param.plan_version != version
            for param, version in self.param_guard
        )

    def run(self, arrays: Sequence[np.ndarray], objects: Sequence) :
        """Execute the plan for one call and return fresh output arrays.

        ``arrays`` / ``objects`` must match the compile-time signature
        (the engine guarantees this by keying plans on it).
        """
        for buffer, array in zip(self.inputs, arrays):
            if array is not buffer:
                np.copyto(buffer, array)
        for slot, obj in zip(self.object_slots, objects):
            slot.value = obj
        for kernel, out, args in self.steps:
            kernel(out, *args)
        self.calls += 1
        if isinstance(self.outputs, tuple):
            return tuple(np.array(view) for view in self.outputs)
        return np.array(self.outputs)


class PlanBuilder:
    """Records kernel steps while executing them against an arena.

    Lowerings interact only with this class: :meth:`input` binds a
    per-call array, :meth:`param` a module weight, :meth:`const` a
    plan-owned immutable array, :meth:`alloc` a scratch/output buffer,
    and :meth:`step` emits (and immediately runs) one kernel.
    """

    def __init__(self, arena: BufferArena):
        self._arena = arena
        arena.begin()
        self.steps: List[Tuple[Callable, np.ndarray, tuple]] = []
        self.inputs: List[np.ndarray] = []
        self.objects: List[ObjectSlot] = []
        self.params: List[Parameter] = []
        self.consts: List[np.ndarray] = []

    def input(self, array: np.ndarray, adopt: bool = False) -> np.ndarray:
        """Bind a per-call ndarray input; returns its arena buffer.

        With ``adopt=True`` the array itself (an engine staging buffer
        the caller assembles in place) becomes the plan's input buffer:
        :meth:`ForwardPlan.run` sees the same object passed back each
        call and skips the input copy entirely.
        """
        array = np.asarray(array)
        if adopt:
            buffer = array
        else:
            buffer = self._arena.take(array.shape, array.dtype)
            np.copyto(buffer, array)
        self.inputs.append(buffer)
        return buffer

    def object_input(self, obj) -> ObjectSlot:
        """Bind a per-call non-ndarray input (e.g. a CSR adjacency)."""
        slot = ObjectSlot(obj)
        self.objects.append(slot)
        return slot

    def param(self, parameter: Parameter) -> np.ndarray:
        """Reference a module weight; the plan guards its version."""
        if not isinstance(parameter, Parameter):
            raise ValidationError(
                f"builder.param expects a Parameter, got {type(parameter)!r}"
            )
        self.params.append(parameter)
        return parameter.data

    def const(self, array: np.ndarray) -> np.ndarray:
        """A plan-owned constant array (never written by any step).

        Use for buffers whose initial value is read before any write —
        arena storage is shared across plans and may hold garbage.
        """
        array = np.asarray(array, dtype=np.float64)
        self.consts.append(array)
        return array

    def alloc(self, shape, dtype=np.float64) -> np.ndarray:
        """A scratch/output buffer from the arena."""
        return self._arena.take(tuple(shape), dtype)

    def step(self, kernel: Callable, out: np.ndarray, *args) -> np.ndarray:
        """Record one kernel step and execute it now; returns ``out``."""
        kernel(out, *args)
        self.steps.append((kernel, out, args))
        return out

    def reshape(self, array: np.ndarray, shape) -> np.ndarray:
        """A reshaped *view* of an arena buffer (stable aliasing).

        Falls back to an explicit copy step when numpy cannot produce a
        view (non-contiguous source), keeping downstream aliasing sound.
        """
        shape = tuple(int(s) for s in shape)
        view = array.reshape(shape)
        if view.base is not None or view is array:
            return view
        from repro.nn.inference.kernels import k_reshape_copy

        out = self.alloc(shape, array.dtype)
        return self.step(k_reshape_copy, out, array, shape)

    def finish(self, outputs, param_guard_extra=()) -> ForwardPlan:
        """Freeze the recorded steps into a :class:`ForwardPlan`."""
        guard = [(p, p.plan_version) for p in self.params]
        guard.extend(param_guard_extra)
        return ForwardPlan(
            self.steps,
            self.inputs,
            self.objects,
            outputs,
            guard,
            self.consts,
        )
