"""Weight initialisers (deterministic: every scheme takes a Generator)."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "zeros"]


def _check_fan(shape) -> tuple:
    if len(shape) < 2:
        raise ValidationError(
            f"fan-based init requires >= 2 dimensions, got shape {shape}"
        )
    fan_in, fan_out = shape[0], shape[1]
    return float(fan_in), float(fan_out)


def xavier_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot uniform: U(−a, a) with a = √(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _check_fan(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot normal: N(0, 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _check_fan(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """He uniform for ReLU nets: U(−a, a) with a = √(6 / fan_in)."""
    fan_in, _ = _check_fan(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)
