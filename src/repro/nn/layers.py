"""Core feed-forward layers: Linear, MLP, Dropout, LayerNorm, Sequential."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.nn import functional as F
from repro.nn.init import xavier_uniform, zeros
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = ["Linear", "Dropout", "LayerNorm", "Sequential", "Activation", "MLP"]


class Linear(Module):
    """Affine map ``y = x W + b`` with Xavier-initialised weights."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: "int | np.random.Generator | None" = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValidationError(
                f"Linear dims must be positive, got ({in_features}, {out_features})"
            )
        generator = as_generator(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform((in_features, out_features), generator))
        self.bias = Parameter(zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = F.matmul(x, self.weight)
        if self.bias is not None:
            out = F.add(out, self.bias)
        return out


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng: "int | np.random.Generator | None" = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValidationError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self._rng = as_generator(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        if dim <= 0:
            raise ValidationError(f"LayerNorm dim must be positive, got {dim}")
        self.dim = dim
        self.eps = eps
        self.gain = Parameter(np.ones(dim))
        self.shift = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mu = F.mean(x, axis=-1, keepdims=True)
        centered = F.add(x, F.negate(mu))
        var = F.mean(F.multiply(centered, centered), axis=-1, keepdims=True)
        inv_std = F.power(F.add(var, Tensor(self.eps)), -0.5)
        normalised = F.multiply(centered, inv_std)
        return F.add(F.multiply(normalised, self.gain), self.shift)


class Activation(Module):
    """Wrap a functional nonlinearity as a module (for Sequential)."""

    _ACTIVATIONS = {
        "relu": F.relu,
        "tanh": F.tanh,
        "sigmoid": F.sigmoid,
        "leaky_relu": F.leaky_relu,
    }

    def __init__(self, name: str = "relu"):
        super().__init__()
        if name not in self._ACTIVATIONS:
            raise ValidationError(
                f"unknown activation {name!r}; options: {sorted(self._ACTIVATIONS)}"
            )
        self.name = name
        self._fn: Callable = self._ACTIVATIONS[name]

    def forward(self, x: Tensor) -> Tensor:
        return self._fn(x)


class Sequential(Module):
    """Run modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.steps: List[Module] = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for step in self.steps:
            x = step(x)
        return x

    def __len__(self) -> int:
        return len(self.steps)

    def __getitem__(self, index: int) -> Module:
        return self.steps[index]


class MLP(Module):
    """Multi-layer perceptron with hidden activations and optional dropout.

    ``dims = [in, h1, ..., out]``; activation follows every layer except
    the last.  The output layer is linear (logits).
    """

    def __init__(
        self,
        dims: Sequence[int],
        activation: str = "relu",
        dropout: float = 0.0,
        rng: "int | np.random.Generator | None" = None,
    ):
        super().__init__()
        if len(dims) < 2:
            raise ValidationError(f"MLP needs >= 2 dims, got {list(dims)}")
        generator = as_generator(rng)
        steps: List[Module] = []
        for index in range(len(dims) - 1):
            steps.append(Linear(dims[index], dims[index + 1], rng=generator))
            is_last = index == len(dims) - 2
            if not is_last:
                steps.append(Activation(activation))
                if dropout > 0.0:
                    steps.append(Dropout(dropout, rng=generator))
        self.net = Sequential(*steps)
        self.dims = list(dims)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)

    def hidden(self, x: Tensor, upto_layer: Optional[int] = None) -> Tensor:
        """The representation just before the final linear layer.

        Used to harvest embeddings from a trained classifier (the paper's
        GFN embeddings are the pre-classifier activations).
        """
        steps = self.net.steps
        cutoff = len(steps) - 1 if upto_layer is None else upto_layer
        for step in steps[:cutoff]:
            x = step(x)
        return x
