"""Loss functions."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ValidationError
from repro.nn import functional as F
from repro.nn.tensor import Tensor, as_tensor

__all__ = ["cross_entropy", "mse_loss", "nll_loss"]


def cross_entropy(
    logits: Tensor,
    labels: np.ndarray,
    class_weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Mean softmax cross-entropy of ``logits`` (N, C) against int labels.

    ``class_weights`` (C,) re-weights each example by its class — useful
    under the heavy class imbalance of the address dataset.
    """
    logits = as_tensor(logits)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValidationError(f"logits must be (N, C), got {logits.shape}")
    n, c = logits.shape
    if labels.shape != (n,):
        raise ValidationError(
            f"labels shape {labels.shape} does not match logits rows {n}"
        )
    if labels.size and (labels.min() < 0 or labels.max() >= c):
        raise ValidationError("labels out of range for logit columns")
    log_probs = F.log_softmax(logits, axis=1)
    picked = F.take(log_probs, (np.arange(n), labels))
    if class_weights is not None:
        class_weights = np.asarray(class_weights, dtype=np.float64)
        if class_weights.shape != (c,):
            raise ValidationError(
                f"class_weights must be ({c},), got {class_weights.shape}"
            )
        weights = class_weights[labels]
        weighted = F.multiply(picked, Tensor(weights))
        total = F.sum(weighted)
        denominator = float(weights.sum())
        if denominator <= 0.0:
            # Every label in the batch falls in a zero-weight class (e.g.
            # absent at fit time): the batch carries no loss and no
            # gradient, rather than 0/0 = NaN.
            denominator = 1.0
        return F.negate(F.divide(total, Tensor(denominator)))
    return F.negate(F.mean(picked))


def nll_loss(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of pre-computed log-probabilities."""
    log_probs = as_tensor(log_probs)
    labels = np.asarray(labels, dtype=np.int64)
    n = log_probs.shape[0]
    picked = F.take(log_probs, (np.arange(n), labels))
    return F.negate(F.mean(picked))


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = F.add(prediction, F.negate(target))
    return F.mean(F.multiply(diff, diff))
