"""Module base class: parameter registration, traversal, state dicts."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.nn.tensor import Tensor

__all__ = ["Module", "Parameter"]


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a module.

    ``plan_version`` counts mutations of ``data`` (optimizer steps,
    ``load_state_dict``).  Compiled forward plans in
    :mod:`repro.nn.inference` snapshot the version at compile time and
    recompile when it moves — necessary because optimizers *replace* the
    ``data`` array rather than updating it in place, so a plan holding
    the old array reference would silently serve stale weights.
    """

    __slots__ = ("plan_version",)

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        self.plan_version = 0

    def bump_plan_version(self) -> None:
        """Mark the parameter data as mutated (invalidates forward plans)."""
        self.plan_version += 1


class Module:
    """Base class for neural-network components.

    Parameters (``Parameter`` attributes) and sub-modules (``Module``
    attributes, or lists of modules) are discovered by attribute
    traversal, mirroring the familiar torch.nn semantics: assignment is
    registration.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, value in vars(self).items():
            if name.startswith("_module_"):
                name = name[len("_module_"):]
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{index}.")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{index}", item

    def parameters(self) -> List[Parameter]:
        """All trainable parameters, depth-first."""
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """This module and all sub-modules, depth-first."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------ #
    # Training state
    # ------------------------------------------------------------------ #

    def zero_grad(self) -> None:
        """Clear gradient buffers of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        """Switch this module tree to training mode (dropout active)."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Switch this module tree to inference mode."""
        for module in self.modules():
            module.training = False
        return self

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return int(np.sum([p.size for p in self.parameters()]))

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters in place; names and shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ValidationError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValidationError(
                    f"parameter {name}: shape {value.shape} does not match "
                    f"{param.data.shape}"
                )
            param.data = value.copy()
            param.bump_plan_version()

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #

    def forward(self, *args, **kwargs):
        """Compute the module's output; subclasses must override."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
