"""First-order optimisers: SGD (with momentum) and Adam."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  Parameters without gradients are skipped.
    """
    if max_norm <= 0:
        raise ValidationError(f"max_norm must be > 0, got {max_norm}")
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float(np.sum(grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for grad in grads:
            grad *= scale
    return norm


class Optimizer:
    """Base optimiser over a list of parameters."""

    def __init__(self, parameters: Sequence[Parameter], lr: float):
        if lr <= 0:
            raise ValidationError(f"learning rate must be > 0, got {lr}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValidationError("optimizer needs at least one parameter")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValidationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            if self.momentum > 0.0:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                grad = velocity
            param.data = param.data - self.lr * grad
            param.bump_plan_version()


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction and optional weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValidationError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        correction1 = 1.0 - self.beta1**self._step_count
        correction2 = 1.0 - self.beta2**self._step_count
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            key = id(param)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad**2
            self._m[key] = m
            self._v[key] = v
            m_hat = m / correction1
            v_hat = v / correction2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            param.bump_plan_version()
