"""Recurrent layers: LSTM cell, (masked) LSTM, and bidirectional LSTM.

Implements the paper's Eq. (16)–(21): forget/input/output gates with a
tanh candidate.  Sequences are batched as ``(B, T, D)`` with a float mask
``(B, T)`` (1 for real steps, 0 for padding); masked steps leave the
hidden and cell state unchanged, so the final state of a padded sequence
equals the state after its last real step.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.nn import functional as F
from repro.nn.init import xavier_uniform, zeros
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["LSTMCell", "LSTM", "BiLSTM"]


class LSTMCell(Module):
    """One LSTM step: fused gate projection ``[i, f, g, o]``.

    The forget-gate bias is initialised to 1, the standard trick that
    keeps memory open early in training.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: "int | np.random.Generator | None" = None,
    ):
        super().__init__()
        if input_dim <= 0 or hidden_dim <= 0:
            raise ValidationError(
                f"LSTMCell dims must be positive, got ({input_dim}, {hidden_dim})"
            )
        from repro.utils.rng import as_generator

        generator = as_generator(rng)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.weight = Parameter(
            xavier_uniform((input_dim + hidden_dim, 4 * hidden_dim), generator)
        )
        bias = zeros(4 * hidden_dim)
        bias[hidden_dim : 2 * hidden_dim] = 1.0  # forget-gate bias
        self.bias = Parameter(bias)

    def forward(
        self, x: Tensor, state: Tuple[Tensor, Tensor]
    ) -> Tuple[Tensor, Tensor]:
        """One step: ``x`` is (B, D); returns the new ``(h, c)``."""
        h_prev, c_prev = state
        combined = F.concatenate([x, h_prev], axis=1)
        gates = F.add(F.matmul(combined, self.weight), self.bias)
        H = self.hidden_dim
        i_gate = F.sigmoid(gates[:, 0 * H : 1 * H])
        f_gate = F.sigmoid(gates[:, 1 * H : 2 * H])
        g_cand = F.tanh(gates[:, 2 * H : 3 * H])
        o_gate = F.sigmoid(gates[:, 3 * H : 4 * H])
        c_new = F.add(F.multiply(f_gate, c_prev), F.multiply(i_gate, g_cand))
        h_new = F.multiply(o_gate, F.tanh(c_new))
        return h_new, c_new


class LSTM(Module):
    """A unidirectional masked LSTM over ``(B, T, D)`` sequences."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: "int | np.random.Generator | None" = None,
        reverse: bool = False,
    ):
        super().__init__()
        self.cell = LSTMCell(input_dim, hidden_dim, rng=rng)
        self.hidden_dim = hidden_dim
        self.reverse = reverse

    def forward(
        self,
        x: Tensor,
        mask: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Tensor]:
        """Run the sequence; returns ``(outputs (B,T,H), final_h (B,H))``.

        ``mask`` is a constant (B, T) float array; masked steps freeze
        the recurrent state.
        """
        if x.ndim != 3:
            raise ValidationError(f"LSTM input must be (B, T, D), got {x.shape}")
        batch, steps, _ = x.shape
        if mask is None:
            mask = np.ones((batch, steps), dtype=np.float64)
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != (batch, steps):
            raise ValidationError(
                f"mask shape {mask.shape} does not match sequence {(batch, steps)}"
            )

        h = Tensor(np.zeros((batch, self.hidden_dim)))
        c = Tensor(np.zeros((batch, self.hidden_dim)))
        outputs: List[Tensor] = [None] * steps  # type: ignore[list-item]
        time_order = range(steps - 1, -1, -1) if self.reverse else range(steps)
        for t in time_order:
            x_t = x[:, t, :]
            keep = Tensor(mask[:, t : t + 1])
            drop = Tensor(1.0 - mask[:, t : t + 1])
            h_new, c_new = self.cell(x_t, (h, c))
            h = F.add(F.multiply(keep, h_new), F.multiply(drop, h))
            c = F.add(F.multiply(keep, c_new), F.multiply(drop, c))
            outputs[t] = h
        stacked = F.stack(outputs, axis=1)
        return stacked, h


class BiLSTM(Module):
    """Bidirectional LSTM; final state is ``[h_forward ; h_backward]``."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: "int | np.random.Generator | None" = None,
    ):
        super().__init__()
        from repro.utils.rng import as_generator

        generator = as_generator(rng)
        self.forward_lstm = LSTM(input_dim, hidden_dim, rng=generator)
        self.backward_lstm = LSTM(input_dim, hidden_dim, rng=generator, reverse=True)
        self.hidden_dim = hidden_dim

    def forward(
        self,
        x: Tensor,
        mask: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Tensor]:
        """Returns ``(outputs (B,T,2H), final (B,2H))``."""
        fwd_outputs, fwd_final = self.forward_lstm(x, mask)
        bwd_outputs, bwd_final = self.backward_lstm(x, mask)
        outputs = F.concatenate([fwd_outputs, bwd_outputs], axis=2)
        final = F.concatenate([fwd_final, bwd_final], axis=1)
        return outputs, final
