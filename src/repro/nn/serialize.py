"""Persistence for module parameters (JSON + base64 buffers)."""

from __future__ import annotations

from pathlib import Path

from repro.nn.module import Module
from repro.utils.serialization import load_arrays, save_arrays

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: "str | Path") -> None:
    """Write ``module``'s parameters to ``path``."""
    save_arrays(path, module.state_dict())


def load_module(module: Module, path: "str | Path") -> Module:
    """Load parameters saved by :func:`save_module` into ``module``.

    The module must already be constructed with matching architecture;
    returns it for fluent use.
    """
    module.load_state_dict(load_arrays(path))
    return module
