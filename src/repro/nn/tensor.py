"""A reverse-mode automatic-differentiation engine over numpy arrays.

This is the substrate every neural model in the library (MLPs, LSTMs,
attention, GFN/GCN/DiffPool) is built on — the reproduction's stand-in
for PyTorch.  A :class:`Tensor` wraps an ``ndarray``, records the
operations that produced it, and :meth:`Tensor.backward` walks the tape in
reverse topological order accumulating gradients.

Design notes
------------
- Gradients are dense float64 ndarrays; ``grad`` is ``None`` until first
  accumulation.
- Broadcasting in elementwise ops is handled by summing gradient
  contributions back onto the original shape (:func:`unbroadcast`).
- Graph edges are only recorded while ``autograd`` is enabled and at
  least one input requires a gradient, so inference is allocation-lean.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AutogradError

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "unbroadcast", "as_tensor"]

# Context-local so ``no_grad()`` in one thread / async task (the serving
# miss path, ``async_score``) cannot flip tape recording under a trainer
# running concurrently in another context.  Fresh threads start with the
# default (enabled), matching the previous module-global behaviour for
# single-threaded code.
_GRAD_ENABLED: ContextVar[bool] = ContextVar("grad_enabled", default=True)


@contextmanager
def no_grad() -> Iterator[None]:
    """Context manager disabling tape recording (inference mode)."""
    token = _GRAD_ENABLED.set(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.reset(token)


def is_grad_enabled() -> bool:
    """Whether operations currently record the autograd tape."""
    return _GRAD_ENABLED.get()


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A differentiable numpy array.

    Parameters
    ----------
    data:
        Array-like; stored as float64.
    requires_grad:
        Whether gradients should accumulate into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents
        self._backward = _backward

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def item(self) -> float:
        """The single scalar value (errors on non-scalars)."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    def _item_error(self) -> float:
        raise AutogradError(f"item() requires a scalar, got shape {self.shape}")

    def numpy(self) -> np.ndarray:
        """The raw ndarray (shared, do not mutate during training)."""
        return self.data

    def detach(self) -> "Tensor":
        """A view of the data cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------------ #
    # Autograd machinery
    # ------------------------------------------------------------------ #

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        """Reset the gradient buffer."""
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        ``grad`` defaults to 1 for scalars; non-scalar roots require an
        explicit output gradient.
        """
        if grad is None:
            if self.data.size != 1:
                raise AutogradError(
                    "backward() without an explicit gradient requires a "
                    f"scalar output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise AutogradError(
                    f"output gradient shape {grad.shape} does not match "
                    f"tensor shape {self.shape}"
                )

        order = self._topological_order()
        self.accumulate_grad(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _topological_order(self) -> List["Tensor"]:
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    # ------------------------------------------------------------------ #
    # Operator overloads (implemented in repro.nn.functional)
    # ------------------------------------------------------------------ #

    def __add__(self, other):
        from repro.nn import functional as F

        return F.add(self, other)

    __radd__ = __add__

    def __mul__(self, other):
        from repro.nn import functional as F

        return F.multiply(self, other)

    __rmul__ = __mul__

    def __neg__(self):
        from repro.nn import functional as F

        return F.negate(self)

    def __sub__(self, other):
        from repro.nn import functional as F

        return F.add(self, F.negate(as_tensor(other)))

    def __rsub__(self, other):
        from repro.nn import functional as F

        return F.add(as_tensor(other), F.negate(self))

    def __truediv__(self, other):
        from repro.nn import functional as F

        return F.divide(self, other)

    def __rtruediv__(self, other):
        from repro.nn import functional as F

        return F.divide(as_tensor(other), self)

    def __matmul__(self, other):
        from repro.nn import functional as F

        return F.matmul(self, other)

    def __pow__(self, exponent: float):
        from repro.nn import functional as F

        return F.power(self, exponent)

    def __getitem__(self, key):
        from repro.nn import functional as F

        return F.take(self, key)

    def sum(self, axis=None, keepdims: bool = False):
        """Differentiable sum over ``axis`` (all elements when None)."""
        from repro.nn import functional as F

        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        """Differentiable mean over ``axis``."""
        from repro.nn import functional as F

        return F.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        """Differentiable reshape (accepts a tuple or varargs)."""
        from repro.nn import functional as F

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return F.reshape(self, shape)

    def transpose(self, axes: Optional[Sequence[int]] = None):
        """Differentiable dimension permutation (reversed when None)."""
        from repro.nn import functional as F

        return F.transpose(self, axes)

    @property
    def T(self):
        return self.transpose()


def as_tensor(value) -> Tensor:
    """Coerce numbers / arrays / tensors to a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
