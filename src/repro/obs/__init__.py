"""Unified observability for the serving stack: metrics + tracing.

``repro.obs`` is the one instrumentation surface the rest of the repo
talks to.  It owns a process-global
:class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
fixed-bucket histograms; lock-striped updates; JSON / Prometheus
export) and a process-global :class:`~repro.obs.tracing.Tracer`
(contextvars-propagated spans, bounded ring buffer, deterministic
sampling).  Everything is stdlib-only and import-cycle-free, so any
layer — ``serve``, ``graphs``, ``nn.inference``, ``chain.store`` —
can instrument itself without architectural knots.

Typical instrumentation::

    from repro import obs

    _REQUESTS = obs.counter("serve_requests_total")

    def score(self, addresses):
        with obs.span("serve.score"):
            _REQUESTS.inc()
            ...

Cross-process requests piggyback on existing IPC: the parent captures
:func:`current_context` into the worker ``build`` message, the worker
runs under :func:`span_from_context` and ships
:func:`drain_for_shipping` back with its result, and the parent folds
it in with :func:`absorb` — counters exactly once, spans into the
same trace tree.  The whole layer turns into near-zero-cost no-ops
under :func:`set_enabled` (the module-level flag is checked before
any span allocation, and every metric update checks a shared switch).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
    render_json,
    render_prometheus,
)
from repro.obs.tracing import Span, Tracer, _NOOP

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "DEFAULT_BUCKETS",
    "render_json",
    "render_prometheus",
    "parse_prometheus",
    "enabled",
    "set_enabled",
    "configure",
    "registry",
    "tracer",
    "counter",
    "gauge",
    "histogram",
    "span",
    "span_from_context",
    "current_context",
    "snapshot",
    "export_traces",
    "export_trace_jsonl",
    "drain_for_shipping",
    "absorb",
    "reset",
]

_REGISTRY = MetricsRegistry()
_TRACER = Tracer()

#: Module-level master switch — checked before any span allocation.
_ENABLED = True


def enabled() -> bool:
    """Whether the observability layer is currently recording."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Flip the master switch; returns the previous state.

    Disabling stops metric updates (each checks a shared switch) and
    makes :func:`span` return a shared no-op context manager before
    allocating anything, so steady-state serving pays only a couple
    of attribute checks per instrumented site.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    _REGISTRY.set_enabled(flag)
    return previous


def configure(sample_rate: Optional[float] = None,
              ring_capacity: Optional[int] = None) -> None:
    """Adjust trace sampling rate and/or span ring capacity."""
    _TRACER.configure(sample_rate=sample_rate, ring_capacity=ring_capacity)


def registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def counter(name: str) -> Counter:
    """The process-global counter ``name`` (registered on first use)."""
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """The process-global gauge ``name`` (registered on first use)."""
    return _REGISTRY.gauge(name)


def histogram(name: str, buckets=None) -> Histogram:
    """The process-global histogram ``name`` (registered on first use)."""
    return _REGISTRY.histogram(name, buckets)


def span(name: str):
    """A context manager timing ``name`` in the current request tree.

    The only sanctioned way to open a span (``with obs.span(...):`` —
    pinned by the ``obs-discipline`` lint rule).  Returns a shared
    no-op immediately when the layer is disabled.
    """
    if not _ENABLED:
        return _NOOP
    return _TRACER.span(name)


def span_from_context(name: str, context: Optional[Tuple[str, str]]):
    """A span parented to a remote process's :func:`current_context`."""
    if not _ENABLED:
        return _NOOP
    return _TRACER.span_from_context(name, context)


def current_context() -> Optional[Tuple[str, str]]:
    """The active ``(trace_id, span_id)`` pair, or ``None``.

    Picklable by construction — ship it inside an existing IPC
    message and hand it to :func:`span_from_context` on the far side.
    """
    if not _ENABLED:
        return None
    return _TRACER.current_context()


def snapshot() -> Dict[str, Dict]:
    """A plain-dict snapshot of the process-global registry."""
    return _REGISTRY.snapshot()


def export_traces() -> List[Dict]:
    """Finished spans as nested per-trace trees."""
    return _TRACER.export_traces()


def export_trace_jsonl(path: str) -> int:
    """Write the finished traces to ``path`` as JSON lines."""
    return _TRACER.export_jsonl(path)


def drain_for_shipping() -> Dict:
    """Worker-side delta payload: drained metrics + finished spans.

    Draining resets counters/histograms and empties the span ring, so
    shipping one payload per build result folds every update into the
    parent exactly once no matter how many results a worker returns.
    """
    return {
        "metrics": _REGISTRY.drain(),
        "spans": _TRACER.drain_spans(),
    }


def absorb(payload: Optional[Dict]) -> None:
    """Parent-side fold of a worker's :func:`drain_for_shipping`."""
    if not payload:
        return
    metrics = payload.get("metrics")
    if metrics:
        _REGISTRY.merge(metrics)
    spans = payload.get("spans")
    if spans:
        _TRACER.adopt(spans)


def reset() -> None:
    """Zero every metric and drop every span (registrations kept).

    Used by tests and benchmarks to isolate a measurement window, and
    by freshly forked shard workers so counters inherited from the
    parent's address space are not re-shipped as deltas.  The
    enabled/disabled state is left untouched.
    """
    _REGISTRY.reset()
    _TRACER.clear()
