"""Process-global metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately tiny and dependency-free.  Three metric
kinds cover the serving stack's needs:

- :class:`Counter` — monotonic event counts (``inc``);
- :class:`Gauge` — last-written level measurements (``set``/``add``);
- :class:`Histogram` — fixed upper-bound buckets plus sum/count
  (``observe``), Prometheus cumulative-``le`` style.

Updates are lock-striped: each metric is pinned to one of a small pool
of locks by a stable crc32 of its name, so unrelated hot-path updates
rarely contend while one metric's updates stay atomic.  Metric names
are validated once at registration (``snake_case``, enforced by the
``obs-discipline`` lint rule at the call sites too) and never parsed
on the hot path.

Export is a plain dict (:meth:`MetricsRegistry.snapshot`) renderable
as JSON (:func:`render_json`) or Prometheus text exposition format
(:func:`render_prometheus`, round-trippable via
:func:`parse_prometheus`).  Worker processes accumulate locally and
ship deltas with :meth:`MetricsRegistry.drain` — a snapshot that
atomically resets counters and histograms so repeated shipments fold
into the parent (:meth:`MetricsRegistry.merge`) exactly once.
"""

from __future__ import annotations

import bisect
import json
import re
import threading
import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "render_json",
    "render_prometheus",
    "parse_prometheus",
]

_NAME_PATTERN = re.compile(r"^[a-z][a-z0-9_]*$")

#: Default histogram upper bounds (seconds-scale latencies).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Number of stripe locks shared by all metrics of a registry.
_NUM_STRIPES = 8


class _Switch:
    """Shared mutable on/off flag checked by every metric update."""

    __slots__ = ("on",)

    def __init__(self, on: bool = True) -> None:
        self.on = bool(on)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "_lock", "_switch", "_value")

    def __init__(self, name: str, lock: threading.Lock,
                 switch: _Switch) -> None:
        self.name = name
        self._lock = lock
        self._switch = switch
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (no-op while the owning registry is disabled)."""
        if not self._switch.on:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        return self._value


class Gauge:
    """A level measurement: last write wins, deltas via :meth:`add`.

    ``_touched`` tracks whether the gauge has been written since the
    last :meth:`MetricsRegistry.drain` — a drained payload ships only
    touched gauges, so a worker that never writes a gauge cannot
    clobber the parent's level with its inherited zero.
    """

    __slots__ = ("name", "_lock", "_switch", "_value", "_touched")

    def __init__(self, name: str, lock: threading.Lock,
                 switch: _Switch) -> None:
        self.name = name
        self._lock = lock
        self._switch = switch
        self._value = 0.0
        self._touched = False

    def set(self, value: float) -> None:
        """Overwrite the gauge (no-op while disabled)."""
        if not self._switch.on:
            return
        with self._lock:
            self._value = float(value)
            self._touched = True

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (no-op while disabled)."""
        if not self._switch.on:
            return
        with self._lock:
            self._value += float(delta)
            self._touched = True

    @property
    def value(self) -> float:
        """The current level."""
        return self._value


class Histogram:
    """Fixed-bucket distribution with cumulative-``le`` export.

    ``buckets`` are the finite upper bounds; an implicit ``+Inf``
    bucket catches the overflow, so ``counts`` has ``len(buckets)+1``
    cells.  Exported counts are cumulative (Prometheus convention).
    """

    __slots__ = ("name", "buckets", "_lock", "_switch", "_counts", "_sum")

    def __init__(self, name: str, buckets: Tuple[float, ...],
                 lock: threading.Lock, switch: _Switch) -> None:
        self.name = name
        self.buckets = buckets
        self._lock = lock
        self._switch = switch
        self._counts = [0] * (len(buckets) + 1)
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample (no-op while disabled)."""
        if not self._switch.on:
            return
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    @property
    def count(self) -> int:
        """Total number of recorded samples."""
        return sum(self._counts)

    @property
    def sum(self) -> float:
        """Sum of all recorded sample values."""
        return self._sum


class MetricsRegistry:
    """A named family of counters, gauges, and histograms.

    Metric accessors (:meth:`counter` / :meth:`gauge` /
    :meth:`histogram`) register on first use and return the same
    object afterwards; re-registering a name as a different kind (or a
    histogram with different buckets) raises
    :class:`~repro.errors.ValidationError`.  Hot call sites should
    keep the returned metric object rather than re-looking it up.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._switch = _Switch(enabled)
        self._meta_lock = threading.Lock()
        self._stripes = tuple(
            threading.Lock() for _ in range(_NUM_STRIPES)
        )
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def _stripe(self, name: str) -> threading.Lock:
        return self._stripes[
            zlib.crc32(name.encode("ascii")) % _NUM_STRIPES
        ]

    def _validate(self, name: str, kind: str) -> None:
        if not _NAME_PATTERN.match(name):
            raise ValidationError(
                f"metric name {name!r} is not snake_case "
                "(^[a-z][a-z0-9_]*$)"
            )
        for family, label in (
            (self._counters, "counter"),
            (self._gauges, "gauge"),
            (self._histograms, "histogram"),
        ):
            if label != kind and name in family:
                raise ValidationError(
                    f"metric {name!r} already registered as a {label}, "
                    f"cannot re-register as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, registering it on first use."""
        with self._meta_lock:
            metric = self._counters.get(name)
            if metric is None:
                self._validate(name, "counter")
                metric = Counter(name, self._stripe(name), self._switch)
                self._counters[name] = metric
            return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, registering it on first use."""
        with self._meta_lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._validate(name, "gauge")
                metric = Gauge(name, self._stripe(name), self._switch)
                self._gauges[name] = metric
            return metric

    def histogram(self, name: str,
                  buckets: Optional[Iterable[float]] = None) -> Histogram:
        """The histogram named ``name``, registering it on first use.

        ``buckets`` (finite upper bounds, strictly increasing) default
        to :data:`DEFAULT_BUCKETS`; passing different buckets for an
        already registered name raises.
        """
        bounds = (
            DEFAULT_BUCKETS if buckets is None else tuple(
                float(b) for b in buckets
            )
        )
        if list(bounds) != sorted(set(bounds)):
            raise ValidationError(
                f"histogram {name!r} buckets must be strictly "
                f"increasing, got {bounds}"
            )
        with self._meta_lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._validate(name, "histogram")
                metric = Histogram(
                    name, bounds, self._stripe(name), self._switch
                )
                self._histograms[name] = metric
            elif buckets is not None and metric.buckets != bounds:
                raise ValidationError(
                    f"histogram {name!r} already registered with "
                    f"buckets {metric.buckets}, got {bounds}"
                )
            return metric

    # ------------------------------------------------------------------ #
    # Enable / disable
    # ------------------------------------------------------------------ #

    @property
    def enabled(self) -> bool:
        """Whether updates are currently recorded."""
        return self._switch.on

    def set_enabled(self, flag: bool) -> None:
        """Turn recording on or off for every metric at once."""
        self._switch.on = bool(flag)

    # ------------------------------------------------------------------ #
    # Export / merge
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, Dict]:
        """A plain-dict copy of every metric's current state."""
        with self._meta_lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        out: Dict[str, Dict] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for metric in counters:
            with metric._lock:
                out["counters"][metric.name] = metric._value
        for metric in gauges:
            with metric._lock:
                out["gauges"][metric.name] = metric._value
        for metric in histograms:
            with metric._lock:
                out["histograms"][metric.name] = {
                    "buckets": list(metric.buckets),
                    "counts": list(metric._counts),
                    "sum": metric._sum,
                }
        return out

    def drain(self) -> Dict[str, Dict]:
        """Snapshot-and-reset for delta shipping.

        Counters and histograms are zeroed under their locks as they
        are read, so a sequence of ``drain()`` calls partitions the
        recorded activity: merging every drained snapshot into another
        registry folds each update in exactly once.  Gauges are levels,
        not flows: their values are reported rather than reset, and
        only gauges *written* since the last drain are shipped — an
        untouched gauge must not overwrite the receiver's level.
        """
        with self._meta_lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        out: Dict[str, Dict] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for metric in counters:
            with metric._lock:
                if metric._value:
                    out["counters"][metric.name] = metric._value
                metric._value = 0
        for metric in gauges:
            with metric._lock:
                if metric._touched:
                    out["gauges"][metric.name] = metric._value
                    metric._touched = False
        for metric in histograms:
            with metric._lock:
                if any(metric._counts):
                    out["histograms"][metric.name] = {
                        "buckets": list(metric.buckets),
                        "counts": list(metric._counts),
                        "sum": metric._sum,
                    }
                metric._counts = [0] * len(metric._counts)
                metric._sum = 0.0
        return out

    def merge(self, snapshot: Dict[str, Dict]) -> None:
        """Fold a snapshot/drain dict into this registry.

        Counters and histogram cells add; gauges take the incoming
        value (last write wins).  Metrics absent locally are
        registered on the fly, so a parent can absorb a worker's
        drain without pre-declaring every name.
        """
        for name, value in snapshot.get("counters", {}).items():
            metric = self.counter(name)
            with metric._lock:
                metric._value += int(value)
        for name, value in snapshot.get("gauges", {}).items():
            metric = self.gauge(name)
            with metric._lock:
                metric._value = float(value)
        for name, data in snapshot.get("histograms", {}).items():
            metric = self.histogram(name, data["buckets"])
            if len(data["counts"]) != len(metric._counts):
                raise ValidationError(
                    f"histogram {name!r} merge with mismatched bucket "
                    f"count {len(data['counts'])} != "
                    f"{len(metric._counts)}"
                )
            with metric._lock:
                for index, count in enumerate(data["counts"]):
                    metric._counts[index] += int(count)
                metric._sum += float(data["sum"])

    def reset(self) -> None:
        """Zero every metric in place (registrations are kept).

        Existing metric objects stay valid — call sites that cached a
        :class:`Counter` keep incrementing the same cell — so tests
        and benchmarks can isolate a measurement window.
        """
        with self._meta_lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        for metric in counters:
            with metric._lock:
                metric._value = 0
        for metric in gauges:
            with metric._lock:
                metric._value = 0.0
                metric._touched = False
        for metric in histograms:
            with metric._lock:
                metric._counts = [0] * len(metric._counts)
                metric._sum = 0.0


# ---------------------------------------------------------------------- #
# Renderers
# ---------------------------------------------------------------------- #


def render_json(snapshot: Dict[str, Dict], indent: int = 2) -> str:
    """Render a snapshot dict as deterministic (sorted-key) JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def _format_bound(bound: float) -> str:
    return repr(float(bound))


def render_prometheus(snapshot: Dict[str, Dict]) -> str:
    """Render a snapshot in Prometheus text exposition format.

    Histogram bucket counts are emitted cumulatively with ``le``
    labels plus the ``+Inf`` bucket, ``_sum``, and ``_count`` series,
    matching what a Prometheus scraper expects.  The output parses
    back to the same snapshot via :func:`parse_prometheus`.
    """
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        value = snapshot["counters"][name]
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {int(value)}")
    for name in sorted(snapshot.get("gauges", {})):
        value = snapshot["gauges"][name]
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {repr(float(value))}")
    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            cumulative += int(count)
            lines.append(
                f'{name}_bucket{{le="{_format_bound(bound)}"}} '
                f"{cumulative}"
            )
        cumulative += int(data["counts"][-1])
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {repr(float(data['sum']))}")
        lines.append(f"{name}_count {cumulative}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, Dict]:
    """Parse :func:`render_prometheus` output back into a snapshot.

    Only the subset this module emits is supported (one unlabeled
    series per counter/gauge, cumulative ``le`` buckets per
    histogram); it exists so the exposition format is pinned by a
    round-trip test rather than by eyeball.
    """
    out: Dict[str, Dict] = {"counters": {}, "gauges": {}, "histograms": {}}
    kinds: Dict[str, str] = {}
    buckets: Dict[str, List[Tuple[str, int]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split()
            kinds[name] = kind
            continue
        if line.startswith("#"):
            continue
        series, value = line.rsplit(" ", 1)
        if "{" in series:
            base, label = series.split("{", 1)
            if not base.endswith("_bucket"):
                raise ValidationError(
                    f"unsupported labeled series {series!r}"
                )
            name = base[: -len("_bucket")]
            bound = label[len('le="'):-len('"}')]
            buckets.setdefault(name, []).append((bound, int(value)))
            continue
        if series.endswith("_sum") and kinds.get(series[:-4]) == "histogram":
            name = series[:-4]
            out["histograms"].setdefault(name, {})["sum"] = float(value)
            continue
        if (series.endswith("_count")
                and kinds.get(series[:-6]) == "histogram"):
            continue
        kind = kinds.get(series)
        if kind == "counter":
            out["counters"][series] = int(value)
        elif kind == "gauge":
            out["gauges"][series] = float(value)
        else:
            raise ValidationError(
                f"series {series!r} has no preceding # TYPE line"
            )
    for name, pairs in buckets.items():
        bounds = [float(b) for b, _ in pairs if b != "+Inf"]
        cumulative = [c for _, c in pairs]
        counts = [cumulative[0]] + [
            cumulative[i] - cumulative[i - 1]
            for i in range(1, len(cumulative))
        ]
        out["histograms"].setdefault(name, {}).update(
            {"buckets": bounds, "counts": counts}
        )
        out["histograms"][name].setdefault("sum", 0.0)
    return out
