"""Request tracing: contextvars-propagated spans with a bounded ring.

A *span* is one timed region of a request (``with obs.span("serve.
build")``).  Spans opened while another span is active become its
children via a :data:`contextvars.ContextVar`, so one ``score`` /
``async_score`` request yields a single tree no matter how many
helpers it flows through.  Crossing a process boundary works by
value: the parent captures :meth:`Tracer.current_context` (a plain
picklable tuple), ships it inside the existing worker ``build``
message, and the worker opens its spans under that remote parent with
:meth:`Tracer.span_from_context`; the worker's finished spans travel
back piggybacked on the build result and are adopted into the parent
ring (:meth:`Tracer.adopt`), giving one exportable tree spanning both
processes.

Finished spans land in a bounded ring buffer (old traces fall off the
back) and export as nested trees (:meth:`Tracer.export_traces`) or
JSON lines, one trace per line (:meth:`Tracer.export_jsonl`).
Sampling is deterministic — a rate accumulator, not an RNG — and is
decided once per trace at the root: an unsampled root records nothing
and marks the whole context unsampled so descendants skip themselves
without fragmenting into new traces.  When tracing is disabled the
span entry points return a shared no-op context manager before
allocating anything.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer"]

#: The active span context of the current thread/async task.
_ACTIVE: ContextVar[Optional["_Context"]] = ContextVar(
    "repro_obs_active_span", default=None
)


class _Context:
    """Propagated span context: trace id, parent span id, sampled bit."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled


class _NoopSpan:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NOOP = _NoopSpan()


class Span:
    """One finished timed region; a record, not a context manager.

    Spans are only constructed inside ``repro.obs`` (enforced by the
    ``obs-discipline`` lint rule) — instrumented code opens them with
    ``with obs.span(name):`` and never touches this class directly.
    ``start``/``end`` are wall-clock epoch seconds so spans from
    different processes on one host order sensibly.
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "start", "end", "pid",
    )

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: Optional[str], start: float, end: float,
                 pid: int) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.pid = pid

    def to_dict(self) -> Dict:
        """A plain-dict form (picklable, JSON-serializable)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.end - self.start,
            "pid": self.pid,
        }


class _ActiveSpan:
    """Context manager recording one span into its tracer's ring."""

    __slots__ = (
        "_tracer", "_name", "_remote", "_token", "_ctx", "_parent_id",
        "_start",
    )

    def __init__(self, tracer: "Tracer", name: str,
                 remote: Optional[Tuple[str, str]] = None) -> None:
        self._tracer = tracer
        self._name = name
        self._remote = remote
        self._token = None
        self._ctx: Optional[_Context] = None
        self._parent_id: Optional[str] = None
        self._start = 0.0

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        if self._remote is not None:
            trace_id, parent_id = self._remote
            ctx = _Context(trace_id, tracer._next_id(), True)
        else:
            parent = _ACTIVE.get()
            if parent is None:
                sampled = tracer._sample()
                ctx = _Context(
                    tracer._next_id() if sampled else "",
                    tracer._next_id() if sampled else "",
                    sampled,
                )
                parent_id = None
            else:
                ctx = _Context(
                    parent.trace_id,
                    tracer._next_id() if parent.sampled else "",
                    parent.sampled,
                )
                parent_id = parent.span_id
        self._ctx = ctx
        self._parent_id = parent_id
        self._token = _ACTIVE.set(ctx)
        if ctx.sampled:
            self._start = time.time()
        return self

    def __exit__(self, *exc) -> None:
        _ACTIVE.reset(self._token)
        ctx = self._ctx
        if ctx is None or not ctx.sampled:
            return
        self._tracer._record(
            Span(
                self._name, ctx.trace_id, ctx.span_id, self._parent_id,
                self._start, time.time(), os.getpid(),
            )
        )


class Tracer:
    """Owns the finished-span ring, id generation, and sampling."""

    def __init__(self, ring_capacity: int = 4096,
                 sample_rate: float = 1.0) -> None:
        self._lock = threading.Lock()
        self._finished: "deque[Dict]" = deque(maxlen=int(ring_capacity))
        self._sequence = 0
        self._accumulator = 0.0
        self._sample_rate = float(sample_rate)

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #

    @property
    def sample_rate(self) -> float:
        """Fraction of root spans that start a recorded trace."""
        return self._sample_rate

    def configure(self, sample_rate: Optional[float] = None,
                  ring_capacity: Optional[int] = None) -> None:
        """Adjust sampling and/or ring capacity in place.

        Changing the capacity re-seats the ring and keeps the newest
        spans that fit; sampling only affects traces rooted after the
        call.
        """
        with self._lock:
            if sample_rate is not None:
                if not 0.0 <= sample_rate <= 1.0:
                    raise ValueError(
                        f"sample_rate must be in [0, 1], got {sample_rate}"
                    )
                self._sample_rate = float(sample_rate)
                self._accumulator = 0.0
            if ring_capacity is not None:
                self._finished = deque(
                    self._finished, maxlen=int(ring_capacity)
                )

    # ------------------------------------------------------------------ #
    # Span entry points
    # ------------------------------------------------------------------ #

    def span(self, name: str):
        """A context manager timing ``name`` under the active context."""
        return _ActiveSpan(self, name)

    def span_from_context(self, name: str,
                          context: Optional[Tuple[str, str]]):
        """A span parented to a remote (cross-process) context.

        ``context`` is a ``(trace_id, parent_span_id)`` pair captured
        by :meth:`current_context` in another process; ``None`` (the
        parent was unsampled or disabled) yields a no-op.
        """
        if context is None:
            return _NOOP
        return _ActiveSpan(self, name, remote=tuple(context))

    def current_context(self) -> Optional[Tuple[str, str]]:
        """The active ``(trace_id, span_id)``, picklable for shipping.

        ``None`` when no span is active or the trace is unsampled —
        receivers treat that as "do not record".
        """
        ctx = _ACTIVE.get()
        if ctx is None or not ctx.sampled:
            return None
        return (ctx.trace_id, ctx.span_id)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _next_id(self) -> str:
        with self._lock:
            self._sequence += 1
            sequence = self._sequence
        return f"{os.getpid():x}.{sequence:x}"

    def _sample(self) -> bool:
        with self._lock:
            self._accumulator += self._sample_rate
            if self._accumulator >= 1.0 - 1e-12:
                self._accumulator -= 1.0
                return True
            return False

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span.to_dict())

    # ------------------------------------------------------------------ #
    # Export / shipping
    # ------------------------------------------------------------------ #

    def finished_spans(self) -> List[Dict]:
        """A copy of the ring's span dicts, oldest first."""
        with self._lock:
            return list(self._finished)

    def drain_spans(self) -> List[Dict]:
        """Remove and return every finished span (delta shipping)."""
        with self._lock:
            spans = list(self._finished)
            self._finished.clear()
        return spans

    def adopt(self, spans: List[Dict]) -> None:
        """Append spans recorded elsewhere (a worker's drain)."""
        with self._lock:
            self._finished.extend(spans)

    def clear(self) -> None:
        """Drop every finished span."""
        with self._lock:
            self._finished.clear()

    def export_traces(self) -> List[Dict]:
        """Finished spans grouped per trace and nested into trees.

        Each entry is ``{"trace_id": ..., "spans": [roots...]}`` where
        every span dict gains a ``children`` list (sorted by start
        time).  A span whose parent fell off the ring (or lives in
        another process's ring) surfaces as an extra root of its
        trace rather than being dropped.
        """
        spans = self.finished_spans()
        by_trace: Dict[str, List[Dict]] = {}
        for span in spans:
            by_trace.setdefault(span["trace_id"], []).append(span)
        traces = []
        for trace_id, members in by_trace.items():
            nodes = {
                span["span_id"]: dict(span, children=[])
                for span in members
            }
            roots = []
            for span in members:
                node = nodes[span["span_id"]]
                parent = span.get("parent_id")
                if parent is not None and parent in nodes:
                    nodes[parent]["children"].append(node)
                else:
                    roots.append(node)
            for node in nodes.values():
                node["children"].sort(key=lambda child: child["start"])
            roots.sort(key=lambda root: root["start"])
            traces.append({"trace_id": trace_id, "spans": roots})
        return traces

    def export_jsonl(self, path: str) -> int:
        """Write one JSON line per trace tree; returns the trace count."""
        traces = self.export_traces()
        with open(path, "w", encoding="utf-8") as handle:
            for trace in traces:
                handle.write(json.dumps(trace, sort_keys=True))
                handle.write("\n")
        return len(traces)
