"""Address classification heads over graph-embedding sequences (§III-C)."""

from repro.seqmodels.heads import (
    HEAD_REGISTRY,
    AttentionHead,
    AvgPoolHead,
    BiLSTMHead,
    LSTMHead,
    MaxPoolHead,
    SequenceHead,
    SumPoolHead,
    build_head,
)
from repro.seqmodels import plans  # noqa: F401  (registers inference-plan lowerings)
from repro.seqmodels.trainer import (
    SequenceTrainingConfig,
    fit_sequence_classifier,
    pad_sequences,
    predict_proba_sequences,
    predict_sequences,
)

__all__ = [
    "HEAD_REGISTRY",
    "AttentionHead",
    "AvgPoolHead",
    "BiLSTMHead",
    "LSTMHead",
    "MaxPoolHead",
    "SequenceHead",
    "SumPoolHead",
    "build_head",
    "SequenceTrainingConfig",
    "fit_sequence_classifier",
    "pad_sequences",
    "predict_proba_sequences",
    "predict_sequences",
]
