"""Address-classification heads over graph-embedding sequences (§III-C).

An address with ``k`` transaction slices yields a sequence of ``k`` graph
embeddings; these heads map that variable-length sequence to a class.
Table III compares six combinations:

- **LSTM+MLP** (the paper's choice, Eq. 22) — forward-only recurrence,
  matching bitcoin's forward-temporal dependency;
- **BiLSTM+MLP** — bidirectional recurrence;
- **Attention+MLP** — learned softmax pooling;
- **SUM/AVG/MAX+MLP** — order-free pooling baselines.

All heads share the interface ``forward(x (B,T,D), mask (B,T)) → logits``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ValidationError
from repro.nn import functional as F
from repro.nn.attention import AttentionPooling
from repro.nn.layers import MLP
from repro.nn.module import Module
from repro.nn.rnn import BiLSTM, LSTM
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = [
    "SequenceHead",
    "LSTMHead",
    "BiLSTMHead",
    "AttentionHead",
    "SumPoolHead",
    "AvgPoolHead",
    "MaxPoolHead",
    "HEAD_REGISTRY",
    "build_head",
]

_MASK_OFFSET = 1e9


class SequenceHead(Module):
    """Base class: pooling strategy + shared MLP classifier."""

    def __init__(
        self,
        input_dim: int,
        num_classes: int,
        hidden_dim: int = 64,
        rng: "int | np.random.Generator | None" = None,
    ):
        super().__init__()
        if input_dim <= 0 or num_classes <= 0 or hidden_dim <= 0:
            raise ValidationError("head dims must be positive")
        self.input_dim = input_dim
        self.num_classes = num_classes
        self.hidden_dim = hidden_dim
        self._rng = as_generator(rng)

    def pool(self, x: Tensor, mask: np.ndarray) -> Tensor:
        """Reduce ``(B, T, D)`` to a fixed ``(B, P)`` representation."""
        raise NotImplementedError

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        if x.ndim != 3:
            raise ValidationError(f"head input must be (B, T, D), got {x.shape}")
        if mask is None:
            mask = np.ones(x.shape[:2], dtype=np.float64)
        pooled = self.pool(x, np.asarray(mask, dtype=np.float64))
        return self.classifier(pooled)


class LSTMHead(SequenceHead):
    """LSTM over the slice sequence; final hidden state → MLP (Eq. 22)."""

    def __init__(self, input_dim, num_classes, hidden_dim=64, rng=None):
        super().__init__(input_dim, num_classes, hidden_dim, rng)
        self.lstm = LSTM(input_dim, hidden_dim, rng=self._rng)
        self.classifier = MLP(
            [hidden_dim, hidden_dim, num_classes], rng=self._rng
        )

    def pool(self, x: Tensor, mask: np.ndarray) -> Tensor:
        _, final = self.lstm(x, mask)
        return final


class BiLSTMHead(SequenceHead):
    """Bidirectional LSTM; concatenated final states → MLP."""

    def __init__(self, input_dim, num_classes, hidden_dim=64, rng=None):
        super().__init__(input_dim, num_classes, hidden_dim, rng)
        self.lstm = BiLSTM(input_dim, hidden_dim, rng=self._rng)
        self.classifier = MLP(
            [2 * hidden_dim, hidden_dim, num_classes], rng=self._rng
        )

    def pool(self, x: Tensor, mask: np.ndarray) -> Tensor:
        _, final = self.lstm(x, mask)
        return final


class AttentionHead(SequenceHead):
    """Additive attention pooling → MLP."""

    def __init__(self, input_dim, num_classes, hidden_dim=64, rng=None):
        super().__init__(input_dim, num_classes, hidden_dim, rng)
        self.attention = AttentionPooling(input_dim, hidden_dim, rng=self._rng)
        self.classifier = MLP(
            [input_dim, hidden_dim, num_classes], rng=self._rng
        )

    def pool(self, x: Tensor, mask: np.ndarray) -> Tensor:
        return self.attention(x, mask)


class SumPoolHead(SequenceHead):
    """Masked SUM pooling → MLP."""

    def __init__(self, input_dim, num_classes, hidden_dim=64, rng=None):
        super().__init__(input_dim, num_classes, hidden_dim, rng)
        self.classifier = MLP(
            [input_dim, hidden_dim, num_classes], rng=self._rng
        )

    def pool(self, x: Tensor, mask: np.ndarray) -> Tensor:
        keep = Tensor(mask[:, :, np.newaxis])
        return F.sum(F.multiply(x, keep), axis=1)


class AvgPoolHead(SequenceHead):
    """Masked mean pooling → MLP."""

    def __init__(self, input_dim, num_classes, hidden_dim=64, rng=None):
        super().__init__(input_dim, num_classes, hidden_dim, rng)
        self.classifier = MLP(
            [input_dim, hidden_dim, num_classes], rng=self._rng
        )

    def pool(self, x: Tensor, mask: np.ndarray) -> Tensor:
        keep = Tensor(mask[:, :, np.newaxis])
        total = F.sum(F.multiply(x, keep), axis=1)
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        return F.divide(total, Tensor(counts))


class MaxPoolHead(SequenceHead):
    """Masked max pooling → MLP."""

    def __init__(self, input_dim, num_classes, hidden_dim=64, rng=None):
        super().__init__(input_dim, num_classes, hidden_dim, rng)
        self.classifier = MLP(
            [input_dim, hidden_dim, num_classes], rng=self._rng
        )

    def pool(self, x: Tensor, mask: np.ndarray) -> Tensor:
        offset = Tensor((mask[:, :, np.newaxis] - 1.0) * _MASK_OFFSET)
        return F.max(F.add(x, offset), axis=1)


HEAD_REGISTRY = {
    "lstm": LSTMHead,
    "bilstm": BiLSTMHead,
    "attention": AttentionHead,
    "sum": SumPoolHead,
    "avg": AvgPoolHead,
    "max": MaxPoolHead,
}


def build_head(
    name: str,
    input_dim: int,
    num_classes: int,
    hidden_dim: int = 64,
    rng: "int | np.random.Generator | None" = None,
) -> SequenceHead:
    """Construct a head by registry name (``lstm``, ``bilstm``, ...)."""
    if name not in HEAD_REGISTRY:
        raise ValidationError(
            f"unknown head {name!r}; options: {sorted(HEAD_REGISTRY)}"
        )
    return HEAD_REGISTRY[name](input_dim, num_classes, hidden_dim, rng)
