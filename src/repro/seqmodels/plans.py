"""Plan lowerings for the sequence-classification heads.

Importing this module registers a ``forward`` lowering for every head in
:data:`repro.seqmodels.heads.HEAD_REGISTRY`, so
:func:`repro.seqmodels.trainer.predict_proba_sequences` — and through it
the serving ``_score_sequences`` tail, the cluster workers, and
per-epoch training evaluation — execute compiled plans instead of tape
forwards.

Recurrent heads only consume the LSTM's final state, so their lowerings
skip the stacked per-timestep outputs entirely (dead-code elimination;
the surviving values are bit-identical to the tape).
"""

from __future__ import annotations

from repro.nn.inference.engine import register_lowering
from repro.nn.inference.lowerings import (
    _emit_attention,
    _emit_bilstm,
    _emit_lstm,
    _prepare_sequence,
    emit,
    emit_masked_avg,
    emit_masked_max,
    emit_masked_sum,
)
from repro.seqmodels.heads import (
    AttentionHead,
    AvgPoolHead,
    BiLSTMHead,
    LSTMHead,
    MaxPoolHead,
    SumPoolHead,
)

__all__ = []


@register_lowering(LSTMHead, prepare=_prepare_sequence)
def _build_lstm_head(module, b, views, objects, extras):
    _, final = _emit_lstm(module.lstm, b, views[0], views[1], need_outputs=False)
    return emit(module.classifier, b, final)


@register_lowering(BiLSTMHead, prepare=_prepare_sequence)
def _build_bilstm_head(module, b, views, objects, extras):
    _, final = _emit_bilstm(
        module.lstm, b, views[0], views[1], need_outputs=False
    )
    return emit(module.classifier, b, final)


@register_lowering(AttentionHead, prepare=_prepare_sequence)
def _build_attention_head(module, b, views, objects, extras):
    pooled = _emit_attention(module.attention, b, views[0], views[1])
    return emit(module.classifier, b, pooled)


@register_lowering(SumPoolHead, prepare=_prepare_sequence)
def _build_sum_head(module, b, views, objects, extras):
    pooled = emit_masked_sum(b, views[0], views[1])
    return emit(module.classifier, b, pooled)


@register_lowering(AvgPoolHead, prepare=_prepare_sequence)
def _build_avg_head(module, b, views, objects, extras):
    pooled = emit_masked_avg(b, views[0], views[1])
    return emit(module.classifier, b, pooled)


@register_lowering(MaxPoolHead, prepare=_prepare_sequence)
def _build_max_head(module, b, views, objects, extras):
    pooled = emit_masked_max(b, views[0], views[1])
    return emit(module.classifier, b, pooled)
