"""Training and inference over variable-length embedding sequences."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.eval.curves import TrainingCurve
from repro.eval.metrics import precision_recall_f1
from repro.nn.inference import plan_call
from repro.nn.loss import cross_entropy
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor, no_grad
from repro.seqmodels.heads import SequenceHead
from repro.utils.rng import as_generator
from repro.utils.timer import Stopwatch

__all__ = [
    "pad_sequences",
    "SequenceTrainingConfig",
    "fit_sequence_classifier",
    "predict_sequences",
    "predict_proba_sequences",
]


def pad_sequences(
    sequences: Sequence[np.ndarray],
    max_length: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Right-pad ``(k_i, D)`` sequences into ``(B, T, D)`` plus a mask.

    Sequences longer than ``max_length`` keep their most recent steps
    (the newest slices carry the freshest behaviour).
    """
    if not sequences:
        raise ValidationError("pad_sequences needs at least one sequence")
    dims = {seq.shape[1] for seq in sequences}
    if len(dims) != 1:
        raise ValidationError(f"inconsistent embedding dims: {dims}")
    dim = dims.pop()
    lengths = [seq.shape[0] for seq in sequences]
    if any(length == 0 for length in lengths):
        raise ValidationError("sequences must be non-empty")
    longest = max(lengths)
    horizon = longest if max_length is None else min(longest, max_length)
    batch = np.zeros((len(sequences), horizon, dim), dtype=np.float64)
    mask = np.zeros((len(sequences), horizon), dtype=np.float64)
    for row, seq in enumerate(sequences):
        clipped = seq[-horizon:]
        batch[row, : clipped.shape[0]] = clipped
        mask[row, : clipped.shape[0]] = 1.0
    return batch, mask


@dataclass(frozen=True)
class SequenceTrainingConfig:
    """Hyper-parameters for the address-classification stage."""

    epochs: int = 25
    batch_size: int = 32
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    seed: int = 0
    class_weighted: bool = True
    max_sequence_length: Optional[int] = 32
    grad_clip: Optional[float] = 5.0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValidationError(f"epochs must be > 0, got {self.epochs}")
        if self.batch_size <= 0:
            raise ValidationError(f"batch_size must be > 0, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ValidationError(
                f"learning_rate must be > 0, got {self.learning_rate}"
            )
        if self.grad_clip is not None and self.grad_clip <= 0:
            raise ValidationError(
                f"grad_clip must be > 0 or None, got {self.grad_clip}"
            )


def _class_weights(labels: np.ndarray, num_classes: int) -> np.ndarray:
    counts = np.bincount(labels, minlength=num_classes).astype(np.float64)
    present = counts > 0
    weights = np.zeros(num_classes)
    weights[present] = 1.0 / counts[present]
    return weights / (weights[present].mean() if present.any() else 1.0)


def fit_sequence_classifier(
    model: SequenceHead,
    sequences: Sequence[np.ndarray],
    labels: np.ndarray,
    config: Optional[SequenceTrainingConfig] = None,
    eval_sequences: Optional[Sequence[np.ndarray]] = None,
    eval_labels: Optional[np.ndarray] = None,
    curve_name: str = "",
) -> TrainingCurve:
    """Train a head on embedding sequences; optionally track an F1 curve."""
    config = config or SequenceTrainingConfig()
    labels = np.asarray(labels, dtype=np.int64)
    if len(sequences) != len(labels):
        raise ValidationError("sequences and labels must align")
    if len(sequences) == 0:
        raise ValidationError("fit_sequence_classifier needs data")

    weights = (
        _class_weights(labels, model.num_classes) if config.class_weighted else None
    )
    optimizer = Adam(
        model.parameters(),
        lr=config.learning_rate,
        weight_decay=config.weight_decay,
    )
    rng = as_generator(config.seed)
    curve = TrainingCurve(model_name=curve_name or type(model).__name__)
    watch = Stopwatch()
    train_seconds = 0.0
    indices = np.arange(len(sequences))

    for epoch in range(1, config.epochs + 1):
        # As in fit_graph_classifier: the curve's runtime axis (Figure 6)
        # must exclude the per-epoch evaluation below.
        watch.reset()
        model.train()
        rng.shuffle(indices)
        for start in range(0, len(indices), config.batch_size):
            chosen = indices[start : start + config.batch_size]
            batch, mask = pad_sequences(
                [sequences[i] for i in chosen], config.max_sequence_length
            )
            logits = model(Tensor(batch), mask)
            loss = cross_entropy(logits, labels[chosen], class_weights=weights)
            optimizer.zero_grad()
            loss.backward()
            if config.grad_clip is not None:
                clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
        train_seconds += watch.elapsed()
        if eval_sequences is not None and eval_labels is not None:
            predictions = predict_sequences(
                model, eval_sequences, config.max_sequence_length
            )
            report = precision_recall_f1(
                np.asarray(eval_labels), predictions, num_classes=model.num_classes
            )
            curve.add(epoch=epoch, runtime_seconds=train_seconds, f1=report.weighted_f1)
    return curve


def predict_proba_sequences(
    model: SequenceHead,
    sequences: Sequence[np.ndarray],
    max_sequence_length: Optional[int] = 32,
    batch_size: int = 64,
) -> np.ndarray:
    """Softmax class probabilities per sequence.

    Each padded batch runs through the head's compiled forward plan when
    one is registered (:mod:`repro.seqmodels.plans`), so serving scores
    and per-epoch training evaluation share the tapeless fast path; the
    tape forward remains as a bit-identical fallback.
    """
    model.eval()
    outputs: List[np.ndarray] = []
    with no_grad():
        for start in range(0, len(sequences), batch_size):
            batch, mask = pad_sequences(
                list(sequences[start : start + batch_size]), max_sequence_length
            )
            logits = plan_call(model, "forward", batch, mask)
            if logits is None:
                logits = model(Tensor(batch), mask).data
            shifted = logits - logits.max(axis=1, keepdims=True)
            exps = np.exp(shifted)
            outputs.append(exps / exps.sum(axis=1, keepdims=True))
    if not outputs:
        return np.zeros((0, model.num_classes))
    return np.concatenate(outputs, axis=0)


def predict_sequences(
    model: SequenceHead,
    sequences: Sequence[np.ndarray],
    max_sequence_length: Optional[int] = 32,
    batch_size: int = 64,
) -> np.ndarray:
    """Hard class predictions per sequence."""
    probabilities = predict_proba_sequences(
        model, sequences, max_sequence_length, batch_size
    )
    return np.argmax(probabilities, axis=1)
