"""The serving layer: cached, batched, sharded address scoring.

Wraps a chain index, the graph-construction pipeline, and a trained
classifier behind one ``score(addresses)`` API with slice-graph caching,
incremental invalidation on block append, worker-pool construction, and
block-diagonal batched inference
(:class:`~repro.serve.service.AddressScoringService`) — plus the
scale-out layer above it
(:class:`~repro.serve.cluster.ClusterScoringService`): deterministic
address-prefix sharding (:class:`~repro.serve.router.ShardRouter`),
live multi-process miss construction with streamed block-append
ingestion, per-shard locking so disjoint queries overlap, an asyncio
front end that micro-batches concurrent requests, and warm-cache
persistence keyed by pipeline fingerprint and encoder version
(:class:`~repro.serve.store.CacheStore`).
"""

from repro.serve.cache import CacheKey, CacheStats, SliceGraphCache
from repro.serve.cluster import ClusterConfig, ClusterScoringService
from repro.serve.router import ShardRouter
from repro.serve.service import (
    AddressScore,
    AddressScoringService,
    ScoringServiceConfig,
)
from repro.serve.store import CacheStore, WarmState, encoder_version

__all__ = [
    "AddressScore",
    "AddressScoringService",
    "CacheKey",
    "CacheStats",
    "CacheStore",
    "ClusterConfig",
    "ClusterScoringService",
    "ScoringServiceConfig",
    "ShardRouter",
    "SliceGraphCache",
    "WarmState",
    "encoder_version",
]
