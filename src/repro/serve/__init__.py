"""The serving layer: cached, batched address scoring.

Wraps a chain index, the graph-construction pipeline, and a trained
classifier behind one ``score(addresses)`` API with slice-graph caching,
incremental invalidation on block append, worker-pool construction, and
block-diagonal batched inference.
"""

from repro.serve.cache import CacheKey, CacheStats, SliceGraphCache
from repro.serve.service import (
    AddressScore,
    AddressScoringService,
    ScoringServiceConfig,
)

__all__ = [
    "AddressScore",
    "AddressScoringService",
    "CacheKey",
    "CacheStats",
    "ScoringServiceConfig",
    "SliceGraphCache",
]
