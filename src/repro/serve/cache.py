"""LRU cache of encoded slice graphs for the scoring service.

Graph construction dominates the cost of scoring an address (paper
Table V), and completed transaction slices never change on an
append-only chain — so the serving layer caches :class:`EncodedGraph`
slices keyed by ``(address, slice_index, pipeline-config fingerprint)``.
The fingerprint component guarantees that services built over different
construction parameters never share entries.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.errors import ValidationError
from repro.gnn.data import EncodedGraph

__all__ = ["CacheKey", "CacheStats", "SliceGraphCache"]

#: ``(address, slice_index, pipeline fingerprint)``.
CacheKey = Tuple[str, int, str]


@dataclass
class CacheStats:
    """Running counters of cache behaviour.

    ``hits``/``misses`` count slice-graph lookups; ``evictions`` counts
    LRU capacity evictions; ``invalidations`` counts entries dropped
    because new blocks touched their address.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when idle)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of the counters (safe to diff across calls)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class SliceGraphCache:
    """Bounded LRU cache of encoded slice graphs.

    Lookups refresh recency; inserts beyond ``capacity`` evict the least
    recently used entry.  A per-address key index makes invalidation
    O(cached slices of that address), which is what keeps block-append
    invalidation incremental.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValidationError(f"capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, EncodedGraph]" = OrderedDict()
        self._by_address: Dict[str, Set[CacheKey]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def get(self, key: CacheKey) -> Optional[EncodedGraph]:
        """The cached graph at ``key`` (refreshing recency), or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def note_miss(self, count: int = 1) -> None:
        """Count ``count`` lookups the caller skipped as known-stale."""
        self.stats.misses += count

    def put(self, key: CacheKey, graph: EncodedGraph) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries over capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = graph
        self._by_address.setdefault(key[0], set()).add(key)
        while len(self._entries) > self.capacity:
            evicted_key, _ = self._entries.popitem(last=False)
            self._discard_address_key(evicted_key)
            self.stats.evictions += 1

    def invalidate_address(self, address: str, from_slice: int = 0) -> int:
        """Drop cached slices of ``address`` with index >= ``from_slice``.

        Returns the number of entries dropped.  ``from_slice=0`` drops
        everything cached for the address.
        """
        keys = self._by_address.get(address)
        if not keys:
            return 0
        stale = [key for key in keys if key[1] >= from_slice]
        for key in stale:
            del self._entries[key]
            keys.discard(key)
        if not keys:
            del self._by_address[address]
        self.stats.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()
        self._by_address.clear()

    def _discard_address_key(self, key: CacheKey) -> None:
        keys = self._by_address.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_address[key[0]]
