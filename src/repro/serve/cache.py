"""LRU cache of slice-graph payloads for the scoring service.

Graph construction dominates the cost of scoring an address (paper
Table V), and completed transaction slices never change on an
append-only chain — so the serving layer caches per-slice payloads
keyed by ``(address, slice_index, pipeline-config fingerprint)``.  The
fingerprint component guarantees that services built over different
construction parameters never share entries.

The cache is payload-agnostic: entries may be compact columnar
:class:`~repro.graphs.arrays.ArrayGraph` slices, fully encoded
:class:`~repro.gnn.data.EncodedGraph` tensors (what
:class:`~repro.serve.service.AddressScoringService` stores, built
zero-copy from the arrays), per-slice embedding rows (the
encoder-version-keyed embedding cache of the serving layer), or
anything else keyed the same way.  Payloads exposing an ``nbytes``
attribute (both graph flavours and ndarrays do) are byte-accounted for
*observability*: ``cache.nbytes`` tracks the tensor bytes of live
entries so operators can see what a given ``capacity`` costs in
memory.  Eviction itself remains entry-count LRU, and the figure counts
array buffers only (an object-dtype ``refs`` column contributes its
pointers, not the string contents).

The byte total is maintained *incrementally*: each entry's size is
recorded at insertion and refreshed whenever the entry is next looked
up, so reading ``nbytes`` is O(1) no matter how many entries a large
shard cache holds.  Payloads that grow after insertion (models memoise
propagated features into cached entries) are therefore re-counted on
their next :meth:`~SliceGraphCache.get` — which every serving path
performs before using an entry.

Every public method is internally serialised on one re-entrant lock, so
the cache is safe to share between threads (the streaming serving path
reads embedding caches during inference while other queries plan and
commit).  The lock is a *leaf* in the serving layer's lock order —
cache methods never call out while holding it — so holding a service or
shard lock around a cache call can never deadlock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Dict,
    Generic,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from repro import obs
from repro.errors import ValidationError

__all__ = [
    "CacheKey",
    "CacheStats",
    "CacheMetrics",
    "SliceGraphCache",
    "slice_cache_metrics",
    "embedding_cache_metrics",
]

#: ``(address, slice_index, pipeline fingerprint)``.
CacheKey = Tuple[str, int, str]

#: The cached payload type (ArrayGraph, EncodedGraph, ...).
P = TypeVar("P")


@dataclass
class CacheStats:
    """Running counters of cache behaviour.

    ``hits``/``misses`` count slice-graph lookups; ``evictions`` counts
    LRU capacity evictions; ``invalidations`` counts entries dropped
    because new blocks touched their address.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when idle)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of the counters (safe to diff across calls)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    @staticmethod
    def combined(stats: "Iterable[CacheStats]") -> "CacheStats":
        """Element-wise sum of several counters (shard-aware totals).

        The cluster serving layer keeps one cache per shard; this is
        how its aggregate ``stats`` view is produced without giving up
        the per-shard breakdown.
        """
        total = CacheStats()
        for item in stats:
            total.hits += item.hits
            total.misses += item.misses
            total.evictions += item.evictions
            total.invalidations += item.invalidations
        return total


class CacheMetrics(NamedTuple):
    """Registry counters a cache increments alongside its ``stats``.

    The legacy per-cache :class:`CacheStats` object stays the
    source of per-instance truth (shard breakdowns, hit rates); the
    bound registry counters aggregate the same events across every
    cache of the same tier into the process-global
    :mod:`repro.obs` registry, which is what gets exported.
    """

    hits: obs.Counter
    misses: obs.Counter
    evictions: obs.Counter
    invalidations: obs.Counter


def slice_cache_metrics() -> CacheMetrics:
    """Registry counters for the encoded-slice-graph cache tier."""
    return CacheMetrics(
        hits=obs.counter("cache_slice_hits_total"),
        misses=obs.counter("cache_slice_misses_total"),
        evictions=obs.counter("cache_slice_evictions_total"),
        invalidations=obs.counter("cache_slice_invalidations_total"),
    )


def embedding_cache_metrics() -> CacheMetrics:
    """Registry counters for the per-slice embedding cache tier."""
    return CacheMetrics(
        hits=obs.counter("cache_embedding_hits_total"),
        misses=obs.counter("cache_embedding_misses_total"),
        evictions=obs.counter("cache_embedding_evictions_total"),
        invalidations=obs.counter("cache_embedding_invalidations_total"),
    )


def _payload_nbytes(payload) -> int:
    """Best-effort byte size of a payload (0 when it does not report one)."""
    return int(getattr(payload, "nbytes", 0) or 0)


class SliceGraphCache(Generic[P]):
    """Bounded LRU cache of per-slice graph payloads.

    Lookups refresh recency; inserts beyond ``capacity`` evict the least
    recently used entry.  A per-address key index makes invalidation
    O(cached slices of that address), which is what keeps block-append
    invalidation incremental.  ``nbytes`` reports the tensor bytes held
    by the live payloads in O(1): per-entry sizes are recorded at
    insertion, kept as a running total, and refreshed per entry on
    lookup (so post-insertion payload growth — models memoising
    propagated features — is picked up the next time the entry is
    served).  The figure informs sizing but does not drive eviction,
    which is entry-count LRU.
    """

    def __init__(self, capacity: int = 4096,
                 metrics: Optional[CacheMetrics] = None):
        if capacity <= 0:
            raise ValidationError(f"capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._metrics = metrics
        #: Hit/miss deltas not yet pushed into the registry counters.
        #: The lookup fast path bumps these plain ints under the mutex
        #: it already holds; :meth:`flush_metrics` ships them in one
        #: locked increment per counter instead of one per slice.
        self._pending_hits = 0
        self._pending_misses = 0
        #: Leaf lock: serialises every public method, never held across
        #: a call out of the cache.  RLock so ``import_entries`` can
        #: route through ``put``.
        self._mutex = threading.RLock()
        self._entries: "OrderedDict[CacheKey, P]" = OrderedDict()
        self._by_address: Dict[str, Set[CacheKey]] = {}
        self._entry_nbytes: Dict[CacheKey, int] = {}
        self._nbytes = 0

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._mutex:
            return key in self._entries

    @property
    def nbytes(self) -> int:
        """Bytes held by live payloads (0 for payloads without ``nbytes``).

        O(1): the running total of the recorded per-entry sizes, not a
        sweep over the entries.
        """
        with self._mutex:
            return self._nbytes

    def get(self, key: CacheKey) -> Optional[P]:
        """The cached payload at ``key`` (refreshing recency), or None."""
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                self._pending_misses += 1
                return None
            self._entries.move_to_end(key)
            self._record_nbytes(key, entry)
            self.stats.hits += 1
            self._pending_hits += 1
            return entry

    def note_miss(self, count: int = 1) -> None:
        """Count ``count`` lookups the caller skipped as known-stale."""
        with self._mutex:
            self.stats.misses += count
            self._pending_misses += count

    def flush_metrics(self) -> None:
        """Push batched hit/miss deltas into the registry counters.

        The serving layer calls this once per scoring request: lookups
        are per-slice (hundreds per warm request), so incrementing the
        lock-striped registry counters inline would tax the hot path —
        the ``obs_overhead_pct`` budget of the serving benchmark.
        Deltas accumulated while the registry is disabled are dropped
        here (``inc`` no-ops), matching the drop-when-disabled
        semantics of every other metric update.
        """
        if self._metrics is None:
            return
        with self._mutex:
            hits, self._pending_hits = self._pending_hits, 0
            misses, self._pending_misses = self._pending_misses, 0
        if hits:
            self._metrics.hits.inc(hits)
        if misses:
            self._metrics.misses.inc(misses)

    def put(self, key: CacheKey, payload: P) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries over capacity."""
        with self._mutex:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = payload
            self._record_nbytes(key, payload)
            self._by_address.setdefault(key[0], set()).add(key)
            while len(self._entries) > self.capacity:
                evicted_key, _ = self._entries.popitem(last=False)
                self._drop_accounting(evicted_key)
                self._discard_address_key(evicted_key)
                self.stats.evictions += 1
                if self._metrics is not None:
                    self._metrics.evictions.inc()

    def invalidate_address(self, address: str, from_slice: int = 0) -> int:
        """Drop cached slices of ``address`` with index >= ``from_slice``.

        Returns the number of entries dropped.  ``from_slice=0`` drops
        everything cached for the address.
        """
        with self._mutex:
            keys = self._by_address.get(address)
            if not keys:
                return 0
            stale = [key for key in keys if key[1] >= from_slice]
            for key in stale:
                del self._entries[key]
                self._drop_accounting(key)
                keys.discard(key)
            if not keys:
                del self._by_address[address]
            self.stats.invalidations += len(stale)
            if self._metrics is not None:
                self._metrics.invalidations.inc(len(stale))
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._mutex:
            self._entries.clear()
            self._by_address.clear()
            self._entry_nbytes.clear()
            self._nbytes = 0

    def export_entries(self) -> List[Tuple[CacheKey, P]]:
        """Snapshot every live entry as ``(key, payload)`` pairs.

        Ordered least- to most-recently used, so importing the list
        elsewhere (:meth:`import_entries`) reproduces the recency
        ranking — the persistence path of the warm-cache store.
        """
        with self._mutex:
            return list(self._entries.items())

    def import_entries(self, entries: Iterable[Tuple[CacheKey, P]]) -> int:
        """Insert ``(key, payload)`` pairs (a prior :meth:`export_entries`).

        Regular inserts: capacity eviction applies, recency follows
        iteration order, and statistics count neither hits nor misses.
        Returns the number of imported entries still *live* afterwards
        — an import larger than ``capacity`` evicts its own oldest
        entries, and reporting those as restored would overstate how
        warm the cache actually is.
        """
        with self._mutex:
            keys = []
            for key, payload in entries:
                self.put(key, payload)
                keys.append(key)
            return sum(1 for key in keys if key in self._entries)

    def _record_nbytes(self, key: CacheKey, payload: P) -> None:
        size = _payload_nbytes(payload)
        self._nbytes += size - self._entry_nbytes.get(key, 0)
        self._entry_nbytes[key] = size

    def _drop_accounting(self, key: CacheKey) -> None:
        self._nbytes -= self._entry_nbytes.pop(key, 0)

    def _discard_address_key(self, key: CacheKey) -> None:
        keys = self._by_address.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_address[key[0]]
