"""``repro.serve.cluster`` — sharded multi-process scoring with warm caches.

:class:`~repro.serve.service.AddressScoringService` amortises repeat
queries beautifully, but its construction parallelism is thread-bound:
under the GIL, the CPU-heavy miss path (Stages 1–4 plus encoding) runs
one core no matter how many worker threads it owns.
:class:`ClusterScoringService` is the scale-out layer above it:

- **Sharding.**  A :class:`~repro.serve.router.ShardRouter`
  deterministically partitions the address space by address-prefix hash
  into N shards.  Each shard owns its own
  :class:`~repro.chain.explorer.ChainIndex` slice
  (:meth:`~repro.chain.explorer.ChainIndex.sharded`), its own
  :class:`~repro.serve.cache.SliceGraphCache` + embedding cache, its
  own :class:`~repro.graphs.pipeline.GraphConstructionPipeline`, and —
  since the streaming rework — its own lock and version counter: the
  unit of replica scale-out, of warm-store bundling, and of query
  concurrency.
- **Live multi-process construction.**  Cache misses fan out over a
  pool of *long-lived* ``multiprocessing`` workers (:class:`_WorkerPool`),
  one build task per shard with misses.  Workers rebuild the missing
  slice graphs in array form
  (:func:`~repro.graphs.pipeline.worker_build_slices` — one
  ``build_many_slices`` call per task, so Stage 4 batches across every
  address the task owns), encode them, pre-propagate the GFN feature
  augmentation, and ship the
  :class:`~repro.gnn.data.EncodedGraph` ndarray columns back as
  picklable payloads.  Block appends are *streamed* to the workers as
  tail-replay messages over the same per-worker queues
  (:meth:`~repro.chain.explorer.ChainIndex.ingest_transactions`), so a
  warm pool survives chain growth instead of being re-forked per block.
  **Inference stays in the parent**: the trained model is loaded
  exactly once, and all shards' slice sequences share one
  block-diagonal GNN batch + one padded sequence-head pass, so results
  are 1e-9-parity with the single service.
- **Per-shard locking.**  The service lock only guards lifecycle state
  (chain subscription, pool/executor/batcher handles, the sync
  watermark).  Queries plan, build, and commit under the owning
  *shard's* lock with an optimistic version check — concurrent queries
  touching disjoint shards never contend, and a block append racing an
  in-flight query simply forces that query to re-plan against the
  post-append state (see :meth:`_Shard.commit_members`).
- **Invalidation.**  Block appends route each touched address to its
  owning shard and drop exactly the dirtied trailing slices there
  (same ``(timestamp, txid)`` insertion-point protocol as the single
  service), bumping the shard version so racing queries re-plan.
  Growth observed *without* block events re-slices the shard indexes
  from the parent index tail before planning, so an unconnected
  cluster degrades to full rebuilds of grown addresses instead of
  serving stale history.
- **Warm persistence.**  :meth:`ClusterScoringService.save_warm`
  writes one :class:`~repro.serve.store.CacheStore` bundle per shard,
  keyed by ``(pipeline fingerprint, model version)``;
  :meth:`~ClusterScoringService.load_warm` re-routes every stored
  entry through the *current* router, so a store written with N shards
  can warm a cluster resharded to M (or a plain single service).
- **Async front end with micro-batching.**
  :meth:`~ClusterScoringService.async_score` runs queries on the
  cluster's own bounded executor (never the event loop's default one),
  and — by default — coalesces concurrent in-flight requests through a
  :class:`_MicroBatcher` window into one merged scoring pass: the
  cross-*request* analogue of the cross-address batching below it, with
  per-request results split back out bit-equal to serial scoring.

``score`` is thread-safe; the single-writer chain model still applies
to *appends* (one block producer at a time), but appends may now race
in-flight queries — the per-shard version protocol linearizes them.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
import time
from collections import deque
from collections.abc import Mapping
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from queue import Empty
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro import obs
from repro.chain.block import Block
from repro.chain.chain import Blockchain
from repro.chain.explorer import ChainIndex
from repro.chain.store import ChainStore, StoreBackedChainIndex
from repro.errors import NotFittedError, ValidationError
from repro.gnn.data import EncodedGraph, encode_graph
from repro.gnn.gfn import augment_features
from repro.graphs.pipeline import (
    GraphConstructionPipeline,
    GraphPipelineConfig,
    stage_report_from_timer,
    worker_build_slices,
)
from repro.serve.cache import (
    CacheStats,
    SliceGraphCache,
    embedding_cache_metrics,
    slice_cache_metrics,
)
from repro.serve.router import DEFAULT_PREFIX_LENGTH, ShardRouter
from repro.serve.service import (
    AddressScore,
    _SERVE_ADDRESSES,
    _SERVE_REQUESTS,
    _SERVE_SECONDS,
    _class_name_mapping,
    _export_warm_state,
    _import_warm_state,
    _invalidate_address,
    _plan_slices,
    _score_sequences,
    _unknown_addresses_error,
)
from repro.serve.store import CacheStore, encoder_version
from repro.utils.timer import StageTimer

__all__ = ["ClusterConfig", "ClusterScoringService"]

#: Cluster-layer registry metrics (process-global; see ``repro.obs``).
#: The legacy accessors — ``pool_stats()``, ``micro_batch_stats()``,
#: per-shard ``CacheStats`` — stay the per-instance views; these
#: aggregate the same events for export, incremented at the same
#: sites, so the two surfaces cannot drift.
_SHARD_LOCK_WAIT = obs.histogram("shard_lock_wait_seconds")
_SHARD_RETRIES = obs.counter("shard_version_retries_total")
_POOL_STARTS = obs.counter("pool_starts_total")
_POOL_WORKERS = obs.gauge("pool_workers")
_POOL_INGESTS = obs.counter("pool_ingest_batches_total")
_POOL_REMAPS = obs.counter("pool_remaps_total")
_MB_REQUESTS = obs.counter("micro_batch_requests_total")
_MB_BATCHES = obs.counter("micro_batches_total")
_MB_BATCHED = obs.counter("micro_batched_requests_total")


def _observe_lock_wait(wait_start: float) -> None:
    """Record time spent waiting on a shard lock.

    Called as the first statement inside ``with shard.lock`` blocks on
    the query path, with ``wait_start`` read just before the ``with``
    — the delta is the acquisition wait (plus nanoseconds of entry
    overhead), the operational signal for shard contention.
    """
    _SHARD_LOCK_WAIT.observe(time.perf_counter() - wait_start)


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster serving knobs.

    ``num_shards`` fixes the address-space partition (and the warm
    store's bundle layout); ``num_workers`` sizes the construction
    worker pool (0 builds misses in the parent process, still
    sharded); ``prefix_length`` feeds the router (see
    :class:`~repro.serve.router.ShardRouter`).  ``cache_capacity`` and
    ``embedding_cache_capacity`` are *per shard*.  ``start_method``
    overrides the ``multiprocessing`` start method (default: ``fork``
    when the platform offers it — workers then inherit the shard
    indexes copy-on-write instead of pickling them).

    The async front end: ``async_workers`` bounds the cluster's own
    query executor (:meth:`~ClusterScoringService.async_score` never
    touches the event loop's default executor); ``micro_batch`` turns
    the request-coalescing window on (default) or off;
    ``micro_batch_window`` is how long, in seconds, the first request
    of a batch waits for concurrent companions (0 coalesces only
    what is already queued); ``micro_batch_max_addresses`` caps the
    merged query size so one giant batch cannot stall latency for
    everyone behind it.

    ``store_dir`` switches the cluster onto the memory-mapped chain
    store (:mod:`repro.chain.store`): the directory is created/synced
    from the parent index at startup, shard slices become
    :class:`~repro.chain.store.StoreBackedChainIndex` views over the
    shared maps instead of deep-copied indexes, and block appends
    stream to workers as tail segments they remap from disk instead of
    pickled transaction payloads.  ``None`` (default) keeps the
    in-memory slices.
    """

    num_shards: int = 2
    num_workers: int = 0
    prefix_length: Optional[int] = DEFAULT_PREFIX_LENGTH
    cache_capacity: int = 4096
    graph_batch_size: int = 256
    sequence_batch_size: int = 64
    embedding_cache: bool = True
    embedding_cache_capacity: int = 65536
    start_method: Optional[str] = None
    async_workers: int = 4
    micro_batch: bool = True
    micro_batch_window: float = 0.002
    micro_batch_max_addresses: int = 1024
    store_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValidationError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.num_workers < 0:
            raise ValidationError(
                f"num_workers must be >= 0, got {self.num_workers}"
            )
        for field_name in (
            "cache_capacity",
            "graph_batch_size",
            "sequence_batch_size",
            "embedding_cache_capacity",
            "async_workers",
            "micro_batch_max_addresses",
        ):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValidationError(
                    f"{field_name} must be > 0, got {value}"
                )
        if self.micro_batch_window < 0:
            raise ValidationError(
                f"micro_batch_window must be >= 0, got "
                f"{self.micro_batch_window}"
            )
        if self.start_method is not None and (
            self.start_method
            not in multiprocessing.get_all_start_methods()
        ):
            raise ValidationError(
                f"unknown multiprocessing start method "
                f"{self.start_method!r}"
            )


class _ShardMembership:
    """Picklable shard-membership predicate (a shard index's filter)."""

    def __init__(self, router: ShardRouter, shard_id: int):
        self.router = router
        self.shard_id = shard_id

    def __call__(self, address: str) -> bool:
        return self.router.shard_of(address) == self.shard_id


class _Shard:
    """One shard's private serving state plus its concurrency contract.

    All mutable serving state (index slice, caches, coverage, version)
    is guarded by ``lock``; ``version`` increments on every event that
    can change what a plan would conclude (block append, tail replay,
    trust reset), which is what lets queries plan and build *outside*
    the lock and detect interference at commit time.  ``build_lock``
    serialises parent-process (inline) builds per shard: the chain
    index memoises interned node keys during construction, and two
    concurrent builders racing that memo could intern conflicting keys.
    It is never held together with ``lock``.
    """

    __slots__ = (
        "shard_id",
        "index",
        "pipeline",
        "cache",
        "embeddings",
        "covered",
        "lock",
        "build_lock",
        "version",
    )

    #: Per-shard discipline, enforced by the ``lock-discipline`` rule:
    #: mutations of these attributes — through ``self`` here or through
    #: a ``shard``-named reference elsewhere in this file — must sit
    #: inside ``with <receiver>.lock``.
    _LOCK_GUARDED = {
        "lock": (
            "index",
            "pipeline",
            "cache",
            "embeddings",
            "covered",
            "version",
        ),
    }

    def __init__(
        self,
        shard_id: int,
        index: ChainIndex,
        pipeline_config: GraphPipelineConfig,
        config: ClusterConfig,
    ):
        self.shard_id = shard_id
        self.index = index
        self.pipeline = GraphConstructionPipeline(pipeline_config)
        self.cache: SliceGraphCache[EncodedGraph] = SliceGraphCache(
            config.cache_capacity, metrics=slice_cache_metrics()
        )
        self.embeddings: Optional[SliceGraphCache[np.ndarray]] = (
            SliceGraphCache(
                config.embedding_cache_capacity,
                metrics=embedding_cache_metrics(),
            )
            if config.embedding_cache
            else None
        )
        self.covered: Dict[str, int] = {}
        self.lock = threading.RLock()
        self.build_lock = threading.Lock()
        self.version = 0

    # -------------------------------------------------------------- #
    # Query protocol: plan -> (build outside the lock) -> commit
    # -------------------------------------------------------------- #

    def plan_members(
        self,
        members: Sequence[str],
        fingerprint: str,
        slice_size: int,
        connected: bool,
    ) -> Tuple[
        int,
        Dict[str, int],
        Dict[str, Tuple[Dict[int, EncodedGraph], List[int], int]],
    ]:
        """Plan every member address under one lock hold.

        Returns ``(version, counts, plans)`` where ``plans`` maps each
        address to its :func:`~repro.serve.service._plan_slices` result
        and ``version`` is the shard version the whole plan is
        consistent with — :meth:`commit_members` refuses the results if
        the shard has moved on since.
        """
        wait_start = time.perf_counter()
        with self.lock:
            _observe_lock_wait(wait_start)
            version = self.version
            counts: Dict[str, int] = {}
            plans: Dict[
                str, Tuple[Dict[int, EncodedGraph], List[int], int]
            ] = {}
            for address in members:
                count = self.index.transaction_count(address)
                counts[address] = count
                plans[address] = _plan_slices(
                    self.cache,
                    fingerprint,
                    slice_size,
                    address,
                    count,
                    self.covered.get(address, 0),
                    connected,
                )
            return version, counts, plans

    def commit_members(
        self,
        version: int,
        members: Sequence[str],
        plans: Dict[str, Tuple[Dict[int, EncodedGraph], List[int], int]],
        built: Dict[str, List[EncodedGraph]],
        counts: Dict[str, int],
        fingerprint: str,
    ) -> Optional[
        Tuple[Dict[str, List[EncodedGraph]], Set[Tuple[str, int]]]
    ]:
        """Commit one plan's build results, unless the shard moved on.

        Returns ``(sequences, untrusted)`` on success, or ``None`` when
        the shard version changed since :meth:`plan_members` — a block
        append or tail replay interleaved with the build, so both the
        plan and the built graphs may reflect a state that no longer
        exists; the caller re-plans.  This check is what linearizes
        appends against in-flight queries without holding any lock
        across construction.
        """
        wait_start = time.perf_counter()
        with self.lock:
            _observe_lock_wait(wait_start)
            if self.version != version:
                return None
            sequences: Dict[str, List[EncodedGraph]] = {}
            untrusted: Set[Tuple[str, int]] = set()
            for address in members:
                reusable, _missing, fresh_until = plans[address]
                by_slice = dict(reusable)
                for graph in built.get(address, ()):
                    self.cache.put(
                        (address, graph.slice_index, fingerprint), graph
                    )
                    by_slice[graph.slice_index] = graph
                    if graph.slice_index >= fresh_until:
                        untrusted.add((address, graph.slice_index))
                sequences[address] = [
                    by_slice[i] for i in sorted(by_slice)
                ]
                self.covered[address] = counts[address]
            return sequences, untrusted

    # -------------------------------------------------------------- #
    # Mutation events (each bumps the version racing plans check)
    # -------------------------------------------------------------- #

    def apply_block_locked(
        self,
        block: Block,
        touched: Dict[str, Tuple[float, str]],
        slice_size: int,
    ) -> None:
        """Ingest an appended block; the caller holds ``self.lock``.

        ``touched`` maps this shard's dirtied member addresses to the
        earliest new ``(timestamp, txid)`` key — each gets the shared
        insertion-point invalidation, and any dirtied membership bumps
        the version so racing queries re-plan (including first-ever
        queries with no coverage yet, whose plans are equally stale).

        A store-backed slice (one exposing ``remap``) is read-only: the
        caller has already committed the block to the shared chain
        store, so the slice catches up by remapping the tail segments
        instead of ingesting transaction objects.
        """
        remap = getattr(self.index, "remap", None)
        if remap is not None:
            remap()
        else:
            self.index.on_block(block)
        if touched:
            self.version += 1
        for address, earliest_new in touched.items():
            _invalidate_address(
                self.cache,
                self.embeddings,
                self.covered,
                self.index.records_for,
                address,
                earliest_new,
                slice_size,
            )

    def ingest_tail_locked(
        self, tail: Sequence[Tuple[object, int]]
    ) -> None:
        """Replay a parent-index tail; the caller holds ``self.lock``.

        Store-backed slices remap instead (the caller has already
        appended the tail to the shared chain store)."""
        remap = getattr(self.index, "remap", None)
        if remap is not None:
            if remap():
                self.version += 1
            return
        if self.index.ingest_transactions(tail):
            self.version += 1

    def reset_trust(self) -> None:
        """Drop caches and coverage (:meth:`ClusterScoringService.connect`
        re-establishing the trust baseline)."""
        with self.lock:
            self.version += 1
            self.cache.clear()
            if self.embeddings is not None:
                self.embeddings.clear()
            self.covered.clear()

    # -------------------------------------------------------------- #
    # Accounting and persistence
    # -------------------------------------------------------------- #

    def merge_timer(self, timer: StageTimer) -> None:
        """Fold a private build pipeline's stage timer into the shard's."""
        with self.lock:
            self.pipeline.timer.merge(timer)

    def timer_snapshot(self) -> StageTimer:
        """A consistent copy of the shard's accumulated stage timer."""
        with self.lock:
            snapshot = StageTimer()
            snapshot.merge(self.pipeline.timer)
            return snapshot

    def export_warm_state(self):
        """Atomic warm snapshot of the caches plus coverage."""
        with self.lock:
            return _export_warm_state(
                self.cache, self.embeddings, self.covered
            )


# ---------------------------------------------------------------------- #
# Worker-process side
# ---------------------------------------------------------------------- #

#: How often the parent-side collector wakes to health-check workers.
_COLLECT_POLL_SECONDS = 0.5
#: How long shutdown waits for a worker/collector before terminating it.
_JOIN_TIMEOUT_SECONDS = 10.0


def _worker_main(
    indexes: List[ChainIndex],
    pipeline_config: GraphPipelineConfig,
    gfn_k: Optional[int],
    tasks,
    results,
) -> None:
    """Long-lived shard worker loop: build tasks and ingest messages.

    One FIFO task queue per worker is the ordering contract the parent
    relies on: an ``ingest`` enqueued before a ``build`` is applied
    before it, so a build planned against post-append shard state is
    always constructed against post-append worker state.  ``ingest``
    replays a ``(transaction, height)`` tail into every local shard
    index (:meth:`~repro.chain.explorer.ChainIndex.ingest_transactions`
    — idempotent, so overlapping tails are safe); ``remap`` is the
    store-backed analogue — each local
    :class:`~repro.chain.store.StoreBackedChainIndex` pulls the new
    tail segments straight from the mapped store directory, so nothing
    but the one-word message crosses the process boundary; ``build``
    runs the usual per-shard miss construction and ships encoded graphs
    back on the shared result queue; ``stop`` exits the loop.

    Observability rides the same messages: each ``build`` carries the
    parent's trace context, the worker runs the construction under a
    ``worker.build`` span parented to it, and every result ships the
    worker's drained metric/span deltas back — no extra IPC.  The
    reset below matters under fork: the child inherits the parent's
    registry *values*, which must not be re-shipped as deltas.
    """
    obs.reset()
    while True:
        message = tasks.get()
        kind = message[0]
        if kind == "stop":
            return
        if kind == "ingest":
            tail = message[1]
            for index in indexes:
                index.ingest_transactions(tail)
            continue
        if kind == "remap":
            for index in indexes:
                index.remap()
            continue
        _, seq, shard_id, requests, trace_context = message
        try:
            with obs.span_from_context("worker.build", trace_context):
                index = indexes[shard_id]
                graphs_by_address, timer = worker_build_slices(
                    index, dict(requests), pipeline_config
                )
                encoded: Dict[str, List[EncodedGraph]] = {}
                for address, graphs in graphs_by_address.items():
                    rows = [encode_graph(graph) for graph in graphs]
                    if gfn_k is not None:
                        for row in rows:
                            augment_features(row, gfn_k)
                    encoded[address] = rows
            results.put(
                (seq, encoded, timer, None, obs.drain_for_shipping())
            )
        except Exception as error:  # repro: lint-ignore[broad-except]
            # Process boundary: the failure must travel back as data or
            # the parent's future never resolves.
            results.put(
                (
                    seq,
                    None,
                    None,
                    f"{type(error).__name__}: {error}",
                    obs.drain_for_shipping(),
                )
            )


# ---------------------------------------------------------------------- #
# Parent-process side
# ---------------------------------------------------------------------- #


class _WorkerPool:
    """Long-lived construction workers fed over per-worker queues.

    Unlike a ``ProcessPoolExecutor`` snapshot-and-refork cycle, these
    workers live across block appends: the parent streams each append
    as an ``ingest`` message and the workers replay the tail into their
    local shard indexes in place.  Build tasks for a given shard are
    pinned to one worker (``shard_id % num_workers``), so the
    per-worker FIFO gives the parent a simple linearization guarantee —
    every build sees exactly the ingests enqueued before it.

    A single collector thread drains the shared result queue, resolves
    the matching futures, and fails the futures of any worker that died
    mid-build (worker death is otherwise an indefinite hang).
    """

    #: Collector/submitter shared state and its lock (lock-discipline).
    _LOCK_GUARDED = {
        "_lock": (
            "_pending",
            "_assigned",
            "_seq",
            "_closed",
            "_ingest_batches",
            "_remaps",
        ),
    }

    def __init__(
        self,
        num_workers: int,
        indexes: List[ChainIndex],
        pipeline_config: GraphPipelineConfig,
        gfn_k: Optional[int],
        context,
    ):
        self._tasks = [context.Queue() for _ in range(num_workers)]
        self._results = context.Queue()
        self._processes = [
            context.Process(
                target=_worker_main,
                args=(
                    indexes,
                    pipeline_config,
                    gfn_k,
                    self._tasks[worker_id],
                    self._results,
                ),
                daemon=True,
            )
            for worker_id in range(num_workers)
        ]
        for process in self._processes:
            process.start()
        self._lock = threading.Lock()
        self._pending: Dict[int, Future] = {}
        self._assigned: Dict[int, int] = {}
        self._seq = 0
        self._closed = False
        self._ingest_batches = 0
        self._remaps = 0
        self._collector = threading.Thread(
            target=self._collect,
            name="repro-cluster-pool-collector",
            daemon=True,
        )
        self._collector.start()

    @property
    def num_workers(self) -> int:
        return len(self._processes)

    @property
    def ingest_batches(self) -> int:
        """Tail-replay messages streamed to the workers so far."""
        with self._lock:
            return self._ingest_batches

    @property
    def remaps(self) -> int:
        """Store-remap messages streamed to the workers so far."""
        with self._lock:
            return self._remaps

    def submit(
        self,
        shard_id: int,
        requests: Dict[str, List[int]],
        trace_context: Optional[Tuple[str, str]] = None,
    ) -> Future:
        """Queue one shard's miss-build; resolves to ``(encoded, timer)``.

        ``trace_context`` (the submitter's ``obs.current_context()``)
        rides inside the build message so the worker's construction
        span lands in the same request trace.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            seq = self._seq
            self._seq += 1
            worker_id = shard_id % len(self._processes)
            future: Future = Future()
            self._pending[seq] = future
            self._assigned[seq] = worker_id
        self._tasks[worker_id].put(
            ("build", seq, shard_id, requests, trace_context)
        )
        return future

    def send_ingest(
        self, tail: Sequence[Tuple[object, int]]
    ) -> None:
        """Stream a tail of appended transactions to every worker.

        Enqueued on each worker's task queue, so FIFO ordering relative
        to build tasks is preserved per worker.  Idempotent on the
        worker side (known txids are skipped), so the parent never has
        to reconcile which worker saw which tail.
        """
        if not tail:
            return
        with self._lock:
            if self._closed:
                return
            self._ingest_batches += 1
        _POOL_INGESTS.inc()
        for tasks in self._tasks:
            tasks.put(("ingest", list(tail)))

    def send_remap(self) -> None:
        """Tell every worker to remap its store-backed shard indexes.

        The store-mode replacement for :meth:`send_ingest`: the
        appended transactions are already on disk as committed tail
        segments, so the message carries no payload at all — workers
        map the new segments and extend their member adjacency.  Same
        per-worker FIFO ordering contract: a build enqueued after this
        message sees the post-append store.
        """
        with self._lock:
            if self._closed:
                return
            self._remaps += 1
        _POOL_REMAPS.inc()
        for tasks in self._tasks:
            tasks.put(("remap",))

    def _collect(self) -> None:
        while True:
            try:
                message = self._results.get(
                    timeout=_COLLECT_POLL_SECONDS
                )
            except Empty:
                with self._lock:
                    if self._closed:
                        return
                self._fail_dead_workers()
                continue
            seq, encoded, timer, error, obs_payload = message
            # Fold the worker's metric/span deltas in *before* the
            # future resolves, so a caller inspecting traces right
            # after ``score()`` returns sees the worker spans.
            obs.absorb(obs_payload)
            with self._lock:
                future = self._pending.pop(seq, None)
                self._assigned.pop(seq, None)
            if future is None:
                continue
            if error is not None:
                future.set_exception(
                    RuntimeError(f"shard worker build failed: {error}")
                )
            else:
                future.set_result((encoded, timer))

    def _fail_dead_workers(self) -> None:
        dead = {
            worker_id
            for worker_id, process in enumerate(self._processes)
            if not process.is_alive()
        }
        if not dead:
            return
        with self._lock:
            lost = [
                (seq, self._pending.pop(seq))
                for seq, worker_id in list(self._assigned.items())
                if worker_id in dead and seq in self._pending
            ]
            for seq, _ in lost:
                self._assigned.pop(seq, None)
        for seq, future in lost:
            future.set_exception(
                RuntimeError(
                    f"shard worker died with build #{seq} in flight"
                )
            )

    def shutdown(self) -> None:
        """Stop workers and the collector; fail any in-flight builds."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
            self._assigned.clear()
        for future in pending:
            future.set_exception(
                RuntimeError("worker pool shut down with builds in flight")
            )
        for tasks in self._tasks:
            tasks.put(("stop",))
        for process in self._processes:
            process.join(timeout=_JOIN_TIMEOUT_SECONDS)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        self._collector.join(timeout=_JOIN_TIMEOUT_SECONDS)


class _BatchRequest:
    """One queued ``async_score`` call awaiting its coalesced batch."""

    __slots__ = ("addresses", "future")

    def __init__(self, addresses: List[str]):
        self.addresses = addresses
        self.future: Future = Future()


class _MicroBatcher:
    """Dynamic request coalescing for :meth:`ClusterScoringService.async_score`.

    Concurrent requests land in a queue; a single batcher thread wakes
    on the first arrival, sleeps the configured coalescing window so
    companions can join, then drains whatever is pending (up to the
    address cap) into one merged, deduplicated scoring pass — every
    request of the window shares one block-diagonal GNN batch and one
    padded sequence-head pass, the cross-request analogue of the
    cluster's cross-address batching.  The merged pass runs on the
    cluster's bounded query executor, so consecutive windows pipeline
    instead of serialising behind each other.

    Results split back out per request from the merged score dict —
    scoring is per-address and input-order-independent below the head,
    so micro-batched scores are identical to serial ones.  A request
    naming unknown addresses fails alone with the shared
    :func:`~repro.serve.service._unknown_addresses_error`; it never
    poisons the batch it happened to share a window with.
    """

    #: Queue/counter state and the condition lock that guards it.
    _LOCK_GUARDED = {
        "_condition": (
            "_queue",
            "_closed",
            "_requests",
            "_batches",
            "_batched_requests",
            "_max_batch",
        ),
    }

    def __init__(self, cluster: "ClusterScoringService"):
        self._cluster = cluster
        self._condition = threading.Condition()
        self._queue: "deque[_BatchRequest]" = deque()
        self._closed = False
        self._requests = 0
        self._batches = 0
        self._batched_requests = 0
        self._max_batch = 0
        self._thread = threading.Thread(
            target=self._run,
            name="repro-cluster-batcher",
            daemon=True,
        )
        self._thread.start()

    def enqueue(self, addresses: List[str]) -> Future:
        """Queue one request; resolves to its ``{address: AddressScore}``."""
        request = _BatchRequest(addresses)
        with self._condition:
            if self._closed:
                request.future.set_exception(
                    RuntimeError("cluster is closed")
                )
                return request.future
            self._queue.append(request)
            self._requests += 1
            _MB_REQUESTS.inc()
            self._condition.notify()
        return request.future

    def stats(self) -> Dict[str, int]:
        """Coalescing counters: requests seen, batches formed, etc."""
        with self._condition:
            return {
                "requests": self._requests,
                "batches": self._batches,
                "batched_requests": self._batched_requests,
                "max_batch": self._max_batch,
            }

    def shutdown(self) -> None:
        """Stop the batcher thread; queued requests fail rather than hang."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()
        self._thread.join(timeout=_JOIN_TIMEOUT_SECONDS)

    def _run(self) -> None:
        window = self._cluster.config.micro_batch_window
        limit = self._cluster.config.micro_batch_max_addresses
        while True:
            with self._condition:
                while not self._queue and not self._closed:
                    self._condition.wait()
                if self._closed:
                    drained = list(self._queue)
                    self._queue.clear()
                    for request in drained:
                        _fail_future(
                            request.future,
                            RuntimeError("cluster is closed"),
                        )
                    return
            if window > 0:
                # The coalescing window: give concurrent callers a
                # chance to join this batch before it is sealed.
                time.sleep(window)
            batch: List[_BatchRequest] = []
            total = 0
            with self._condition:
                while self._queue:
                    request = self._queue[0]
                    if batch and total + len(request.addresses) > limit:
                        break
                    self._queue.popleft()
                    batch.append(request)
                    total += len(request.addresses)
                self._batches += 1
                self._batched_requests += len(batch)
                self._max_batch = max(self._max_batch, len(batch))
                _MB_BATCHES.inc()
                _MB_BATCHED.inc(len(batch))
            executor = self._cluster._ensure_async_executor()
            executor.submit(self._execute, batch)

    def _execute(self, batch: List[_BatchRequest]) -> None:
        """Run one sealed batch: validate, merge, score, split."""
        cluster = self._cluster
        valid: List[_BatchRequest] = []
        merged: List[str] = []
        seen: Set[str] = set()
        for request in batch:
            unique = list(dict.fromkeys(request.addresses))
            unknown = [
                a
                for a in unique
                if cluster.index.transaction_count(a) == 0
            ]
            if unknown:
                _fail_future(
                    request.future, _unknown_addresses_error(unknown)
                )
                continue
            valid.append(request)
            for address in unique:
                if address not in seen:
                    seen.add(address)
                    merged.append(address)
        if not valid:
            return
        try:
            scores = cluster._score_addresses(merged)
        except Exception as error:  # repro: lint-ignore[broad-except]
            # Fan the failure out: every request of the merged pass gets
            # the real exception instead of an executor-swallowed hang.
            for request in valid:
                _fail_future(request.future, error)
            return
        for request in valid:
            result = {
                address: scores[address]
                for address in dict.fromkeys(request.addresses)
            }
            try:
                request.future.set_result(result)
            except InvalidStateError:
                pass  # caller cancelled while we were scoring


def _fail_future(future: Future, error: BaseException) -> None:
    """Fail ``future`` unless the caller already cancelled it."""
    try:
        future.set_exception(error)
    except InvalidStateError:
        pass


class ClusterScoringService:
    """Sharded, multi-process ``score(addresses)`` over a fitted model.

    Drop-in for :class:`~repro.serve.service.AddressScoringService` —
    same constructor shape, same ``score`` / ``score_one`` /
    ``connect`` / ``disconnect`` / ``close`` surface, same incremental
    invalidation semantics — with construction spread over
    ``config.num_workers`` live worker processes, state spread over
    ``config.num_shards`` independently-locked shards, and an async
    front end that micro-batches concurrent requests.  See the module
    docstring for the design.

    Lock order (outermost first): service ``_lock`` → shard locks in
    ascending ``shard_id`` order → cache-internal leaf locks.  Queries
    hold at most one shard lock at a time and no lock at all during
    construction or inference.
    """

    #: Lifecycle state and the lock that guards it, enforced by the
    #: ``lock-discipline`` rule of :mod:`repro.analysis`: writes (and
    #: mutating calls) on these attributes must sit inside ``with
    #: self.<lock>``, except in ``__init__`` and in ``*_locked`` methods
    #: whose callers already hold the lock.  Query-path state lives in
    #: the shards, each under its own declared lock.
    _LOCK_GUARDED = {
        "_lock": (
            "_chain",
            "_pool",
            "_pool_starts",
            "_synced_transactions",
            "_async_executor",
            "_batcher",
            "_store",
        ),
        "_timer_lock": ("_worker_timer",),
    }

    def __init__(
        self,
        classifier,
        index: ChainIndex,
        chain: Optional[Blockchain] = None,
        config: Optional[ClusterConfig] = None,
        class_names: "Union[Mapping[int, str], Sequence[str], None]" = None,
    ):
        if not getattr(classifier, "is_fitted", False):
            raise NotFittedError(
                "ClusterScoringService needs a fitted (or loaded) classifier"
            )
        self.classifier = classifier
        self.index = index
        self.config = config or ClusterConfig()
        self.router = ShardRouter(
            self.config.num_shards, self.config.prefix_length
        )
        self.pipeline_config = classifier.config.pipeline_config()
        self.fingerprint = self.pipeline_config.fingerprint()
        #: See :func:`~repro.serve.store.encoder_version`.
        self.model_version = encoder_version(classifier.encoder)
        self.embedding_fingerprint = (
            f"{self.fingerprint}:{self.model_version}"
        )
        self.class_names = _class_name_mapping(class_names)
        # Store mode: mirror the parent index into the mapped chain
        # store once, then give every shard a StoreBackedChainIndex
        # view over the *shared* maps — no deep-copied slices, and
        # workers (forked or respawned) read the same files.
        self._store: Optional[ChainStore] = None
        if self.config.store_dir is not None:
            self._store = ChainStore(self.config.store_dir, writable=True)
            self._store.sync_from_index(index)
        self.shards: List[_Shard] = [
            _Shard(
                shard_id,
                (
                    StoreBackedChainIndex(
                        self._store,
                        _ShardMembership(self.router, shard_id),
                    )
                    if self._store is not None
                    else index.sharded(
                        _ShardMembership(self.router, shard_id)
                    )
                ),
                self.pipeline_config,
                self.config,
            )
            for shard_id in range(self.config.num_shards)
        ]
        self._synced_transactions = index.total_transactions()
        self._worker_timer = StageTimer()
        self._timer_lock = threading.Lock()
        self._lock = threading.RLock()
        self._chain: Optional[Blockchain] = None
        self._pool: Optional[_WorkerPool] = None
        self._pool_starts = 0
        self._async_executor: Optional[ThreadPoolExecutor] = None
        self._batcher: Optional[_MicroBatcher] = None
        if chain is not None:
            self.connect(chain)

    # ------------------------------------------------------------------ #
    # Chain integration
    # ------------------------------------------------------------------ #

    def connect(self, chain: Blockchain) -> None:
        """Subscribe to ``chain`` so appends invalidate shard caches.

        Same trust semantics as the single service: coverage built
        while not listening cannot be vouched for, so connecting drops
        existing shard cache contents (a same-chain re-connect is a
        no-op and keeps everything warm).  Shard index slices are
        re-synced from the parent index first, in case it grew while
        unconnected.
        """
        with self._lock:
            if self._chain is chain:
                return
            if self._chain is not None:
                self.disconnect()
            if any(shard.covered for shard in self.shards):
                for shard in self.shards:
                    shard.reset_trust()
            self._refresh_stale_shards_locked()
            chain.add_listener(self.on_block)
            self._chain = chain

    def disconnect(self) -> None:
        """Unsubscribe from the connected chain (no-op when unconnected)."""
        with self._lock:
            if self._chain is not None:
                self._chain.remove_listener(self.on_block)
            self._chain = None

    def close(self) -> None:
        """Release resources: chain, batcher, query executor, worker pool.

        Teardown runs *outside* the service lock — joining worker
        processes can take a while, and the old design's
        shutdown-under-the-lock stalled the first post-append query
        behind a full pool teardown.  Order matters: the batcher stops
        producing first, then the query executor drains, then the pool
        (which running queries may still be submitting to), and in
        store mode the mapped segments are released last — every shard
        slice drops its adjacency and the shared store drops its
        memmaps, so no file handles outlive the service.
        """
        self.disconnect()
        with self._lock:
            batcher = self._batcher
            self._batcher = None
        if batcher is not None:
            batcher.shutdown()
        with self._lock:
            executor = self._async_executor
            self._async_executor = None
            pool = self._pool
            self._pool = None
        if executor is not None:
            executor.shutdown(wait=True)
        if pool is not None:
            pool.shutdown()
        with self._lock:
            store = self._store
            self._store = None
        if store is not None:
            for shard in self.shards:
                with shard.lock:
                    shard.index.close()
            store.close()

    def on_block(self, block: Block) -> None:
        """Feed the append to every shard index, then invalidate.

        Each touched address routes to its owning shard, where exactly
        the slices at or after the block's insertion point into that
        address's history are dropped — the cross-shard form of the
        single service's incremental invalidation — and the shard
        version is bumped so racing queries re-plan.  The same
        transactions are streamed to the live worker pool as an ingest
        message *inside* the shard-lock critical section: any query
        that observes the bumped version is therefore guaranteed its
        subsequent build tasks queue behind the ingest, which is what
        keeps worker-built graphs consistent with parent-side plans
        without re-forking anything.

        In store mode the block is first committed to the shared chain
        store as a tail segment (still inside the critical section),
        the shard slices remap from the maps, and the workers get a
        payload-free ``remap`` message instead of pickled transactions.
        """
        with self._lock:
            slice_size = self.pipeline_config.slice_size
            new_by_address: Dict[str, List[Tuple[float, str]]] = {}
            for tx in block.transactions:
                for address in tx.addresses():
                    new_by_address.setdefault(address, []).append(
                        (tx.timestamp, tx.txid)
                    )
            touched_by_shard: Dict[int, Dict[str, Tuple[float, str]]] = {}
            for address, keys in new_by_address.items():
                touched_by_shard.setdefault(
                    self.router.shard_of(address), {}
                )[address] = min(keys)
            for shard in self.shards:
                shard.lock.acquire()
            try:
                if self._store is not None:
                    self._store.append_block(block)
                for shard in self.shards:
                    shard.apply_block_locked(
                        block,
                        touched_by_shard.get(shard.shard_id, {}),
                        slice_size,
                    )
                self._synced_transactions = self.shards[
                    0
                ].index.total_transactions()
                if self._pool is not None:
                    if self._store is not None:
                        self._pool.send_remap()
                    else:
                        self._pool.send_ingest(
                            [
                                (tx, block.height)
                                for tx in block.transactions
                            ]
                        )
            finally:
                for shard in reversed(self.shards):
                    shard.lock.release()

    def _refresh_stale_shards_locked(self) -> None:
        """Catch shard indexes up when the parent index grew unobserved.

        While connected, :meth:`on_block` keeps every shard index in
        lock-step and this is a no-op.  Unobserved growth (appends
        before :meth:`connect`, or an unconnected cluster) replays only
        the parent index's *tail* into each shard
        (:meth:`~repro.chain.explorer.ChainIndex.transactions_since` /
        :meth:`~repro.chain.explorer.ChainIndex.ingest_transactions` —
        O(new transactions), not a from-scratch re-slice) and streams
        the same tail to the live workers; coverage trust is handled
        separately by the planning protocol, exactly like the single
        service's unconnected path.  Caller holds the service lock.
        """
        if self.index.total_transactions() <= self._synced_transactions:
            return
        tail = self.index.transactions_since(self._synced_transactions)
        for shard in self.shards:
            shard.lock.acquire()
        try:
            if self._store is not None:
                self._store.append_transactions(tail)
            for shard in self.shards:
                shard.ingest_tail_locked(tail)
            self._synced_transactions = self.index.total_transactions()
            if self._pool is not None:
                if self._store is not None:
                    self._pool.send_remap()
                else:
                    self._pool.send_ingest(tail)
        finally:
            for shard in reversed(self.shards):
                shard.lock.release()

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #

    def score(self, addresses: Sequence[str]) -> Dict[str, AddressScore]:
        """Score addresses: ``{address: AddressScore}`` in input order.

        Misses are planned per shard, built by the live worker pool
        (one task per shard with misses), and inference runs once in
        the parent over every shard's sequences — scores match the
        single service to 1e-9.  Raises
        :class:`~repro.errors.ValidationError` for addresses with no
        transactions on chain.  Thread-safe: queries only serialise
        where they actually overlap — each plan/commit takes the owning
        shard's lock, so concurrent queries on disjoint shards proceed
        fully in parallel.
        """
        addresses = list(dict.fromkeys(addresses))
        if not addresses:
            return {}
        unknown = [
            a for a in addresses if self.index.transaction_count(a) == 0
        ]
        if unknown:
            raise _unknown_addresses_error(unknown)
        return self._score_addresses(addresses)

    def score_one(self, address: str) -> AddressScore:
        """Score a single address."""
        return self.score([address])[address]

    async def async_score(
        self, addresses: Sequence[str]
    ) -> Dict[str, AddressScore]:
        """Asyncio front end: await a :meth:`score` without blocking
        the event loop.

        With ``config.micro_batch`` (the default) the request joins the
        cluster's coalescing window: concurrent in-flight requests are
        merged into one scoring pass (see :class:`_MicroBatcher`) whose
        per-request results are identical to serial scoring.  With
        micro-batching off, the query runs directly on the cluster's
        own bounded executor — never the event loop's default executor,
        which ``async_score`` must not compete over with unrelated
        loop work.
        """
        addresses = list(addresses)
        if self.config.micro_batch:
            return await asyncio.wrap_future(
                self._ensure_batcher().enqueue(addresses)
            )
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._ensure_async_executor(), self.score, addresses
        )

    def _score_addresses(
        self, addresses: List[str]
    ) -> Dict[str, AddressScore]:
        """The shared query body: plan/build/commit per shard, then infer.

        Holds no lock during construction or inference.  Each shard's
        plan records the shard version; if an append interleaves before
        commit, that shard's results are discarded and re-planned — the
        optimistic-retry protocol that linearizes appends against
        in-flight queries (appends are rare relative to queries, so
        retries are too).
        """
        if not addresses:
            return {}
        request_start = time.perf_counter()
        with obs.span("serve.score"):
            _SERVE_REQUESTS.inc()
            _SERVE_ADDRESSES.inc(len(addresses))
            scores = self._score_addresses_traced(addresses)
        _SERVE_SECONDS.observe(time.perf_counter() - request_start)
        # Ship the request's batched cache hit/miss deltas into the
        # registry.  Only the shards this request touched: taking every
        # shard's lock here would reintroduce exactly the cross-shard
        # contention the per-shard locking design removed.
        for shard_id in sorted(self.router.partition(addresses)):
            shard = self.shards[shard_id]
            with shard.lock:
                shard.cache.flush_metrics()
                if shard.embeddings is not None:
                    shard.embeddings.flush_metrics()
        return scores

    def _score_addresses_traced(
        self, addresses: List[str]
    ) -> Dict[str, AddressScore]:
        """The :meth:`_score_addresses` body, run under ``serve.score``."""
        with self._lock:
            self._refresh_stale_shards_locked()
            connected = self._chain is not None
        slice_size = self.pipeline_config.slice_size
        sequences: Dict[str, List[EncodedGraph]] = {}
        untrusted: Set[Tuple[str, int]] = set()
        pending = {
            shard_id: list(members)
            for shard_id, members in self.router.partition(
                addresses
            ).items()
        }
        while pending:
            plans = {}
            to_build: Dict[int, Dict[str, List[int]]] = {}
            with obs.span("serve.plan"):
                for shard_id, members in sorted(pending.items()):
                    shard = self.shards[shard_id]
                    version, counts, shard_plans = shard.plan_members(
                        members, self.fingerprint, slice_size, connected
                    )
                    plans[shard_id] = (version, counts, shard_plans)
                    missing = {
                        address: plan[1]
                        for address, plan in shard_plans.items()
                        if plan[1]
                    }
                    if missing:
                        to_build[shard_id] = missing
            built = self._build(to_build)
            retry = {}
            with obs.span("serve.commit"):
                for shard_id, members in sorted(pending.items()):
                    shard = self.shards[shard_id]
                    version, counts, shard_plans = plans[shard_id]
                    committed = shard.commit_members(
                        version,
                        members,
                        shard_plans,
                        built,
                        counts,
                        self.fingerprint,
                    )
                    if committed is None:
                        _SHARD_RETRIES.inc()
                        retry[shard_id] = members
                        continue
                    shard_sequences, shard_untrusted = committed
                    sequences.update(shard_sequences)
                    untrusted |= shard_untrusted
            pending = retry

        # Inference — parent process only, model loaded once: the
        # shared tail runs one block-diagonal GNN pass + one padded
        # sequence-head pass over every shard's sequences, in input
        # address order (the same body the single service scores
        # through, which is what keeps the two identical).
        return _score_sequences(
            self.classifier,
            addresses,
            sequences,
            untrusted,
            lambda address: self.shards[
                self.router.shard_of(address)
            ].embeddings,
            self.embedding_fingerprint,
            self.config.graph_batch_size,
            self.config.sequence_batch_size,
            self.class_names,
        )

    def _build(
        self, to_build: Dict[int, Dict[str, List[int]]]
    ) -> Dict[str, List[EncodedGraph]]:
        """Construct all missing slices, one task per shard with misses.

        The worker path submits every shard's task before collecting
        any result, so cross-shard construction overlaps in the pool;
        the inline path (``num_workers == 0``) serialises per shard on
        ``build_lock`` (the index's interning memo is not safe under
        concurrent builders) while still overlapping across shards via
        concurrent callers.
        """
        built: Dict[str, List[EncodedGraph]] = {}
        if not to_build:
            return built
        if self.config.num_workers > 0:
            pool = self._ensure_pool()
            with obs.span("serve.build"):
                trace_context = obs.current_context()
                futures = [
                    pool.submit(shard_id, requests, trace_context)
                    for shard_id, requests in sorted(to_build.items())
                ]
                for future in futures:
                    encoded, timer = future.result()
                    with self._timer_lock:
                        self._worker_timer.merge(timer)
                    built.update(encoded)
            return built
        with obs.span("serve.build"):
            for shard_id, requests in sorted(to_build.items()):
                shard = self.shards[shard_id]
                pipeline = GraphConstructionPipeline(
                    self.pipeline_config
                )
                with shard.build_lock:
                    graphs_by_address = pipeline.build_many_slices(
                        shard.index, requests
                    )
                for address, graphs in graphs_by_address.items():
                    built[address] = [
                        encode_graph(graph) for graph in graphs
                    ]
                shard.merge_timer(pipeline.timer)
        return built

    def _ensure_pool(self) -> _WorkerPool:
        """The live worker pool, started lazily on the first miss.

        Started under the service lock, so the fork (or spawn)
        snapshots the shard indexes at a consistent sync point — every
        append after this instant reaches the workers as an ingest
        message instead of a re-fork.  ``pool_stats()['starts']``
        counts these starts; steady-state serving should see exactly 1.
        """
        pool = self._pool
        if pool is not None:
            return pool
        with self._lock:
            if self._pool is None:
                method = self.config.start_method
                if method is None and (
                    "fork" in multiprocessing.get_all_start_methods()
                ):
                    method = "fork"
                context = multiprocessing.get_context(method)
                self._pool = _WorkerPool(
                    self.config.num_workers,
                    [shard.index for shard in self.shards],
                    self.pipeline_config,
                    getattr(self.classifier.encoder, "k", None),
                    context,
                )
                self._pool_starts += 1
                _POOL_STARTS.inc()
                _POOL_WORKERS.set(self.config.num_workers)
            return self._pool

    def _ensure_async_executor(self) -> ThreadPoolExecutor:
        """The cluster's own bounded query executor (lazy, closed in
        :meth:`close`) — ``async_score`` never borrows the event
        loop's default executor."""
        executor = self._async_executor
        if executor is not None:
            return executor
        with self._lock:
            if self._async_executor is None:
                self._async_executor = ThreadPoolExecutor(
                    max_workers=self.config.async_workers,
                    thread_name_prefix="repro-cluster-query",
                )
            return self._async_executor

    def _ensure_batcher(self) -> _MicroBatcher:
        batcher = self._batcher
        if batcher is not None:
            return batcher
        with self._lock:
            if self._batcher is None:
                self._batcher = _MicroBatcher(self)
            return self._batcher

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def stats(self) -> CacheStats:
        """Aggregate slice-cache counters across every shard."""
        return CacheStats.combined(
            shard.cache.stats for shard in self.shards
        )

    @property
    def embedding_stats(self) -> Optional[CacheStats]:
        """Aggregate embedding-cache counters (None when disabled)."""
        if not self.config.embedding_cache:
            return None
        return CacheStats.combined(
            shard.embeddings.stats
            for shard in self.shards
            if shard.embeddings is not None
        )

    def shard_stats(self) -> List[Dict[str, int]]:
        """Per-shard breakdown: counters plus entry/byte occupancy."""
        rows = []
        for shard in self.shards:
            row = dict(shard.cache.stats.snapshot())
            row["shard"] = shard.shard_id
            row["entries"] = len(shard.cache)
            row["nbytes"] = shard.cache.nbytes
            rows.append(row)
        return rows

    def pool_stats(self) -> Dict[str, int]:
        """Worker-pool lifecycle counters.

        ``starts`` counts pool forks — the streaming contract is that
        it stays at 1 across any number of block appends (workers
        ingest tails in place); ``ingest_batches`` counts the
        tail-replay messages streamed so far; ``remaps`` counts the
        store-mode remap messages (the payload-free equivalent);
        ``workers`` is the live worker count (0 before the first miss
        or with inline builds).
        """
        with self._lock:
            pool = self._pool
            return {
                "starts": self._pool_starts,
                "workers": pool.num_workers if pool is not None else 0,
                "ingest_batches": (
                    pool.ingest_batches if pool is not None else 0
                ),
                "remaps": pool.remaps if pool is not None else 0,
            }

    def micro_batch_stats(self) -> Dict[str, int]:
        """Coalescing counters of the async micro-batcher.

        ``requests`` counts enqueued ``async_score`` calls,
        ``batches`` the merged scoring passes they were coalesced
        into, ``batched_requests`` the requests those batches carried,
        and ``max_batch`` the largest coalescing window observed.
        All zero until the first micro-batched request.
        """
        batcher = self._batcher
        if batcher is None:
            return {
                "requests": 0,
                "batches": 0,
                "batched_requests": 0,
                "max_batch": 0,
            }
        return batcher.stats()

    def construction_report(self) -> List[Dict[str, float]]:
        """Stage-cost rows aggregated over shards *and* pool workers."""
        timer = StageTimer()
        with self._timer_lock:
            timer.merge(self._worker_timer)
        for shard in self.shards:
            timer.merge(shard.timer_snapshot())
        return stage_report_from_timer(timer)

    # ------------------------------------------------------------------ #
    # Warm persistence
    # ------------------------------------------------------------------ #

    def save_warm(self, directory: "str | Path") -> Path:
        """Persist every shard's warm caches; returns the store directory.

        One :class:`~repro.serve.store.CacheStore` bundle per shard
        (``shard_0000`` …) under the ``(pipeline fingerprint, model
        version)`` key — see :mod:`repro.serve.store` for the layout
        and trust protocol.
        """
        with self._lock:
            store = CacheStore(
                directory, self.fingerprint, self.model_version
            )
            for shard in self.shards:
                store.save_warm(
                    f"shard_{shard.shard_id:04d}",
                    shard.export_warm_state(),
                )
            return store.directory

    def load_warm(self, directory: "str | Path") -> int:
        """Restore warm shard caches saved under ``directory``.

        Every bundle under this cluster's store key is loaded and each
        entry re-routed through the *current* router, so restores
        survive resharding (and stores written by an unsharded service
        load fine).  Only addresses whose current transaction count
        matches the recorded coverage are trusted; the rest rebuild
        cold.  Call after :meth:`connect` (connecting drops coverage by
        design).  Returns the number of slice entries restored.
        """
        with self._lock:
            store = CacheStore(
                directory, self.fingerprint, self.model_version
            )

            def resolve(address: str):
                shard = self.shards[self.router.shard_of(address)]
                return (shard.cache, shard.embeddings, shard.covered)

            restored = 0
            for name in store.bundle_names():
                try:
                    state = store.load_warm(name)
                except ValidationError:
                    continue  # unusable bundle: rebuild cold
                if state is None:
                    continue
                restored += _import_warm_state(
                    state,
                    self.index.transaction_count,
                    resolve,
                    self.fingerprint,
                    self.embedding_fingerprint,
                )
            return restored
